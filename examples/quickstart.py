#!/usr/bin/env python3
"""Quickstart: compare every recovery scheme on the paper's WAN setup.

Runs a 100 KB bulk transfer from a fixed host, through a base station,
over a lossy 19.2 kbps wireless link (two-state burst errors, mean good
period 10 s / mean bad period 4 s) to a mobile host — once for each
scheme the paper studies — and prints the comparison.

Usage:
    python examples/quickstart.py [transfer_kb]
"""

from __future__ import annotations

import sys

from repro import Scheme, run_scenario, theoretical_throughput_bps, wan_scenario


def main() -> None:
    transfer_kb = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    bad_period = 4.0

    print(f"Transfer: {transfer_kb} KB over FH --56kbps--> BS --19.2kbps--> MH")
    print(f"Channel: mean good period 10 s, mean bad period {bad_period:g} s")
    tput_th = theoretical_throughput_bps(12_800, 10.0, bad_period)
    print(f"Theoretical maximum throughput: {tput_th / 1000:.2f} kbps\n")

    header = (
        f"{'scheme':16s} {'time(s)':>8s} {'tput(kbps)':>11s} {'goodput':>8s} "
        f"{'timeouts':>9s} {'src retx':>9s}"
    )
    print(header)
    print("-" * len(header))

    for scheme in Scheme:
        config = wan_scenario(
            scheme=scheme,
            packet_size=576,
            bad_period_mean=bad_period,
            transfer_bytes=transfer_kb * 1024,
            seed=7,
        )
        result = run_scenario(config)
        m = result.metrics
        print(
            f"{scheme.value:16s} {m.duration:8.1f} {m.throughput_kbps:11.2f} "
            f"{m.goodput * 100:7.1f}% {m.timeouts:9d} {m.retransmissions:9d}"
        )

    print(
        "\nEBSN eliminates the spurious timeouts that cripple basic TCP\n"
        "during fades; goodput approaches 100% because the source almost\n"
        "never retransmits — local recovery at the base station does the\n"
        "work, and EBSN keeps the source's timer out of the way."
    )


if __name__ == "__main__":
    main()
