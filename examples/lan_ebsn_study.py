#!/usr/bin/env python3
"""The §4.2.4/§5.2 study: EBSN on a wireless LAN (Figure 10).

Sweeps the mean bad-period length on the 2 Mbps LAN configuration and
plots basic TCP vs EBSN against the theoretical maximum.

Usage:
    python examples/lan_ebsn_study.py [transfer_mb] [replications]
"""

from __future__ import annotations

import sys

from repro import Scheme, lan_scenario, sweep
from repro.experiments.ascii_plot import format_table, plot_series
from repro.experiments.config import LAN_BAD_PERIODS
from repro.metrics import theoretical_throughput_bps


def main() -> None:
    transfer_mb = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    replications = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    transfer = int(transfer_mb * 1024 * 1024)

    results = {}
    for scheme in (Scheme.BASIC, Scheme.EBSN):
        results[scheme] = sweep(
            LAN_BAD_PERIODS,
            lambda bad, scheme=scheme: lan_scenario(
                scheme=scheme, bad_period_mean=bad, transfer_bytes=transfer
            ),
            replications=replications,
        )

    theory = [
        (bad, theoretical_throughput_bps(2e6, 4.0, bad) / 1e6)
        for bad in LAN_BAD_PERIODS
    ]
    curves = {
        "theoretical max": theory,
        "EBSN": [
            (bad, r.throughput_mbps) for bad, r in results[Scheme.EBSN].items()
        ],
        "basic TCP": [
            (bad, r.throughput_mbps) for bad, r in results[Scheme.BASIC].items()
        ],
    }
    print(
        plot_series(
            curves,
            title=f"LAN ({transfer_mb:g} MB transfer): throughput vs mean bad period",
            x_label="mean bad period (s)",
            y_label="throughput (Mbps)",
            y_min=0.0,
        )
    )

    rows = []
    for bad in LAN_BAD_PERIODS:
        basic = results[Scheme.BASIC][bad]
        ebsn = results[Scheme.EBSN][bad]
        rows.append(
            [
                f"{bad:g}",
                f"{basic.throughput_mbps:.3f}",
                f"{basic.timeouts_mean:.1f}",
                f"{ebsn.throughput_mbps:.3f}",
                f"{ebsn.timeouts_mean:.1f}",
                f"{(ebsn.throughput_mbps / basic.throughput_mbps - 1) * 100:+.0f}%",
            ]
        )
    print(
        format_table(
            ["bad(s)", "basic Mbps", "basic TO/run", "EBSN Mbps", "EBSN TO/run", "gain"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
