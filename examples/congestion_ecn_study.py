#!/usr/bin/env python3
"""The §6 follow-up experiment: wired congestion meets wireless fades.

A constant-bit-rate source loads the wired bottleneck while the
wireless hop fades as usual.  Compares {basic, EBSN} x {ECN off, on}:
ECN handles the congestion pathology, EBSN the wireless one, and the
two explicit-feedback mechanisms coexist without masking each other.

Usage:
    python examples/congestion_ecn_study.py [cross_load] [seeds]
"""

from __future__ import annotations

import sys

from repro.experiments.ascii_plot import format_table
from repro.experiments.congestion import (
    CongestedScenarioConfig,
    run_congested_scenario,
)
from repro.experiments.topology import Scheme


def main() -> None:
    cross_load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.9
    seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    rows = []
    for scheme in (Scheme.BASIC, Scheme.EBSN):
        for ecn in (False, True):
            tput = drops = responses = timeouts = 0.0
            for seed in range(1, seeds + 1):
                result = run_congested_scenario(
                    CongestedScenarioConfig(
                        scheme=scheme, ecn=ecn, cross_load=cross_load, seed=seed
                    )
                )
                tput += result.metrics.throughput_kbps / seeds
                drops += result.bottleneck_drops / seeds
                responses += result.ecn_responses / seeds
                timeouts += result.timeouts / seeds
            rows.append(
                [
                    scheme.value,
                    "on" if ecn else "off",
                    f"{tput:.2f}",
                    f"{drops:.1f}",
                    f"{responses:.1f}",
                    f"{timeouts:.1f}",
                ]
            )
    print(
        format_table(
            ["scheme", "ECN", "tput(kbps)", "drops", "ECN resp", "timeouts"],
            rows,
            title=f"Bottleneck at {cross_load:.0%} cross load + wireless fades:",
        )
    )
    print(
        "ECN converts most congestion drops into window halvings; EBSN\n"
        "removes the wireless-stall timeouts.  Each mechanism addresses\n"
        "its own pathology, and the combination suppresses both — the\n"
        "interaction study the paper deferred to future work."
    )


if __name__ == "__main__":
    main()
