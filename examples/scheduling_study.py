#!/usr/bin/env python3
"""Link-level scheduling for multiple connections (the [9] baseline).

Four TCP connections share one base-station radio; each mobile host
fades independently.  Compares FIFO (head-of-line blocking),
round-robin, and channel-state-dependent (CSDP) scheduling, and shows
how CSDP's gain depends on its predictor's probe interval.

Usage:
    python examples/scheduling_study.py [transfer_kb] [seeds]
"""

from __future__ import annotations

import sys

from repro.csdp import CsdpStudyConfig, run_csdp_study
from repro.experiments.ascii_plot import format_table


def run_avg(seeds, **kwargs):
    agg = blocked = timeouts = 0.0
    for seed in range(1, seeds + 1):
        result = run_csdp_study(CsdpStudyConfig(seed=seed, **kwargs))
        agg += result.aggregate_throughput_bps / 1000 / seeds
        blocked += result.radio.idle_blocked_time / seeds
        timeouts += result.total_timeouts / seeds
    return agg, blocked, timeouts


def main() -> None:
    transfer_kb = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    transfer = transfer_kb * 1024

    rows = []
    for sched in ("fifo", "rr", "csdp"):
        agg, blocked, timeouts = run_avg(
            seeds, scheduler=sched, transfer_bytes=transfer
        )
        rows.append([sched, f"{agg:.2f}", f"{blocked:.1f}", f"{timeouts:.1f}"])
    print(
        format_table(
            ["scheduler", "aggregate(kbps)", "HOL idle(s)", "timeouts/run"],
            rows,
            title="4 connections, independent fading (good 4 s / bad 1 s):",
        )
    )

    rows = []
    for probe in (0.1, 0.5, 2.0):
        agg, _, _ = run_avg(
            seeds, scheduler="csdp", csdp_probe_interval=probe,
            transfer_bytes=transfer,
        )
        rows.append([f"{probe:g}", f"{agg:.2f}"])
    print(
        format_table(
            ["probe interval(s)", "aggregate(kbps)"],
            rows,
            title="CSDP predictor accuracy trade-off (probe interval):",
        )
    )
    print(
        "Round-robin removes the FIFO head-of-line blocking; CSDP's\n"
        "extra edge depends on how well its probe interval matches the\n"
        "fade timescale — the accuracy caveat the paper's §2 raises.\n"
        "Source timeouts persist under every policy: scheduling is\n"
        "complementary to EBSN, not a substitute."
    )


if __name__ == "__main__":
    main()
