#!/usr/bin/env python3
"""Visualize the congestion-window dynamics behind Figs 3-5.

Runs the paper's frozen-channel example (10 s good / 4 s bad) for
basic TCP and EBSN with cwnd recording enabled, renders the window
sawtooth, and summarizes the collapses — the mechanism-level view of
why EBSN wins.

Usage:
    python examples/cwnd_dynamics.py [width]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import Scheme, run_scenario, trace_example_scenario
from repro.metrics.cwnd import render_cwnd, summarize_cwnd


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 90

    for scheme, label in (
        (Scheme.BASIC, "Basic TCP"),
        (Scheme.LOCAL_RECOVERY, "Local recovery"),
        (Scheme.EBSN, "EBSN"),
    ):
        config = replace(trace_example_scenario(scheme), record_cwnd=True)
        result = run_scenario(config)
        trace = result.sender.stats.cwnd_trace
        duration = result.metrics.duration
        if not trace:
            trace = [(0.0, result.sender.cwnd)]
        summary = summarize_cwnd(trace, end_time=duration)
        print(
            f"\n{label}: {result.metrics.throughput_kbps:.2f} kbps over "
            f"{duration:.1f} s — {summary.collapses} window collapses, "
            f"mean cwnd {summary.mean_cwnd:.2f} segments, "
            f"{summary.time_below_threshold * 100:.0f}% of time below "
            f"{summary.threshold:g}"
        )
        print(render_cwnd(trace, end_time=min(duration, 90.0), width=width))

    print(
        "Basic TCP's window collapses at every fade and crawls back\n"
        "through slow start; with EBSN the source never times out, so\n"
        "the window stays at the advertised limit for the whole run."
    )


if __name__ == "__main__":
    main()
