#!/usr/bin/env python3
"""Building a custom experiment from the library's components.

The high-level API (`wan_scenario` / `lan_scenario`) covers the
paper's configurations; this example shows the knobs underneath by
modelling a *satellite-backhauled* base station: a slow, long-delay
wired segment in front of the same lossy wireless hop, with a Reno
source and a custom ARQ, comparing schemes under identical fading.

Usage:
    python examples/custom_topology.py
"""

from __future__ import annotations

from repro import ChannelConfig, ScenarioConfig, Scheme, TcpConfig, run_scenario
from repro.linklayer import ArqConfig
from repro.net.wireless import WirelessLinkConfig


def make_config(scheme: Scheme) -> ScenarioConfig:
    wireless = WirelessLinkConfig(
        raw_bandwidth_bps=32_000.0,  # a faster (non-CDPD) radio
        prop_delay=0.004,
        overhead_factor=1.25,  # lighter FEC
        mtu_bytes=256,
    )
    frame_time = wireless.mtu_bytes * wireless.overhead_factor * 8 / 32_000.0
    return ScenarioConfig(
        scheme=scheme,
        tcp=TcpConfig(
            packet_size=1024,
            window_bytes=16 * 1024,
            transfer_bytes=200 * 1024,
            clock_granularity=0.1,
            initial_rto=4.0,  # long path: conservative first RTO
        ),
        channel=ChannelConfig(
            good_period_mean=8.0,
            bad_period_mean=2.0,
            ber_bad=2e-2,  # deeper fades than the paper's default
        ),
        wireless=wireless,
        wired_bandwidth_bps=128_000.0,
        wired_prop_delay=0.25,  # satellite backhaul
        arq=ArqConfig(
            ack_timeout=2 * wireless.prop_delay + frame_time + 0.01,
            rtmax=20,
            backoff_min=frame_time,
            backoff_max=4 * frame_time,
            window=6,
        ),
        tcp_variant="reno",
        seed=11,
    )


def main() -> None:
    print(
        "Satellite-backhauled base station: 128 kbps / 250 ms wired hop,\n"
        "32 kbps wireless hop (MTU 256 B), deep fades (BER 2e-2, mean 2 s),\n"
        "Reno source, 200 KB transfer.\n"
    )
    print(f"{'scheme':16s} {'tput(kbps)':>11s} {'goodput':>8s} {'timeouts':>9s}")
    for scheme in (Scheme.BASIC, Scheme.LOCAL_RECOVERY, Scheme.EBSN):
        result = run_scenario(make_config(scheme))
        m = result.metrics
        print(
            f"{scheme.value:16s} {m.throughput_kbps:11.2f} "
            f"{m.goodput * 100:7.1f}% {m.timeouts:9d}"
        )
    print(
        "\nThe long wired RTT inflates the source's timeout, so basic TCP\n"
        "wastes even more time per fade; EBSN still suppresses the spurious\n"
        "timeouts because the notification only has to beat the (large)\n"
        "RTO, not the wireless round trip."
    )


if __name__ == "__main__":
    main()
