#!/usr/bin/env python3
"""Handoff recovery study (the [4]/[17] companion problem).

A mobile host crosses cells periodically, going deaf for 300 ms per
crossing.  Compares the four recovery schemes across handoff rates:
dropped-queue baseline, Caceres-Iftode forced fast retransmit,
BS-to-BS queue forwarding, and both.

Usage:
    python examples/handoff_study.py [transfer_kb] [seeds]
"""

from __future__ import annotations

import sys

from repro.experiments.ascii_plot import format_table
from repro.handoff import HandoffConfig, HandoffScheme, run_handoff_scenario


def main() -> None:
    transfer_kb = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    for interval in (4.0, 12.0):
        rows = []
        for scheme in HandoffScheme:
            tput = timeouts = stall = 0.0
            for seed in range(1, seeds + 1):
                result = run_handoff_scenario(
                    HandoffConfig(
                        scheme=scheme,
                        handoff_interval=interval,
                        disconnect_time=0.3,
                        transfer_bytes=transfer_kb * 1024,
                        seed=seed,
                    )
                )
                tput += result.metrics.throughput_kbps / seeds
                timeouts += result.timeouts / seeds
                stall += result.stall_time_total / seeds
            rows.append(
                [scheme.value, f"{tput:.2f}", f"{timeouts:.1f}", f"{stall:.1f}"]
            )
        print(
            format_table(
                ["scheme", "tput(kbps)", "timeouts/run", "stalled(s)"],
                rows,
                title=f"Handoff every {interval:g} s (300 ms outage), "
                f"{transfer_kb} KB transfer:",
            )
        )

    print(
        "Without help, every cell crossing costs TCP a retransmission\n"
        "timeout (Caceres & Iftode's observation).  Forcing fast\n"
        "retransmit on reattachment removes the stall; forwarding the\n"
        "old base station's queue additionally saves the stranded data."
    )


if __name__ == "__main__":
    main()
