#!/usr/bin/env python3
"""The §4.1 study: choosing a good wired packet size (Figure 7).

Sweeps the wired packet size for basic TCP across several wireless
error conditions, plots the throughput curves (ASCII), and then uses
the results to populate the paper's proposed mechanism — a fixed table
at the base station mapping error condition → good packet size
(:class:`repro.core.PacketSizeAdvisor`).

Usage:
    python examples/wan_packet_size_study.py [replications]
"""

from __future__ import annotations

import sys

from repro import Scheme, sweep, wan_scenario
from repro.core import ErrorCondition, PacketSizeAdvisor
from repro.experiments.ascii_plot import format_table, plot_series
from repro.experiments.config import WAN_PACKET_SIZES
from repro.metrics import theoretical_throughput_bps

BAD_PERIODS = [1.0, 3.0]


def main() -> None:
    replications = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    advisor = PacketSizeAdvisor(mtu_bytes=128)

    curves = {}
    rows = []
    for bad in BAD_PERIODS:
        points = sweep(
            WAN_PACKET_SIZES,
            lambda size, bad=bad: wan_scenario(
                scheme=Scheme.BASIC,
                packet_size=size,
                bad_period_mean=bad,
                record_trace=False,
            ),
            replications=replications,
        )
        curve = [(size, r.throughput_kbps) for size, r in points.items()]
        curves[f"bad={bad:g}s"] = curve

        best_size, best = max(points.items(), key=lambda kv: kv[1].throughput_kbps)
        worst_size, worst = min(points.items(), key=lambda kv: kv[1].throughput_kbps)
        condition = ErrorCondition(good_period_mean=10.0, bad_period_mean=bad)
        advisor.learn(condition, best_size)
        rows.append(
            [
                f"{bad:g}",
                f"{theoretical_throughput_bps(12_800, 10.0, bad) / 1000:.2f}",
                f"{best_size}",
                f"{best.throughput_kbps:.2f}",
                f"{worst_size}",
                f"{worst.throughput_kbps:.2f}",
                f"{(best.throughput_kbps / worst.throughput_kbps - 1) * 100:.0f}%",
            ]
        )

    print(
        plot_series(
            curves,
            title="Basic TCP: throughput (kbps) vs wired packet size (B)",
            x_label="packet size",
            y_label="throughput (kbps)",
        )
    )
    print(
        format_table(
            ["bad(s)", "tput_th", "best size", "best kbps", "worst size",
             "worst kbps", "gain"],
            rows,
            title="Optimal packet size per error condition:",
        )
    )

    print("Base-station advisor table (the paper's proposed mechanism):")
    for condition, size in advisor.table.items():
        print(
            f"  good={condition.good_period_mean:g}s bad={condition.bad_period_mean:g}s"
            f"  ->  use {size} B packets"
        )
    unseen = ErrorCondition(good_period_mean=10.0, bad_period_mean=2.0)
    print(
        f"  (unseen condition bad=2 s -> nearest-neighbour recommendation: "
        f"{advisor.recommend(unseen)} B)"
    )


if __name__ == "__main__":
    main()
