#!/usr/bin/env python3
"""Reproduce the paper's trace plots (Figures 3, 4, 5) in the terminal.

Runs the §4.2.1 deterministic example — good period exactly 10 s, bad
period exactly 4 s, 576 B packets — once per scheme and renders the
"packet number mod 90 vs time" plot the paper shows.  `.` marks a
first transmission, `R` a retransmission from the source.

Usage:
    python examples/trace_plots.py [width]
"""

from __future__ import annotations

import sys

from repro import Scheme, run_scenario, trace_example_scenario

FIGURES = [
    (3, Scheme.BASIC, "Basic TCP"),
    (4, Scheme.LOCAL_RECOVERY, "Local Recovery"),
    (5, Scheme.EBSN, "Explicit Feedback (EBSN)"),
]


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 100

    for number, scheme, label in FIGURES:
        result = run_scenario(trace_example_scenario(scheme))
        m = result.metrics
        print(f"\nFigure {number}: {label}")
        print(
            f"  completed in {m.duration:.1f} s, throughput "
            f"{m.throughput_kbps:.2f} kbps, goodput {m.goodput * 100:.1f}%, "
            f"{m.timeouts} timeouts, {m.retransmissions} source retransmissions"
        )
        stalls = result.trace.idle_gaps(min_gap=3.0)
        if stalls:
            windows = ", ".join(f"{a:.1f}-{b:.1f}s" for a, b in stalls[:6])
            print(f"  source stalled (>3 s silent) at: {windows}")
        else:
            print("  source never stalled for more than 3 s")
        print(result.trace.render(width=width, t_max=60.0))


if __name__ == "__main__":
    main()
