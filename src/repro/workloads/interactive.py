"""Telnet-style interactive traffic over the paper's topology.

A user types at a fixed host; each keystroke is a small TCP segment
that must reach the mobile host (think a remote shell session on the
move).  The metric is per-keystroke delivery latency — what the user
*feels* — and the tail of its distribution is dominated by exactly the
timeout stalls the paper's EBSN removes: a keystroke typed just before
a fade waits out the fade plus, for basic TCP, the backed-off
retransmission timer.

Think times are exponential (a Poisson typist).  The session reuses
the standard Fig-2 scenario machinery, so every recovery scheme can be
measured.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.experiments.topology import Scenario, Scheme
from repro.experiments.config import wan_scenario
from repro.tcp import MessageSender


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of per-keystroke delivery latencies (s)."""

    count: int
    mean: float
    p50: float
    p95: float
    worst: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> "LatencyStats":
        """Summarize a non-empty list of latency samples."""
        if not samples:
            raise ValueError("no latency samples")
        ordered = sorted(samples)

        def pct(q: float) -> float:
            index = min(int(q * len(ordered)), len(ordered) - 1)
            return ordered[index]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=pct(0.50),
            p95=pct(0.95),
            worst=ordered[-1],
        )


@dataclass
class InteractiveConfig:
    """One interactive session."""

    scheme: Scheme = Scheme.BASIC
    keystrokes: int = 300
    #: Mean think time between keystrokes (s); a Poisson typist.
    think_time_mean: float = 0.5
    keystroke_bytes: int = 8
    bad_period_mean: float = 2.0
    good_period_mean: float = 10.0
    #: EBSN heartbeat interval (s), forwarded to the scenario; only
    #: meaningful with Scheme.EBSN.  See EbsnGenerator.
    ebsn_heartbeat: "float | None" = None
    seed: int = 1

    def __post_init__(self) -> None:
        if self.keystrokes < 1:
            raise ValueError("need at least one keystroke")
        if self.think_time_mean <= 0:
            raise ValueError("think time must be positive")


@dataclass
class InteractiveResult:
    """Outcome of one session."""

    latency: LatencyStats
    timeouts: int
    duration: float
    completed: bool


def run_interactive_session(config: InteractiveConfig) -> InteractiveResult:
    """Type ``keystrokes`` keystrokes across the wireless path."""
    scenario_config = wan_scenario(
        scheme=config.scheme,
        packet_size=576,  # MSS; keystroke segments are far smaller
        bad_period_mean=config.bad_period_mean,
        good_period_mean=config.good_period_mean,
        transfer_bytes=1,  # placeholder; MessageSender resets totals
        seed=config.seed,
        record_trace=False,
    )
    scenario_config = replace(
        scenario_config,
        sender_factory=MessageSender,
        ebsn_heartbeat=config.ebsn_heartbeat,
    )
    scenario = Scenario(scenario_config)
    sim = scenario.sim
    sender: MessageSender = scenario.sender  # type: ignore[assignment]
    rng = scenario.streams.stream("typist")

    typed_at: Dict[int, float] = {}
    latencies: List[float] = []
    remaining = {"count": config.keystrokes}

    def deliver_hook(seq: int, payload_bytes: int) -> None:
        latencies.append(sim.now - typed_at[seq])

    scenario.sink.on_segment = deliver_hook

    def type_key() -> None:
        seq = sender.send_message(config.keystroke_bytes)
        typed_at[seq] = sim.now
        remaining["count"] -= 1
        if remaining["count"] > 0:
            sim.schedule(rng.expovariate(1.0 / config.think_time_mean), type_key)
        else:
            sender.close()

    sim.schedule(rng.expovariate(1.0 / config.think_time_mean), type_key)
    result = scenario.run()

    return InteractiveResult(
        latency=LatencyStats.from_samples(latencies),
        timeouts=result.sender.stats.timeouts,
        duration=result.metrics.duration,
        completed=result.completed,
    )
