"""Application workloads beyond bulk transfer.

The paper motivates its schemes with interactive applications (telnet,
www) but evaluates bulk transfer only; this package measures the
*latency* those applications would see:

* :mod:`repro.workloads.interactive` — a telnet-style keystroke
  stream over the Fig-2 topology, reporting per-keystroke delivery
  latency distributions per recovery scheme.
"""

from repro.workloads.interactive import (
    InteractiveConfig,
    InteractiveResult,
    LatencyStats,
    run_interactive_session,
)

__all__ = [
    "InteractiveConfig",
    "InteractiveResult",
    "LatencyStats",
    "run_interactive_session",
]
