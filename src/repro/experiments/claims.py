"""Programmatic validation of every claim this reproduction makes.

Each :class:`Claim` pairs a sentence from the paper (or from our
EXPERIMENTS.md) with an executable check.  ``python -m repro validate``
runs them all and prints a ✓/✗ report — the artifact-evaluation view
of the repository.  Checks run at a configurable scale: the default is
sized for ~a minute of wall clock; the benchmarks remain the
full-scale ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.experiments.config import lan_scenario, trace_example_scenario, wan_scenario
from repro.experiments.topology import Scheme, run_scenario
from repro.metrics.theoretical import theoretical_throughput_bps


@dataclass(frozen=True)
class ClaimResult:
    passed: bool
    detail: str


@dataclass(frozen=True)
class Claim:
    id: str
    source: str
    statement: str
    check: Callable[[float, int], ClaimResult]

    def evaluate(self, scale: float = 0.3, seeds: int = 3) -> ClaimResult:
        """Run this claim's check at the given scale."""
        return self.check(scale, seeds)


def _mean_over_seeds(scheme, seeds, scale, **kwargs):
    metrics = []
    for seed in range(1, seeds + 1):
        result = run_scenario(
            wan_scenario(
                scheme=scheme,
                seed=seed,
                transfer_bytes=int(100 * 1024 * scale),
                record_trace=False,
                **kwargs,
            )
        )
        metrics.append(result.metrics)
    return metrics


def _check_fig3(scale, seeds) -> ClaimResult:
    result = run_scenario(trace_example_scenario(Scheme.BASIC))
    ok = result.metrics.timeouts >= 5 and result.metrics.goodput < 0.9
    return ClaimResult(
        ok,
        f"basic TCP (frozen channel): {result.metrics.timeouts} timeouts, "
        f"goodput {result.metrics.goodput:.2f}",
    )


def _check_fig5(scale, seeds) -> ClaimResult:
    result = run_scenario(trace_example_scenario(Scheme.EBSN))
    ok = result.metrics.timeouts == 0 and result.metrics.goodput > 0.99
    return ClaimResult(
        ok,
        f"EBSN (frozen channel): {result.metrics.timeouts} timeouts, "
        f"goodput {result.metrics.goodput:.2f}",
    )


def _check_local_recovery_timeouts(scale, seeds) -> ClaimResult:
    timeouts = sum(
        m.timeouts
        for m in _mean_over_seeds(Scheme.LOCAL_RECOVERY, seeds, scale, bad_period_mean=4.0)
    )
    return ClaimResult(
        timeouts > 0, f"local recovery alone: {timeouts} timeouts over {seeds} runs"
    )


def _check_quench_negative(scale, seeds) -> ClaimResult:
    quench = sum(
        m.timeouts
        for m in _mean_over_seeds(Scheme.QUENCH, seeds, scale, bad_period_mean=4.0)
    )
    ebsn = sum(
        m.timeouts
        for m in _mean_over_seeds(Scheme.EBSN, seeds, scale, bad_period_mean=4.0)
    )
    return ClaimResult(
        ebsn < quench and quench > 0,
        f"timeouts over {seeds} runs: quench {quench}, EBSN {ebsn}",
    )


def _check_packet_size_optimum(scale, seeds) -> ClaimResult:
    def mean_tput(size):
        ms = _mean_over_seeds(
            Scheme.BASIC, seeds, scale, packet_size=size, bad_period_mean=4.0
        )
        return sum(m.throughput_bps for m in ms) / len(ms)

    small, mid, large = mean_tput(128), mean_tput(512), mean_tput(1536)
    ok = mid > small and mid > large
    return ClaimResult(
        ok,
        f"basic TCP tput (bps) at 128/512/1536 B: "
        f"{small:.0f}/{mid:.0f}/{large:.0f}",
    )


def _check_ebsn_large_packets(scale, seeds) -> ClaimResult:
    def mean_tput(size):
        ms = _mean_over_seeds(
            Scheme.EBSN, seeds, scale, packet_size=size, bad_period_mean=4.0
        )
        return sum(m.throughput_bps for m in ms) / len(ms)

    small, large = mean_tput(128), mean_tput(1536)
    tput_th = theoretical_throughput_bps(12_800, 10.0, 4.0)
    ok = large > 1.15 * small and large > 0.7 * tput_th
    return ClaimResult(
        ok,
        f"EBSN tput 128 B: {small:.0f} bps, 1536 B: {large:.0f} bps "
        f"(tput_th {tput_th:.0f})",
    )


def _check_ebsn_doubles_basic(scale, seeds) -> ClaimResult:
    basic = sum(
        m.throughput_bps
        for m in _mean_over_seeds(
            Scheme.BASIC, seeds, scale, packet_size=1536, bad_period_mean=4.0
        )
    )
    ebsn = sum(
        m.throughput_bps
        for m in _mean_over_seeds(
            Scheme.EBSN, seeds, scale, packet_size=1536, bad_period_mean=4.0
        )
    )
    ratio = ebsn / basic if basic else 0.0
    return ClaimResult(ratio > 1.4, f"EBSN/basic at 1536 B, bad 4 s: {ratio:.2f}x")


def _check_ebsn_low_retx(scale, seeds) -> ClaimResult:
    basic = sum(
        m.retransmitted_kbytes
        for m in _mean_over_seeds(Scheme.BASIC, seeds, scale, bad_period_mean=4.0)
    )
    ebsn = sum(
        m.retransmitted_kbytes
        for m in _mean_over_seeds(Scheme.EBSN, seeds, scale, bad_period_mean=4.0)
    )
    return ClaimResult(
        ebsn < 0.3 * basic,
        f"retransmitted KB over {seeds} runs: basic {basic:.1f}, EBSN {ebsn:.1f}",
    )


def _check_lan(scale, seeds) -> ClaimResult:
    def mean_tput(scheme):
        total = 0.0
        for seed in range(1, seeds + 1):
            result = run_scenario(
                lan_scenario(
                    scheme=scheme,
                    bad_period_mean=1.6,
                    transfer_bytes=int(4 * 1024 * 1024 * scale),
                    seed=seed,
                )
            )
            total += result.metrics.throughput_bps
        return total / seeds

    basic, ebsn = mean_tput(Scheme.BASIC), mean_tput(Scheme.EBSN)
    tput_th = theoretical_throughput_bps(2e6, 4.0, 1.6)
    ok = ebsn > 1.1 * basic and ebsn > 0.8 * tput_th
    return ClaimResult(
        ok,
        f"LAN bad 1.6 s: basic {basic / 1e6:.3f}, EBSN {ebsn / 1e6:.3f} Mbps "
        f"(tput_th {tput_th / 1e6:.3f})",
    )


def _check_lan_goodput(scale, seeds) -> ClaimResult:
    goodputs = []
    for seed in range(1, seeds + 1):
        result = run_scenario(
            lan_scenario(
                scheme=Scheme.EBSN,
                bad_period_mean=0.8,
                transfer_bytes=int(4 * 1024 * 1024 * scale),
                seed=seed,
            )
        )
        goodputs.append(result.metrics.goodput)
    worst = min(goodputs)
    return ClaimResult(worst > 0.97, f"EBSN LAN goodput (worst of {seeds}): {worst:.3f}")


def _check_scheduling(scale, seeds) -> ClaimResult:
    from repro.csdp import CsdpStudyConfig, run_csdp_study

    def agg(sched):
        total = 0.0
        for seed in range(1, seeds + 1):
            result = run_csdp_study(
                CsdpStudyConfig(
                    scheduler=sched,
                    transfer_bytes=int(50 * 1024 * scale),
                    seed=seed,
                )
            )
            total += result.aggregate_throughput_bps
        return total / seeds

    fifo, rr = agg("fifo"), agg("rr")
    return ClaimResult(
        rr > 1.1 * fifo, f"aggregate bps: FIFO {fifo:.0f}, round-robin {rr:.0f}"
    )


def _check_handoff(scale, seeds) -> ClaimResult:
    from repro.handoff import HandoffConfig, HandoffScheme, run_handoff_scenario

    def timeouts(scheme):
        total = 0
        for seed in range(1, seeds + 1):
            total += run_handoff_scenario(
                HandoffConfig(
                    scheme=scheme,
                    handoff_interval=6.0,
                    transfer_bytes=int(60 * 1024 * scale),
                    seed=seed,
                )
            ).timeouts
        return total

    base, fast = timeouts(HandoffScheme.BASELINE), timeouts(HandoffScheme.FAST_RTX)
    return ClaimResult(
        fast < base / 2 and base > 0,
        f"timeouts over {seeds} runs: baseline {base}, fast-rtx {fast}",
    )


def _check_congestion(scale, seeds) -> ClaimResult:
    from repro.experiments.congestion import (
        CongestedScenarioConfig,
        run_congested_scenario,
    )
    from repro.tcp import TcpConfig

    def run(ecn):
        drops = 0
        for seed in range(1, seeds + 1):
            drops += run_congested_scenario(
                CongestedScenarioConfig(
                    scheme=Scheme.BASIC,
                    ecn=ecn,
                    cross_load=0.9,
                    seed=seed,
                    tcp=TcpConfig(transfer_bytes=int(60 * 1024 * scale)),
                )
            ).bottleneck_drops
        return drops

    plain, ecn = run(False), run(True)
    return ClaimResult(
        ecn < plain and plain > 0,
        f"bottleneck drops over {seeds} runs: no ECN {plain}, ECN {ecn}",
    )


def _check_ebsn_stateless(scale, seeds) -> ClaimResult:
    result = run_scenario(
        wan_scenario(Scheme.EBSN, transfer_bytes=int(20 * 1024 * scale))
    )
    stateful = {
        k: v
        for k, v in vars(result.ebsn).items()
        if not k.startswith("_") and not isinstance(v, (int, float, type(None)))
    }
    return ClaimResult(
        not stateful, f"EBSN generator non-scalar state: {sorted(stateful) or 'none'}"
    )


CLAIMS: List[Claim] = [
    Claim("fig3", "Fig 3", "basic TCP stalls and retransmits every bad period", _check_fig3),
    Claim("fig5", "Fig 5", "EBSN: no timeouts, goodput 100% (frozen channel)", _check_fig5),
    Claim("s421", "§4.2.1", "source timeouts still occur during local recovery", _check_local_recovery_timeouts),
    Claim("s422", "§4.2.2", "source quench cannot prevent timeouts; EBSN can", _check_quench_negative),
    Claim("fig7", "Fig 7", "basic TCP has an interior optimal packet size", _check_packet_size_optimum),
    Claim("fig8", "Fig 8", "with EBSN, larger packets win and approach tput_th", _check_ebsn_large_packets),
    Claim("head", "§5.1", "EBSN ~doubles basic TCP at 1536 B / bad 4 s", _check_ebsn_doubles_basic),
    Claim("fig9", "Fig 9", "EBSN nearly eliminates source retransmissions", _check_ebsn_low_retx),
    Claim("fig10", "Fig 10", "LAN: EBSN beats basic and tracks tput_th", _check_lan),
    Claim("fig11", "Fig 11", "LAN: EBSN goodput ≈ 100%", _check_lan_goodput),
    Claim("adv", "§6", "EBSN keeps no per-connection state at the BS", _check_ebsn_stateless),
    Claim("csdp", "§2/[9]", "round-robin scheduling ≫ FIFO for multiple MHs", _check_scheduling),
    Claim("hand", "§2/[4]", "forced fast retransmit removes handoff timeouts", _check_handoff),
    Claim("cong", "§6/[18]", "ECN marking absorbs wired congestion drops", _check_congestion),
]


def validate_all(
    scale: float = 0.3, seeds: int = 3
) -> List[Tuple[Claim, ClaimResult]]:
    """Evaluate every claim; returns (claim, result) pairs in order."""
    return [(claim, claim.evaluate(scale, seeds)) for claim in CLAIMS]
