"""One entry point per paper figure.

Each ``figure_N`` function runs the experiment behind that figure and
returns the plotted data series (plus the theoretical-maximum lines
where the paper draws them).  The benchmark harness calls these and
prints the same rows the paper plots; EXPERIMENTS.md records the
comparison.

Transfer sizes can be scaled down (``transfer_bytes``) to trade
fidelity for runtime; defaults are the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.config import (
    LAN_BAD_PERIODS,
    LAN_TRANSFER_BYTES,
    WAN_BAD_PERIODS,
    WAN_PACKET_SIZES,
    WAN_TRANSFER_BYTES,
    lan_scenario,
    trace_example_scenario,
    wan_scenario,
)
from repro.experiments.cache import ResultCache
from repro.experiments.journal import CampaignJournal
from repro.experiments.runner import ReplicatedResult, run_replicated
from repro.experiments.topology import ScenarioResult, Scheme, run_scenario
from repro.metrics.theoretical import theoretical_throughput_bps


@dataclass
class SweepSeries:
    """One plotted curve: x values → aggregated results."""

    label: str
    points: Dict[float, ReplicatedResult] = field(default_factory=dict)

    def throughputs_kbps(self) -> List[float]:
        """The curve's y-values in kbit/s, in x order."""
        return [r.throughput_kbps for r in self.points.values()]

    def retransmitted_kbytes(self) -> List[float]:
        """The curve's retransmitted-KB values, in x order."""
        return [r.retransmitted_kbytes_mean for r in self.points.values()]


# ---------------------------------------------------------------------------
# Figures 3-5: the deterministic trace example
# ---------------------------------------------------------------------------

_TRACE_SCHEMES = {
    3: Scheme.BASIC,
    4: Scheme.LOCAL_RECOVERY,
    5: Scheme.EBSN,
}


def trace_figure(
    figure_number: int, validate: Optional[bool] = None
) -> ScenarioResult:
    """Run the §4.2.1 example for Fig 3 (basic), 4 (local), or 5 (EBSN)."""
    if figure_number not in _TRACE_SCHEMES:
        raise ValueError(f"trace figures are 3, 4, 5; got {figure_number}")
    config = trace_example_scenario(_TRACE_SCHEMES[figure_number])
    return run_scenario(config, validate=validate)


# ---------------------------------------------------------------------------
# Figures 7-9: WAN packet-size sweeps
# ---------------------------------------------------------------------------


def _wan_packet_sweep(
    scheme: Scheme,
    bad_periods: List[float],
    packet_sizes: List[int],
    replications: int,
    transfer_bytes: int,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> Dict[float, SweepSeries]:
    series: Dict[float, SweepSeries] = {}
    for bad in bad_periods:
        curve = SweepSeries(label=f"bad period = {bad:g} sec")
        for size in packet_sizes:
            config = wan_scenario(
                scheme=scheme,
                packet_size=size,
                bad_period_mean=bad,
                transfer_bytes=transfer_bytes,
                record_trace=False,
            )
            curve.points[size] = run_replicated(
                config, replications, workers=workers, cache=cache,
                validate=validate, timeout=timeout, retries=retries,
                fail_fast=fail_fast, journal=journal,
            )
        series[bad] = curve
    return series


def figure_7(
    replications: int = 3,
    packet_sizes: Optional[List[int]] = None,
    bad_periods: Optional[List[float]] = None,
    transfer_bytes: int = WAN_TRANSFER_BYTES,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> Dict[float, SweepSeries]:
    """Fig 7: basic TCP throughput vs packet size, one curve per bad period."""
    return _wan_packet_sweep(
        Scheme.BASIC,
        bad_periods or WAN_BAD_PERIODS,
        packet_sizes or WAN_PACKET_SIZES,
        replications,
        transfer_bytes,
        workers=workers,
        cache=cache,
        validate=validate,
        timeout=timeout,
        retries=retries,
        fail_fast=fail_fast,
        journal=journal,
    )


def figure_8(
    replications: int = 3,
    packet_sizes: Optional[List[int]] = None,
    bad_periods: Optional[List[float]] = None,
    transfer_bytes: int = WAN_TRANSFER_BYTES,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> Dict[float, SweepSeries]:
    """Fig 8: EBSN throughput vs packet size, one curve per bad period."""
    return _wan_packet_sweep(
        Scheme.EBSN,
        bad_periods or WAN_BAD_PERIODS,
        packet_sizes or WAN_PACKET_SIZES,
        replications,
        transfer_bytes,
        workers=workers,
        cache=cache,
        validate=validate,
        timeout=timeout,
        retries=retries,
        fail_fast=fail_fast,
        journal=journal,
    )


def figure_9(
    replications: int = 3,
    packet_sizes: Optional[List[int]] = None,
    bad_periods: Optional[List[float]] = None,
    transfer_bytes: int = WAN_TRANSFER_BYTES,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> Dict[str, Dict[float, SweepSeries]]:
    """Fig 9: data retransmitted vs packet size — basic TCP vs EBSN."""
    return {
        "basic": _wan_packet_sweep(
            Scheme.BASIC,
            bad_periods or WAN_BAD_PERIODS,
            packet_sizes or WAN_PACKET_SIZES,
            replications,
            transfer_bytes,
            workers=workers,
            cache=cache,
            validate=validate,
            timeout=timeout,
            retries=retries,
            fail_fast=fail_fast,
            journal=journal,
        ),
        "ebsn": _wan_packet_sweep(
            Scheme.EBSN,
            bad_periods or WAN_BAD_PERIODS,
            packet_sizes or WAN_PACKET_SIZES,
            replications,
            transfer_bytes,
            workers=workers,
            cache=cache,
            validate=validate,
            timeout=timeout,
            retries=retries,
            fail_fast=fail_fast,
            journal=journal,
        ),
    }


def wan_theoretical_kbps(bad_period_mean: float, good_period_mean: float = 10.0) -> float:
    """tput_th for the WAN study (12.8 kbps effective), in kbit/s."""
    return (
        theoretical_throughput_bps(12_800.0, good_period_mean, bad_period_mean) / 1000.0
    )


# ---------------------------------------------------------------------------
# Figures 10-11: LAN bad-period sweeps
# ---------------------------------------------------------------------------


def _lan_bad_sweep(
    scheme: Scheme,
    bad_periods: List[float],
    replications: int,
    transfer_bytes: int,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> SweepSeries:
    curve = SweepSeries(label=scheme.value)
    for bad in bad_periods:
        config = lan_scenario(
            scheme=scheme, bad_period_mean=bad, transfer_bytes=transfer_bytes
        )
        curve.points[bad] = run_replicated(
            config, replications, workers=workers, cache=cache,
            validate=validate, timeout=timeout, retries=retries,
            fail_fast=fail_fast, journal=journal,
        )
    return curve


def figure_10(
    replications: int = 3,
    bad_periods: Optional[List[float]] = None,
    transfer_bytes: int = LAN_TRANSFER_BYTES,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> Dict[str, SweepSeries]:
    """Fig 10: LAN throughput vs bad period — basic vs EBSN (+ tput_th)."""
    bads = bad_periods or LAN_BAD_PERIODS
    return {
        "basic": _lan_bad_sweep(
            Scheme.BASIC, bads, replications, transfer_bytes,
            workers=workers, cache=cache, validate=validate,
            timeout=timeout, retries=retries, fail_fast=fail_fast,
            journal=journal,
        ),
        "ebsn": _lan_bad_sweep(
            Scheme.EBSN, bads, replications, transfer_bytes,
            workers=workers, cache=cache, validate=validate,
            timeout=timeout, retries=retries, fail_fast=fail_fast,
            journal=journal,
        ),
    }


def figure_11(
    replications: int = 3,
    bad_periods: Optional[List[float]] = None,
    transfer_bytes: int = LAN_TRANSFER_BYTES,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> Dict[str, SweepSeries]:
    """Fig 11: LAN data retransmitted vs bad period — basic vs EBSN."""
    return figure_10(
        replications, bad_periods, transfer_bytes, workers=workers, cache=cache,
        validate=validate, timeout=timeout, retries=retries,
        fail_fast=fail_fast, journal=journal,
    )


def lan_theoretical_mbps(bad_period_mean: float, good_period_mean: float = 4.0) -> float:
    """tput_th for the LAN study (2 Mbps), in Mbit/s."""
    return theoretical_throughput_bps(2e6, good_period_mean, bad_period_mean) / 1e6
