"""The paper's exact experiment parameter sets.

Wide-area study (§3, §5.1):
    wired 56 kbps; wireless 19.2 kbps raw / 12.8 kbps effective
    (1.5× overhead), MTU 128 B; TCP window 4 KB, clock 100 ms;
    100 KB transfer; packet sizes 128–1536 B; good period mean 10 s;
    bad period mean 1–4 s; BER 1e-6 good / 1e-2 bad.

Local-area study (§4.2.4, §5.2):
    wired 10 Mbps; wireless 2 Mbps, no fragmentation/overhead;
    window 64 KB; packet size 1536 B; 4 MB transfer; good period
    mean 4 s; bad period mean 0.4–1.6 s.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.topology import ChannelConfig, ScenarioConfig, Scheme
from repro.linklayer import ArqConfig
from repro.net.wireless import WirelessLinkConfig
from repro.tcp import TcpConfig

#: Packet sizes swept in Figs 7–9 (bytes, including the 40 B header).
WAN_PACKET_SIZES = [128, 256, 384, 512, 640, 768, 1024, 1280, 1536]

#: Mean bad-period lengths of the WAN study (seconds).
WAN_BAD_PERIODS = [1.0, 2.0, 3.0, 4.0]

#: Mean good-period length of the WAN study (seconds).
WAN_GOOD_PERIOD = 10.0

#: Mean bad-period lengths of the LAN study (seconds).
LAN_BAD_PERIODS = [0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6]

#: Mean good-period length of the LAN study (seconds).
LAN_GOOD_PERIOD = 4.0

#: WAN transfer size (bytes): "Each run involved a 100 Kbyte file".
WAN_TRANSFER_BYTES = 100 * 1024

#: LAN transfer size (bytes): "Each run involved a 4 Mbyte file".
LAN_TRANSFER_BYTES = 4 * 1024 * 1024


def wan_wireless() -> WirelessLinkConfig:
    """The CDPD-like wide-area wireless hop of §3.1."""
    return WirelessLinkConfig(
        raw_bandwidth_bps=19_200.0,
        prop_delay=0.002,
        overhead_factor=1.5,
        mtu_bytes=128,
    )


def lan_wireless() -> WirelessLinkConfig:
    """The 2 Mbps wireless LAN hop of §4.2.4 (no fragmentation)."""
    return WirelessLinkConfig(
        raw_bandwidth_bps=2_000_000.0,
        prop_delay=0.000_5,
        overhead_factor=1.0,
        mtu_bytes=1536,
    )


def lan_arq() -> ArqConfig:
    """Local-recovery parameters for the LAN study.

    The paper fixes RTmax = 13 from the CDPD spec for the WAN; the LAN
    link layer is only described as "local recovery", so we keep the
    same stop-and-wait protocol but give it persistence comparable to
    the fade timescale (a 2 Mbps radio can afford many more attempts
    per second than a 19.2 kbps one).  See DESIGN.md.
    """
    frame_time = 1536 * 8 / 2_000_000.0  # ≈ 6.1 ms
    return ArqConfig(
        ack_timeout=2 * 0.0005 + 8 * 8 / 2_000_000.0 + frame_time + 0.002,
        rtmax=150,
        backoff_min=0.005,
        backoff_max=0.04,
    )


def wan_scenario(
    scheme: Scheme = Scheme.BASIC,
    packet_size: int = 576,
    bad_period_mean: float = 1.0,
    good_period_mean: float = WAN_GOOD_PERIOD,
    seed: int = 1,
    deterministic: bool = False,
    transfer_bytes: int = WAN_TRANSFER_BYTES,
    record_trace: bool = True,
    tcp_variant: str = "tahoe",
    arq: Optional[ArqConfig] = None,
) -> ScenarioConfig:
    """One wide-area run of the §5.1 study."""
    return ScenarioConfig(
        scheme=scheme,
        tcp=TcpConfig(
            packet_size=packet_size,
            window_bytes=4096,
            transfer_bytes=transfer_bytes,
            clock_granularity=0.1,
        ),
        channel=ChannelConfig(
            good_period_mean=good_period_mean,
            bad_period_mean=bad_period_mean,
            deterministic=deterministic,
        ),
        wireless=wan_wireless(),
        wired_bandwidth_bps=56_000.0,
        wired_prop_delay=0.01,
        arq=arq,
        tcp_variant=tcp_variant,
        seed=seed,
        record_trace=record_trace,
    )


def lan_scenario(
    scheme: Scheme = Scheme.BASIC,
    bad_period_mean: float = 0.8,
    good_period_mean: float = LAN_GOOD_PERIOD,
    seed: int = 1,
    transfer_bytes: int = LAN_TRANSFER_BYTES,
    packet_size: int = 1536,
    record_trace: bool = False,
    tcp_variant: str = "tahoe",
    arq: Optional[ArqConfig] = None,
) -> ScenarioConfig:
    """One local-area run of the §5.2 study."""
    return ScenarioConfig(
        scheme=scheme,
        tcp=TcpConfig(
            packet_size=packet_size,
            window_bytes=64 * 1024,
            transfer_bytes=transfer_bytes,
            clock_granularity=0.1,
        ),
        channel=ChannelConfig(
            good_period_mean=good_period_mean,
            bad_period_mean=bad_period_mean,
        ),
        wireless=lan_wireless(),
        wired_bandwidth_bps=10_000_000.0,
        wired_prop_delay=0.001,
        arq=arq if arq is not None else lan_arq(),
        tcp_variant=tcp_variant,
        seed=seed,
        record_trace=record_trace,
    )


def trace_example_scenario(scheme: Scheme) -> ScenarioConfig:
    """The §4.2.1 deterministic example behind Figs 3–5.

    576 B packets, 4 KB window, good period exactly 10 s, bad period
    exactly 4 s, losses deterministic, starting in the good state.
    """
    return wan_scenario(
        scheme=scheme,
        packet_size=576,
        bad_period_mean=4.0,
        good_period_mean=10.0,
        deterministic=True,
        record_trace=True,
    )
