"""Campaign checkpoint journal: crash-safe resume for sweeps.

A journal is an append-only JSONL file recording every completed work
unit of a campaign — its content-addressed key (the same
(config, seed, code-version) digest the result cache uses) and its
pickled :class:`~repro.experiments.parallel.RunSummary`.  Each record
is flushed and fsynced the moment the unit finishes, so the file is
exactly as durable as the work it describes: kill the process at any
instant and everything already journaled replays for free.

``repro sweep --resume camp.journal`` (or passing a
:class:`CampaignJournal` to the runner/``sweep``/``run_replicated``)
consults the journal before simulating: units whose key is present
are loaded, everything else runs and is appended.  Because keys embed
the code-version token, a journal written by older code simply stops
matching after an edit — stale entries are inert, never wrong.

Layout (one JSON object per line)::

    {"kind": "header", "format": 1, "code": "<token>"}
    {"kind": "unit", "key": "<digest>", "summary": "<base64 pickle>"}
    {"kind": "failure", "key": ..., "fault": "timeout", ...}

A torn final line (the writer died mid-append) is tolerated and
ignored on load.  Failure records are informational — a failed unit
is *not* treated as done, so a resume retries it.
"""

from __future__ import annotations

import base64
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments.cache import code_version_token, config_digest
from repro.experiments.faults import UnitFailure

_log = logging.getLogger(__name__)

#: Bump when the journal layout changes incompatibly.
JOURNAL_FORMAT = 1


class CampaignJournal:
    """Append-only checkpoint file for one (or more) campaigns.

    Opening is create-or-resume: an existing file is scanned and its
    completed units become immediately available through :meth:`get`;
    a missing file is created with a header line.  The journal object
    is also an append handle — :meth:`record` makes one unit durable.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Any] = {}
        self._code_token = code_version_token()
        self.stale_entries = 0
        self.torn_lines = 0
        self._load_existing()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        if self.path.stat().st_size == 0:
            self._append(
                {
                    "kind": "header",
                    "format": JOURNAL_FORMAT,
                    "code": self._code_token,
                }
            )

    # -- reading -----------------------------------------------------------

    def _load_existing(self) -> None:
        if not self.path.is_file():
            return
        file_token: Optional[str] = None
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # The writer died mid-append; everything before the
                # torn line is intact and usable.
                self.torn_lines += 1
                continue
            kind = record.get("kind")
            if kind == "header":
                file_token = record.get("code")
                if record.get("format") != JOURNAL_FORMAT:
                    _log.warning(
                        "journal %s has format %r (expected %d); entries "
                        "ignored",
                        self.path,
                        record.get("format"),
                        JOURNAL_FORMAT,
                    )
                    return
            elif kind == "unit":
                try:
                    summary = pickle.loads(
                        base64.b64decode(record["summary"])
                    )
                except Exception:
                    self.torn_lines += 1
                    continue
                self._entries[record["key"]] = summary
            # "failure" records are informational only: the unit is
            # not done, so a resume will retry it.
        if file_token is not None and file_token != self._code_token:
            # Keys embed the code token, so these entries can never
            # match a current key — say so rather than silently
            # re-simulating everything.
            self.stale_entries = len(self._entries)
            _log.warning(
                "journal %s was written by a different code version; its "
                "%d completed unit(s) will not match and will re-run",
                self.path,
                len(self._entries),
            )

    def key(self, config: Any) -> str:
        """Digest for ``config`` — identical to the result cache's key."""
        return config_digest(config, self._code_token)

    def get(self, key: str) -> Optional[Any]:
        """The journaled summary for ``key``, or ``None``."""
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    # -- writing -----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str, summary: Any) -> None:
        """Journal one completed unit, durably, right now."""
        self._entries[key] = summary
        self._append(
            {
                "kind": "unit",
                "key": key,
                "summary": base64.b64encode(
                    pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii"),
            }
        )

    def record_failure(self, failure: UnitFailure) -> None:
        """Journal a quarantined unit (informational; resume retries it)."""
        self._append(
            {
                "kind": "failure",
                "key": failure.key,
                "fault": failure.kind,
                "seed": failure.seed,
                "scheme": failure.scheme,
                "attempts": failure.attempts,
                "message": failure.message,
            }
        )

    def close(self) -> None:
        """Close the append handle (reads keep working)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
