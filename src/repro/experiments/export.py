"""CSV export of experiment results.

Downstream users plot with their own tools; these helpers flatten
sweep results into simple CSV files.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Mapping, Union

from repro.experiments.runner import ReplicatedResult


def sweep_to_csv(
    points: Mapping[Union[int, float], ReplicatedResult],
    path: Union[str, Path],
    x_name: str = "x",
) -> Path:
    """Write one sweep (x -> ReplicatedResult) as CSV.

    Columns: the swept variable, throughput mean/std/CI95 (bps),
    goodput, retransmitted KB, timeouts per run, duration, and the
    theoretical maximum.
    """
    path = Path(path)
    with path.open("w", newline="") as fp:
        writer = csv.writer(fp)
        writer.writerow(
            [
                x_name,
                "throughput_bps_mean",
                "throughput_bps_std",
                "throughput_ci95_bps",
                "goodput_mean",
                "retransmitted_kbytes_mean",
                "timeouts_mean",
                "duration_mean_s",
                "tput_th_bps",
                "replications",
            ]
        )
        for x, r in sorted(points.items()):
            writer.writerow(
                [
                    x,
                    f"{r.throughput_bps_mean:.3f}",
                    f"{r.throughput_bps_std:.3f}",
                    f"{r.throughput_ci95_bps:.3f}",
                    f"{r.goodput_mean:.6f}",
                    f"{r.retransmitted_kbytes_mean:.3f}",
                    f"{r.timeouts_mean:.3f}",
                    f"{r.duration_mean:.3f}",
                    f"{r.tput_th_bps:.3f}",
                    r.replications,
                ]
            )
    return path


def series_to_csv(
    series: Dict[str, Mapping[Union[int, float], ReplicatedResult]],
    path: Union[str, Path],
    x_name: str = "x",
) -> Path:
    """Write several named sweeps side by side (long format).

    Columns: series label, the swept variable, throughput mean (bps),
    goodput, retransmitted KB.
    """
    path = Path(path)
    with path.open("w", newline="") as fp:
        writer = csv.writer(fp)
        writer.writerow(
            [
                "series",
                x_name,
                "throughput_bps_mean",
                "goodput_mean",
                "retransmitted_kbytes_mean",
            ]
        )
        for label, points in series.items():
            for x, r in sorted(points.items()):
                writer.writerow(
                    [
                        label,
                        x,
                        f"{r.throughput_bps_mean:.3f}",
                        f"{r.goodput_mean:.6f}",
                        f"{r.retransmitted_kbytes_mean:.3f}",
                    ]
                )
    return path
