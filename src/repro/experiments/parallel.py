"""Parallel experiment engine: fan seeds out over a process pool.

Every figure in the paper is an average over independent seeds, and
every seed is an independent single-threaded simulation — an
embarrassingly parallel workload.  :class:`ParallelRunner` takes a
list of fully-seeded :class:`~repro.experiments.topology.ScenarioConfig`
work units, consults an optional :class:`~repro.experiments.cache.ResultCache`,
and dispatches only the cache misses over a
``concurrent.futures.ProcessPoolExecutor`` (fork start method; falls
back to in-process serial execution when ``workers <= 1``, when there
is at most one miss, or when the platform cannot fork).

Workers return :class:`RunSummary` — a small picklable record of the
metrics the aggregation layer reads — rather than the full
:class:`~repro.experiments.topology.ScenarioResult`, whose live
sender/sink/link objects are neither picklable nor needed for
replicated statistics.  Results come back in input order, so the
aggregates downstream are bit-identical to a serial run over the same
seeds.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.experiments import topology
from repro.experiments.cache import ResultCache
from repro.experiments.topology import ScenarioConfig, ScenarioResult
from repro.metrics import ConnectionMetrics


@dataclass(frozen=True)
class RunSummary:
    """The picklable essence of one scenario run.

    Exactly what replication/sweep aggregation consumes: the connection
    metrics, the completion flag, the theoretical ceiling, and the
    seeded config the run was built from.  ``trace`` is always ``None``
    — replicated runs disable tracing — and exists so summary objects
    satisfy the same reads (``r.trace``, ``r.config.seed``, ...) that
    full results do.
    """

    config: ScenarioConfig
    metrics: ConnectionMetrics
    completed: bool
    tput_th_bps: float
    trace: None = None


def summarize(result: ScenarioResult) -> RunSummary:
    """Collapse a full scenario result to its picklable summary."""
    return RunSummary(
        config=result.config,
        metrics=result.metrics,
        completed=result.completed,
        tput_th_bps=result.tput_th_bps,
    )


def _execute_unit(config: ScenarioConfig) -> RunSummary:
    """Worker entry point: run one seeded config, return its summary.

    Module-level (not a closure) so the process pool can pickle it;
    looked up through :mod:`repro.experiments.topology` at call time so
    tests can monkeypatch ``run_scenario`` and count invocations.
    """
    return summarize(topology.run_scenario(config))


def _execute_unit_validated(config: ScenarioConfig) -> RunSummary:
    """Worker entry point with the invariant engine attached.

    A violation raises :class:`~repro.validate.InvariantViolationError`
    in the worker; the error (with its replay-bundle path) pickles
    back through the pool and aborts the batch.
    """
    return summarize(topology.run_scenario(config, validate=True))


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None``/``1`` → serial; ``0`` or negative → one worker per CPU.
    """
    if workers is None:
        return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method, or ``None`` where unavailable.

    Fork keeps worker startup at microseconds (no re-import of the
    package per worker); on platforms without it we stay serial rather
    than pay spawn's interpreter boot per pool.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


class ParallelRunner:
    """Runs batches of seeded scenario configs, cached then parallel.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs in-process; ``0`` means
        one per CPU.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    chunk_size:
        Work units per pool task.  Default: enough to give each worker
        ~4 chunks, which amortizes pickling without starving the tail.
    validate:
        Run every simulated unit under the invariant engine
        (:mod:`repro.validate`).  Cache hits skip simulation and are
        therefore not re-validated.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        validate: bool = False,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.chunk_size = chunk_size
        self.validate = validate

    @property
    def _unit(self):
        return _execute_unit_validated if self.validate else _execute_unit

    def _run_serial(self, configs: Sequence[ScenarioConfig]) -> List[RunSummary]:
        return [self._unit(config) for config in configs]

    def _run_pool(self, configs: Sequence[ScenarioConfig]) -> Iterator[RunSummary]:
        context = _fork_context()
        if context is None:
            yield from self._run_serial(configs)
            return
        workers = min(self.workers, len(configs))
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, len(configs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            yield from pool.map(self._unit, configs, chunksize=chunk)

    def run(self, configs: Sequence[ScenarioConfig]) -> List[RunSummary]:
        """Run every config, in input order, via cache then pool.

        Only cache misses are simulated; fresh results are written back
        so the next invocation of the same suite is pure cache reads.
        """
        configs = list(configs)
        if not configs:
            return []
        summaries: List[Optional[RunSummary]] = [None] * len(configs)
        miss_indices: List[int] = []
        keys: List[Optional[str]] = [None] * len(configs)
        if self.cache is not None:
            for i, config in enumerate(configs):
                keys[i] = self.cache.key(config)
                summaries[i] = self.cache.get(keys[i])
                if summaries[i] is None:
                    miss_indices.append(i)
        else:
            miss_indices = list(range(len(configs)))

        if miss_indices:
            miss_configs = [configs[i] for i in miss_indices]
            if self.workers <= 1 or len(miss_configs) <= 1:
                fresh = (self._unit(config) for config in miss_configs)
            else:
                fresh = self._run_pool(miss_configs)
            # Write each summary back the moment it lands: a crash
            # mid-batch must not discard the units already finished.
            for i, summary in zip(miss_indices, fresh):
                summaries[i] = summary
                if self.cache is not None and keys[i] is not None:
                    self.cache.put(keys[i], summary)

        assert all(s is not None for s in summaries)
        return summaries  # type: ignore[return-value]
