"""Parallel experiment engine: fault-tolerant fan-out over worker processes.

Every figure in the paper is an average over independent seeds, and
every seed is an independent single-threaded simulation — an
embarrassingly parallel workload.  :class:`ParallelRunner` takes a
list of fully-seeded :class:`~repro.experiments.topology.ScenarioConfig`
work units, consults an optional
:class:`~repro.experiments.cache.ResultCache` and
:class:`~repro.experiments.journal.CampaignJournal`, and dispatches
only the remaining misses one unit at a time over a supervised pool
of forked worker processes.

The supervision layer is what makes long campaigns survivable:

* **Per-unit submission** — each unit is sent to a worker and its
  result collected individually, so one bad unit can never poison a
  batch the way a chunked ``pool.map`` does.
* **Watchdogs** — a unit gets a wall-clock budget (``timeout``).  The
  worker aborts cooperatively via the engine watchdog
  (:class:`~repro.engine.simulator.WallClockExceeded`) and writes a
  replay bundle naming the hung config; if the worker itself is stuck
  (not even reaching the watchdog), the supervisor SIGKILLs it after
  a grace period and respawns a fresh one.
* **Retry with backoff** — timeouts and worker crashes are retried up
  to :class:`~repro.experiments.faults.RetryPolicy.max_retries` times
  with exponential backoff and full jitter; deterministic unit errors
  are never retried.
* **Quarantine / graceful degradation** — a unit that fails every
  attempt is recorded as a structured
  :class:`~repro.experiments.faults.UnitFailure` and the campaign
  continues (``fail_fast=False``) or aborts with a taxonomy exception
  (``fail_fast=True``, the library default).
* **Durability** — every completed summary is written to the cache
  and journal the moment it lands, and SIGINT/SIGTERM raise
  :class:`~repro.experiments.faults.CampaignInterrupted` after
  flushing, so an interrupted campaign resumes instead of restarting.

Workers return :class:`RunSummary` — a small picklable record of the
metrics the aggregation layer reads.  Results come back in input
order, so the aggregates downstream are bit-identical to a serial run
over the same seeds, faults or no faults.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.simulator import WallClockExceeded
from repro.experiments import topology
from repro.experiments.cache import ResultCache
from repro.experiments.faults import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_TIMEOUT,
    CampaignInterrupted,
    CompletenessReport,
    RetryPolicy,
    UnitFailure,
    UnitQuarantined,
)
from repro.experiments.journal import CampaignJournal
from repro.experiments.topology import ScenarioConfig, ScenarioResult
from repro.metrics import ConnectionMetrics

_log = logging.getLogger(__name__)

#: The supervisor hard-kills a worker this long after the cooperative
#: in-worker watchdog should have fired: ``timeout * factor + slack``.
HARD_KILL_FACTOR = 1.5
HARD_KILL_SLACK = 1.0

#: Poll granularity of the supervision loop, seconds.  Bounds how
#: stale the watchdog/interrupt checks can get; results themselves
#: wake the loop immediately.
POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class RunSummary:
    """The picklable essence of one scenario run.

    Exactly what replication/sweep aggregation consumes: the connection
    metrics, the completion flag, the theoretical ceiling, and the
    seeded config the run was built from.  ``trace`` is always ``None``
    — replicated runs disable tracing — and exists so summary objects
    satisfy the same reads (``r.trace``, ``r.config.seed``, ...) that
    full results do.
    """

    config: ScenarioConfig
    metrics: ConnectionMetrics
    completed: bool
    tput_th_bps: float
    trace: None = None


def summarize(result: ScenarioResult) -> RunSummary:
    """Collapse a full scenario result to its picklable summary."""
    return RunSummary(
        config=result.config,
        metrics=result.metrics,
        completed=result.completed,
        tput_th_bps=result.tput_th_bps,
    )


def _execute_unit(
    config: ScenarioConfig, wall_timeout: Optional[float] = None
) -> RunSummary:
    """Worker entry point: run one seeded config, return its summary.

    Module-level (not a closure) so worker processes can pickle it;
    looked up through :mod:`repro.experiments.topology` at call time so
    tests can monkeypatch ``run_scenario`` and count invocations.
    ``wall_timeout`` arms the engine's cooperative watchdog.
    """
    if wall_timeout is None:
        return summarize(topology.run_scenario(config))
    return summarize(topology.run_scenario(config, wall_timeout=wall_timeout))


def _execute_unit_validated(
    config: ScenarioConfig, wall_timeout: Optional[float] = None
) -> RunSummary:
    """Worker entry point with the invariant engine attached.

    A violation raises :class:`~repro.validate.InvariantViolationError`
    in the worker; the error (with its replay-bundle path) pickles
    back to the supervisor, which treats it as a deterministic unit
    error (never retried).
    """
    return summarize(
        topology.run_scenario(config, validate=True, wall_timeout=wall_timeout)
    )


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None``/``1`` → serial; ``0`` or negative → one worker per CPU.
    """
    if workers is None:
        return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method, or ``None`` where unavailable.

    Fork keeps worker startup at microseconds (no re-import of the
    package per worker); on platforms without it we stay serial rather
    than pay spawn's interpreter boot per pool.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _write_hang_bundle(config: ScenarioConfig, elapsed: float) -> Optional[str]:
    """Record a timed-out config as a replay bundle; best-effort.

    The bundle names the exact (config, seed, code) point that hung,
    so ``repro replay <bundle>`` reproduces the runaway run under a
    debugger instead of leaving "it timed out once" unactionable.
    """
    try:
        from repro.validate.bundle import write_bundle
        from repro.validate.engine import Violation

        violation = Violation(
            checker="watchdog",
            time=elapsed,
            message=f"unit exceeded its wall-clock budget after {elapsed:.2f}s",
        )
        return str(write_bundle(config, [violation], log=None))
    except Exception:  # pragma: no cover - bundle dir unwritable etc.
        return None


@dataclass
class _RemoteError:
    """A worker exception that could not be pickled whole."""

    type_name: str
    message: str


def _portable_error(exc: BaseException):
    """``exc`` itself when it pickles, else a :class:`_RemoteError`."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return _RemoteError(type(exc).__name__, str(exc))


def _worker_main(conn, unit_fn) -> None:
    """Worker process loop: receive a unit, run it, send the outcome.

    SIGINT is ignored (the terminal delivers Ctrl-C to the whole
    process group; shutdown is the supervisor's decision, via a
    ``None`` sentinel or SIGKILL).  Messages are tagged tuples::

        ("ok",      index, summary)
        ("timeout", index, message, bundle_path)
        ("err",     index, exception_or_remote_error)
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        index, config, wall_timeout = task
        started = time.monotonic()
        try:
            summary = unit_fn(config, wall_timeout)
            message: Tuple = ("ok", index, summary)
        except WallClockExceeded:
            bundle = _write_hang_bundle(config, time.monotonic() - started)
            message = (
                "timeout",
                index,
                f"wall-clock budget of {wall_timeout:g}s exceeded",
                bundle,
            )
        except BaseException as exc:
            message = ("err", index, _portable_error(exc))
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break


@dataclass
class _Task:
    """Supervisor-side state of one work unit."""

    index: int  #: position in the campaign's config list
    config: ScenarioConfig
    key: Optional[str]
    attempts: int = 0  #: executions consumed so far
    errors: List[str] = field(default_factory=list)
    not_before: float = 0.0  #: monotonic time the next attempt may start
    bundle_path: Optional[str] = None


def _pop_ready(pending: "deque[_Task]", now: float) -> Optional[_Task]:
    """Remove and return the first task whose backoff has elapsed."""
    for i, task in enumerate(pending):
        if task.not_before <= now:
            del pending[i]
            return task
    return None


class _WorkerHandle:
    """One supervised worker process and its duplex pipe."""

    def __init__(self, context, unit_fn) -> None:
        self.conn, child_conn = multiprocessing.Pipe()
        self.process = context.Process(
            target=_worker_main, args=(child_conn, unit_fn), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[_Task] = None
        self.started_at: float = 0.0

    def assign(self, task: _Task, wall_timeout: Optional[float]) -> None:
        self.task = task
        self.started_at = time.monotonic()
        self.conn.send((task.index, task.config, wall_timeout))

    def overdue(self, hard_timeout: Optional[float]) -> bool:
        """True when the current unit blew even the hard-kill deadline."""
        return (
            self.task is not None
            and hard_timeout is not None
            and time.monotonic() - self.started_at > hard_timeout
        )

    def kill(self) -> None:
        """SIGKILL the worker and reap it."""
        try:
            self.process.kill()
            self.process.join()
        finally:
            self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join()
        self.conn.close()


@dataclass
class CampaignResult:
    """Outcome of one campaign: ordered summaries plus completeness.

    ``summaries[i]`` is ``None`` exactly when unit ``i`` was
    quarantined; ``report.quarantined`` says why.
    """

    summaries: List[Optional[RunSummary]]
    report: CompletenessReport

    def require_complete(self) -> List[RunSummary]:
        """All summaries, or the first quarantined unit's exception."""
        if self.report.quarantined:
            raise self.report.quarantined[0].to_exception()
        assert all(s is not None for s in self.summaries)
        return self.summaries  # type: ignore[return-value]

    def surviving(self) -> List[RunSummary]:
        """The summaries that completed (graceful-degradation view)."""
        return [s for s in self.summaries if s is not None]


class ParallelRunner:
    """Runs batches of seeded scenario configs with fault tolerance.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs in-process; ``0`` means
        one per CPU.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely
        and fresh results are written back per unit, immediately.
    validate:
        Run every simulated unit under the invariant engine
        (:mod:`repro.validate`).  Cache hits skip simulation and are
        therefore not re-validated.
    timeout:
        Per-unit wall-clock budget in seconds; ``None`` disables the
        watchdogs.  In pool mode a unit that overshoots is aborted
        cooperatively (or its worker hard-killed at
        ``timeout * 1.5 + 1`` as a backstop); in serial mode only the
        cooperative engine watchdog applies.
    retry:
        :class:`RetryPolicy` for timeouts and worker crashes.
        ``None`` uses the defaults (2 retries, exponential backoff
        with full jitter).
    fail_fast:
        When ``True`` (default) the first quarantined unit aborts the
        campaign with its taxonomy exception; when ``False`` the
        campaign degrades gracefully to partial results plus a
        completeness report.
    journal:
        Optional :class:`CampaignJournal`.  Completed units are
        journaled immediately and journaled units are skipped, which
        is what ``--resume`` builds on.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        validate: bool = False,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        fail_fast: bool = True,
        journal: Optional[CampaignJournal] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.validate = validate
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.fail_fast = fail_fast
        self.journal = journal

    @property
    def _unit(self):
        return _execute_unit_validated if self.validate else _execute_unit

    # -- key/bookkeeping helpers ------------------------------------------

    def _key(self, config: ScenarioConfig) -> Optional[str]:
        if self.cache is not None:
            return self.cache.key(config)
        if self.journal is not None:
            return self.journal.key(config)
        return None

    def _fail(self, task: _Task, kind: str, message: str) -> UnitFailure:
        return UnitFailure(
            index=task.index,
            key=task.key,
            seed=task.config.seed,
            scheme=task.config.scheme.value,
            kind=kind,
            message=message,
            attempts=task.attempts,
            bundle_path=task.bundle_path,
        )

    def _quarantine(
        self, task: _Task, kind: str, message: str, failures: Dict[int, UnitFailure]
    ) -> None:
        """Record a unit that failed for good; raise in fail-fast mode."""
        failure = self._fail(task, kind, message)
        if self.journal is not None:
            self.journal.record_failure(failure)
        if self.fail_fast:
            raise failure.to_exception()
        _log.warning("quarantined: %s", failure.describe())
        failures[task.index] = failure

    def _retry_or_quarantine(
        self,
        task: _Task,
        kind: str,
        message: str,
        pending: "deque[_Task]",
        failures: Dict[int, UnitFailure],
    ) -> bool:
        """Requeue a retryable fault with backoff, or quarantine it.

        Returns True when the task was requeued.
        """
        task.errors.append(f"attempt {task.attempts}: {kind}: {message}")
        if task.attempts <= self.retry.max_retries:
            delay = self.retry.delay(task.attempts - 1, task.key or str(task.index))
            task.not_before = time.monotonic() + delay
            _log.warning(
                "unit %d (seed %d): %s — retry %d/%d in %.2fs",
                task.index,
                task.config.seed,
                kind,
                task.attempts,
                self.retry.max_retries,
                delay,
            )
            pending.append(task)
            return True
        self._quarantine(task, kind, "; ".join(task.errors), failures)
        return False

    # -- execution paths ---------------------------------------------------

    def _run_serial(
        self,
        tasks: List[_Task],
        deliver: Callable[[int, RunSummary], None],
        interrupted: Dict[str, Optional[int]],
        completed: Callable[[], int],
        total: int,
    ) -> Dict[int, UnitFailure]:
        """In-process execution with the same fault semantics as the pool.

        Crashes cannot happen here (no worker processes); timeouts are
        enforced by the engine's cooperative watchdog only.
        """
        pending = deque(tasks)
        failures: Dict[int, UnitFailure] = {}
        while pending:
            if interrupted["sig"] is not None:
                raise CampaignInterrupted(
                    interrupted["sig"],
                    completed(),
                    total,
                    str(self.journal.path) if self.journal else None,
                )
            task = pending.popleft()
            wait = task.not_before - time.monotonic()
            if wait > 0:
                time.sleep(min(wait, POLL_INTERVAL))
                pending.appendleft(task)
                continue
            task.attempts += 1
            started = time.monotonic()
            try:
                summary = self._unit(task.config, self.timeout)
            except WallClockExceeded:
                task.bundle_path = _write_hang_bundle(
                    task.config, time.monotonic() - started
                )
                self._retry_or_quarantine(
                    task,
                    FAULT_TIMEOUT,
                    f"wall-clock budget of {self.timeout:g}s exceeded",
                    pending,
                    failures,
                )
                continue
            except KeyboardInterrupt:
                raise CampaignInterrupted(
                    signal.SIGINT,
                    completed(),
                    total,
                    str(self.journal.path) if self.journal else None,
                )
            except Exception as exc:
                if self.fail_fast:
                    raise
                self._quarantine(
                    task, FAULT_ERROR, f"{type(exc).__name__}: {exc}", failures
                )
                continue
            deliver(task.index, summary)
        return failures

    def _run_supervised(
        self,
        tasks: List[_Task],
        deliver: Callable[[int, RunSummary], None],
        interrupted: Dict[str, Optional[int]],
        completed: Callable[[], int],
        total: int,
    ) -> Dict[int, UnitFailure]:
        """Supervised pool: per-unit dispatch, watchdogs, retry, respawn."""
        context = _fork_context()
        assert context is not None  # dispatch guarantees this
        hard_timeout = (
            self.timeout * HARD_KILL_FACTOR + HARD_KILL_SLACK
            if self.timeout is not None
            else None
        )
        pending = deque(tasks)
        failures: Dict[int, UnitFailure] = {}
        n_workers = min(self.workers, len(tasks))
        workers = [_WorkerHandle(context, self._unit) for _ in range(n_workers)]

        def outstanding() -> int:
            return len(pending) + sum(1 for w in workers if w.task is not None)

        try:
            while outstanding():
                if interrupted["sig"] is not None:
                    raise CampaignInterrupted(
                        interrupted["sig"],
                        completed(),
                        total,
                        str(self.journal.path) if self.journal else None,
                    )
                now = time.monotonic()
                # Hand ready units to idle workers (skipping tasks
                # still inside their backoff window).
                for worker in workers:
                    if worker.task is None and pending:
                        task = _pop_ready(pending, now)
                        if task is None:
                            break  # everything pending is backing off
                        task.attempts += 1
                        worker.assign(task, self.timeout)
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    time.sleep(POLL_INTERVAL)
                    continue
                # Wake on a result, a worker death, or the poll tick.
                multiprocessing.connection.wait(
                    [w.conn for w in busy] + [w.process.sentinel for w in busy],
                    timeout=POLL_INTERVAL,
                )
                for worker in busy:
                    if worker.task is None:
                        continue
                    if worker.conn.poll():
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            # A dead worker's pipe polls readable (EOF).
                            self._on_crash(
                                worker, workers, context, pending, failures
                            )
                            continue
                        self._on_message(
                            worker, message, deliver, pending, failures
                        )
                    elif not worker.process.is_alive():
                        self._on_crash(worker, workers, context, pending, failures)
                    elif worker.overdue(hard_timeout):
                        self._on_hard_timeout(
                            worker, workers, context, pending, failures
                        )
        finally:
            for worker in workers:
                if worker.process.is_alive() and worker.task is None:
                    worker.stop()
                else:
                    worker.kill()
        return failures

    def _on_message(self, worker, message, deliver, pending, failures) -> None:
        task = worker.task
        worker.task = None
        kind = message[0]
        if kind == "ok":
            deliver(task.index, message[2])
        elif kind == "timeout":
            task.bundle_path = message[3]
            self._retry_or_quarantine(
                task, FAULT_TIMEOUT, message[2], pending, failures
            )
        else:  # "err": deterministic unit failure — never retried
            error = message[2]
            if self.fail_fast:
                if isinstance(error, BaseException):
                    raise error
                raise UnitQuarantined(
                    self._fail(
                        task, FAULT_ERROR, f"{error.type_name}: {error.message}"
                    )
                )
            detail = (
                f"{type(error).__name__}: {error}"
                if isinstance(error, BaseException)
                else f"{error.type_name}: {error.message}"
            )
            self._quarantine(task, FAULT_ERROR, detail, failures)

    def _respawn(self, worker, workers, context) -> None:
        """Replace a dead/killed worker in place."""
        workers[workers.index(worker)] = _WorkerHandle(context, self._unit)

    def _on_crash(self, worker, workers, context, pending, failures) -> None:
        task = worker.task
        worker.task = None
        worker.process.join(timeout=1.0)  # reap so exitcode is real
        exitcode = worker.process.exitcode
        worker.kill()  # reap + close the pipe
        self._respawn(worker, workers, context)
        self._retry_or_quarantine(
            task,
            FAULT_CRASH,
            f"worker process died (exit code {exitcode})",
            pending,
            failures,
        )

    def _on_hard_timeout(self, worker, workers, context, pending, failures) -> None:
        task = worker.task
        worker.task = None
        worker.kill()
        self._respawn(worker, workers, context)
        if task.bundle_path is None:
            task.bundle_path = _write_hang_bundle(
                task.config, time.monotonic() - worker.started_at
            )
        self._retry_or_quarantine(
            task,
            FAULT_TIMEOUT,
            f"worker unresponsive past the hard deadline "
            f"({self.timeout:g}s budget); killed",
            pending,
            failures,
        )

    # -- campaign orchestration -------------------------------------------

    def run_campaign(self, configs: Sequence[ScenarioConfig]) -> CampaignResult:
        """Run every config with full fault handling.

        Returns a :class:`CampaignResult`: summaries in input order
        (``None`` for quarantined units) and a
        :class:`~repro.experiments.faults.CompletenessReport`.
        Completed units are written to the cache/journal the moment
        they land, so any crash or interrupt preserves them.
        """
        configs = list(configs)
        n = len(configs)
        summaries: List[Optional[RunSummary]] = [None] * n
        keys: List[Optional[str]] = [None] * n
        from_cache = from_journal = 0
        # Accumulated wall-clock cost of write-back durability (mutable
        # cell so the deliver closure can add to it).
        write_seconds = {"cache": 0.0, "journal": 0.0}
        tasks: List[_Task] = []
        for i, config in enumerate(configs):
            keys[i] = self._key(config)
            if self.cache is not None:
                summaries[i] = self.cache.get(keys[i])
                if summaries[i] is not None:
                    from_cache += 1
                    continue
            if self.journal is not None:
                summaries[i] = self.journal.get(keys[i])
                if summaries[i] is not None:
                    from_journal += 1
                    # Promote journal hits into the cache: the journal
                    # is per-campaign, the cache lives on.
                    if self.cache is not None:
                        t0 = time.perf_counter()
                        self.cache.put(keys[i], summaries[i])
                        write_seconds["cache"] += time.perf_counter() - t0
                    continue
            tasks.append(_Task(index=i, config=config, key=keys[i]))

        def deliver(index: int, summary: RunSummary) -> None:
            summaries[index] = summary
            if self.cache is not None and keys[index] is not None:
                t0 = time.perf_counter()
                self.cache.put(keys[index], summary)
                write_seconds["cache"] += time.perf_counter() - t0
            if self.journal is not None:
                t0 = time.perf_counter()
                self.journal.record(keys[index], summary)
                write_seconds["journal"] += time.perf_counter() - t0

        def completed() -> int:
            return sum(1 for s in summaries if s is not None)

        failures: Dict[int, UnitFailure] = {}
        if tasks:
            interrupted: Dict[str, Optional[int]] = {"sig": None}

            def _flag(signum, frame):
                interrupted["sig"] = signum

            previous: List[Tuple[int, object]] = []
            try:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    previous.append((signum, signal.signal(signum, _flag)))
            except ValueError:
                # Not the main thread: signals stay with their owner.
                pass
            try:
                if self.workers > 1 and len(tasks) > 1:
                    if _fork_context() is None:
                        _log.warning(
                            "fork start method unavailable: running %d "
                            "unit(s) serially despite --workers %d "
                            "(spawn would re-import the package per "
                            "worker; hard-kill watchdogs disabled)",
                            len(tasks),
                            self.workers,
                        )
                        failures = self._run_serial(
                            tasks, deliver, interrupted, completed, n
                        )
                    else:
                        failures = self._run_supervised(
                            tasks, deliver, interrupted, completed, n
                        )
                else:
                    failures = self._run_serial(
                        tasks, deliver, interrupted, completed, n
                    )
            finally:
                for signum, handler in previous:
                    signal.signal(signum, handler)

        report = CompletenessReport(
            total=n,
            completed=completed(),
            from_cache=from_cache,
            from_journal=from_journal,
            quarantined=tuple(
                failures[i] for i in sorted(failures)
            ),
            cache_write_seconds=write_seconds["cache"],
            journal_write_seconds=write_seconds["journal"],
        )
        return CampaignResult(summaries=summaries, report=report)

    def run(self, configs: Sequence[ScenarioConfig]) -> List[RunSummary]:
        """Run every config, in input order; raise on any quarantine.

        The strict interface: callers that cannot use partial results
        get the first failure as its taxonomy exception.  Use
        :meth:`run_campaign` for graceful degradation.
        """
        return self.run_campaign(configs).require_complete()
