"""Content-addressed on-disk cache for simulation results.

A cached entry is keyed by a stable digest of the full
:class:`~repro.experiments.topology.ScenarioConfig` (every field,
recursively canonicalized), the seed baked into that config, and a
*code-version token* — a hash over the ``repro`` package's source
files.  Any edit to the simulator therefore invalidates every cached
point automatically; there is no manual versioning to forget.

The store layout is ``<root>/<aa>/<digest>.pkl`` (two-level fan-out so
directories stay small).  Writes are atomic (tmp file + ``os.replace``)
so a crashed or parallel run can never leave a torn entry.  The cache
stores only the lightweight :class:`~repro.experiments.parallel.RunSummary`
payload, never live simulation objects.

Default location: ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/repro-tcp-wireless``.  ``repro sweep``/``repro figure``
use it unless ``--no-cache`` is passed; library calls only cache when
handed a :class:`ResultCache` explicitly.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

#: Bump when the cached payload format changes incompatibly.
CACHE_FORMAT = 1

#: A ``*.tmp`` file older than this (seconds) is an orphan from a
#: writer that died mid-``put`` — safe to sweep.  Younger ones may
#: belong to a live concurrent writer and are left alone.
STALE_TMP_AGE = 3600.0

_code_version_token: Optional[str] = None


def source_files(package_root: Path) -> list:
    """Every ``.py`` file under ``package_root``, in digest order.

    Exposed so tests can assert which files participate in the code
    fingerprint (e.g. that ``validate/`` edits invalidate the cache).
    """
    return sorted(package_root.rglob("*.py"))


def _hash_tree(package_root: Path) -> str:
    digest = hashlib.sha256()
    for source in source_files(package_root):
        digest.update(str(source.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
    return digest.hexdigest()[:16]


def code_version_token(package_root: Optional[Path] = None) -> str:
    """Hash of every ``repro`` source file (the cache's code fingerprint).

    With no argument, hashes the installed ``repro`` package and caches
    the result for the process (~60 small files, a few milliseconds on
    first use — noise next to a single simulated run).  An explicit
    ``package_root`` is hashed fresh every call; tests use this to
    check invalidation behaviour against a scratch tree.
    """
    if package_root is not None:
        return _hash_tree(Path(package_root))
    global _code_version_token
    if _code_version_token is None:
        import repro

        _code_version_token = _hash_tree(Path(repro.__file__).resolve().parent)
    return _code_version_token


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Dataclasses become ``{class-name: {field: ...}}`` mappings, enums
    their values, classes their qualified names; floats go through
    ``repr`` so the digest sees full precision, not str() rounding.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {f"{type(value).__module__}.{type(value).__qualname__}": fields}
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, type):
        return f"{value.__module__}.{value.__qualname__}"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__qualname__} for cache keying"
    )


def config_digest(config: Any, code_token: Optional[str] = None) -> str:
    """Stable content digest for one fully-seeded scenario config."""
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "code": code_token if code_token is not None else code_version_token(),
            "config": _canonical(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_dir() -> Path:
    """Where ``repro`` caches results unless told otherwise."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tcp-wireless"


class ResultCache:
    """Content-addressed pickle store for :class:`RunSummary` objects."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        # One token per cache handle: stable within a run, recomputed
        # per process so code edits are always picked up.
        self._code_token = code_version_token()
        self.sweep_stale_tmp()

    def sweep_stale_tmp(self, max_age: float = STALE_TMP_AGE) -> int:
        """Remove orphaned ``*.tmp`` files left by writers that died
        mid-``put``; returns the number removed.

        Only files older than ``max_age`` seconds go — a young tmp file
        may belong to a live writer about to ``os.replace`` it.  Runs
        opportunistically on every cache open, so a crashed campaign
        never accumulates droppings.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - max_age
        for orphan in self.root.glob("*/*.tmp"):
            try:
                if orphan.stat().st_mtime < cutoff:
                    orphan.unlink()
                    removed += 1
            except OSError:
                # Swept by a concurrent opener, or permissions — the
                # sweep is best-effort either way.
                continue
        return removed

    def key(self, config: Any) -> str:
        """Digest for ``config`` under the current code version."""
        return config_digest(config, self._code_token)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Load a cached summary, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("format") != CACHE_FORMAT:
            self.misses += 1
            return None
        self.hits += 1
        return entry["summary"]

    def put(self, key: str, summary: Any) -> None:
        """Atomically persist one summary under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {"format": CACHE_FORMAT, "summary": summary},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
