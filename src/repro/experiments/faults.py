"""Fault taxonomy and retry policy for campaign execution.

A *campaign* is a batch of independent simulation units (one seeded
:class:`~repro.experiments.topology.ScenarioConfig` each) run through
:class:`~repro.experiments.parallel.ParallelRunner`.  The paper's
results are averages over many such units, and the engine's job is to
keep a campaign alive the way EBSN keeps a TCP connection alive:
recover from local faults locally instead of restarting the world.

Three fault kinds exist, mirroring what can actually go wrong:

``timeout``
    The unit exceeded its wall-clock budget — the simulation is hung
    or runaway.  The supervisor kills the worker (or the in-worker
    watchdog aborts cooperatively) and retries; a replay bundle
    records the offending config for ``repro replay``.
``crash``
    The worker process died (OOM kill, segfault, chaos test).  The
    unit it was holding is retried on a fresh worker.
``error``
    The unit itself raised — a deterministic failure (e.g. an
    invariant violation).  Retrying cannot help, so it is never
    retried: it propagates in fail-fast mode or quarantines otherwise.

Timeouts and crashes are *environmental* and retried with exponential
backoff plus full jitter (the AWS-style policy: delay drawn uniformly
from ``[0, min(cap, base * 2**attempt))``, which decorrelates retry
storms).  A unit that exhausts its retry budget is **quarantined**: a
structured :class:`UnitFailure` is recorded, the campaign continues,
and the final :class:`CompletenessReport` says exactly what is
missing from the aggregates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: The structured failure kinds (``UnitFailure.kind`` values).
FAULT_TIMEOUT = "timeout"
FAULT_CRASH = "crash"
FAULT_ERROR = "error"

#: Fault kinds worth retrying (environmental, not deterministic).
RETRYABLE_FAULTS = frozenset({FAULT_TIMEOUT, FAULT_CRASH})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter.

    ``max_retries`` counts *re*-executions: a unit runs at most
    ``1 + max_retries`` times.  Delays are deterministic given the
    unit key (the jitter RNG is seeded from it), so campaigns remain
    reproducible end to end.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 5.0

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (0-based), seconds."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        if ceiling <= 0:
            return 0.0
        return random.Random(f"{key}:{attempt}").uniform(0.0, ceiling)


@dataclass(frozen=True)
class UnitFailure:
    """Structured record of one quarantined work unit.

    Everything is a primitive so the record survives pickling,
    journalling as JSON, and display — no live exception objects.
    """

    index: int  #: position of the unit in the campaign's config list
    key: Optional[str]  #: content digest (when a cache/journal keyed it)
    seed: int
    scheme: str
    kind: str  #: one of FAULT_TIMEOUT / FAULT_CRASH / FAULT_ERROR
    message: str
    attempts: int  #: executions consumed (1 + retries)
    bundle_path: Optional[str] = None  #: replay bundle for hung units

    def describe(self) -> str:
        """Human-readable one-liner for reports and logs."""
        where = f"seed {self.seed}, scheme {self.scheme}"
        extra = f" [replay: {self.bundle_path}]" if self.bundle_path else ""
        return (
            f"unit {self.index} ({where}): {self.kind} after "
            f"{self.attempts} attempt(s) — {self.message}{extra}"
        )

    def to_exception(self) -> "CampaignError":
        """The taxonomy exception this failure raises in fail-fast mode."""
        if self.kind == FAULT_TIMEOUT:
            return UnitTimeout(self)
        if self.kind == FAULT_CRASH:
            return WorkerCrashed(self)
        return UnitQuarantined(self)


class CampaignError(RuntimeError):
    """Base of the campaign fault taxonomy.

    Carries the structured :class:`UnitFailure` and defines
    ``__reduce__`` so every subclass survives the trip through a
    process pool's pickler.
    """

    def __init__(self, failure: UnitFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure

    def __reduce__(self):
        return (type(self), (self.failure,))


class UnitTimeout(CampaignError):
    """A unit exceeded its wall-clock budget on every attempt."""


class WorkerCrashed(CampaignError):
    """A worker process died on every attempt at this unit."""


class UnitQuarantined(CampaignError):
    """A unit failed deterministically (or unclassifiably) and was
    quarantined; the campaign's aggregates are missing this unit."""


class CampaignInterrupted(RuntimeError):
    """SIGINT/SIGTERM arrived mid-campaign.

    The journal (when one is attached) already holds every completed
    unit — the exception reports how much survives so the caller can
    exit cleanly and advise ``--resume``.
    """

    def __init__(
        self,
        signum: int,
        completed: int,
        total: int,
        journal_path: Optional[str] = None,
    ) -> None:
        name = {2: "SIGINT", 15: "SIGTERM"}.get(signum, f"signal {signum}")
        where = f"{completed}/{total} units complete"
        hint = f"; resume with --resume {journal_path}" if journal_path else ""
        super().__init__(f"campaign interrupted by {name} ({where}{hint})")
        self.signum = signum
        self.completed = completed
        self.total = total
        self.journal_path = journal_path

    def __reduce__(self):
        return (
            type(self),
            (self.signum, self.completed, self.total, self.journal_path),
        )


@dataclass(frozen=True)
class CompletenessReport:
    """What a campaign actually delivered, fault by fault.

    ``completed == total`` means full-fidelity aggregates; anything
    less is an explicit, enumerated degradation — never a silent one.
    """

    total: int
    completed: int
    from_cache: int = 0
    from_journal: int = 0
    quarantined: Tuple[UnitFailure, ...] = ()
    #: Wall-clock seconds spent writing finished units back to the
    #: result cache / crash journal during the campaign.  Durability
    #: is bought on the critical path (units are persisted the moment
    #: they land), so its cost is reported rather than hidden.
    cache_write_seconds: float = 0.0
    journal_write_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        return self.completed == self.total

    @property
    def simulated(self) -> int:
        """Units executed fresh this campaign (not cache/journal hits)."""
        return self.completed - self.from_cache - self.from_journal

    def describe(self) -> str:
        """Multi-line human-readable completeness summary."""
        lines = [
            f"campaign: {self.completed}/{self.total} units completed "
            f"({self.simulated} simulated, {self.from_cache} from cache, "
            f"{self.from_journal} from journal)"
        ]
        if self.cache_write_seconds or self.journal_write_seconds:
            lines.append(
                f"write-back: cache {self.cache_write_seconds * 1e3:.1f} ms, "
                f"journal {self.journal_write_seconds * 1e3:.1f} ms"
            )
        if self.quarantined:
            lines.append(
                f"quarantined ({len(self.quarantined)} unit(s); aggregates "
                f"are PARTIAL):"
            )
            lines.extend(f"  - {f.describe()}" for f in self.quarantined)
        return "\n".join(lines)


def merge_reports(reports: Sequence[CompletenessReport]) -> CompletenessReport:
    """Fold per-point reports into one campaign-wide report."""
    return CompletenessReport(
        total=sum(r.total for r in reports),
        completed=sum(r.completed for r in reports),
        from_cache=sum(r.from_cache for r in reports),
        from_journal=sum(r.from_journal for r in reports),
        quarantined=tuple(f for r in reports for f in r.quarantined),
        cache_write_seconds=sum(r.cache_write_seconds for r in reports),
        journal_write_seconds=sum(r.journal_write_seconds for r in reports),
    )
