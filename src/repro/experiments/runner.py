"""Replication and sweeping.

The paper reports results with "standard deviation ... less than 4%";
each point is therefore an average over several seeds.
:func:`run_replicated` runs one configuration over N seeds and
aggregates; :func:`sweep` maps that over a parameter list.

Both route through :class:`~repro.experiments.parallel.ParallelRunner`:
pass ``workers=N`` to fan the seeds out over a process pool and an
optional :class:`~repro.experiments.cache.ResultCache` to skip points
that were already simulated under the current code version.  The
aggregates are bit-identical whichever path executes them — same
seeds, same per-seed metrics, same reduction order.

Both are also fault-tolerant (see :mod:`repro.experiments.faults`):
``timeout`` bounds each seed in wall-clock seconds, ``retries`` bounds
how often a timed-out/crashed seed is re-run, ``journal`` checkpoints
completed seeds for ``--resume``, and ``fail_fast=False`` degrades to
*partial* aggregates — the surviving seeds are averaged and every
missing one is enumerated in the result's ``failures``/``report``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.experiments.cache import ResultCache
from repro.experiments.faults import (
    CompletenessReport,
    RetryPolicy,
    UnitFailure,
)
from repro.experiments.journal import CampaignJournal
from repro.experiments.parallel import ParallelRunner, RunSummary
from repro.experiments.topology import ScenarioConfig

T = TypeVar("T")


#: Two-sided 95% Student-t critical values by degrees of freedom
#: (1..30); beyond 30 the normal value 1.96 is close enough.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t95(dof: int) -> float:
    """95% two-sided Student-t critical value."""
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    return _T95[dof - 1] if dof <= len(_T95) else 1.96


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of one configuration over several seeds.

    ``replications`` counts the seeds that actually contributed; when
    a campaign degraded gracefully, ``failures`` lists every
    quarantined seed and ``partial`` is True.  Full-fidelity results
    have an empty ``failures`` tuple, as before.
    """

    config: ScenarioConfig
    replications: int
    throughput_bps_mean: float
    throughput_bps_std: float
    goodput_mean: float
    retransmitted_kbytes_mean: float
    timeouts_mean: float
    duration_mean: float
    tput_th_bps: float
    results: tuple
    failures: Tuple[UnitFailure, ...] = ()
    report: Optional[CompletenessReport] = None

    @property
    def partial(self) -> bool:
        """True when quarantined seeds are missing from the averages."""
        return bool(self.failures)

    @property
    def attempted(self) -> int:
        """Seeds requested: contributors plus quarantined."""
        return self.replications + len(self.failures)

    @property
    def throughput_kbps(self) -> float:
        return self.throughput_bps_mean / 1000.0

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps_mean / 1e6

    @property
    def throughput_rel_std(self) -> float:
        """Relative standard deviation (the paper keeps this < 4%)."""
        if self.throughput_bps_mean == 0:
            return 0.0
        return self.throughput_bps_std / self.throughput_bps_mean

    @property
    def throughput_ci95_bps(self) -> float:
        """Half-width of the 95% confidence interval on the mean (bps)."""
        if self.replications < 2:
            return 0.0
        return (
            t95(self.replications - 1)
            * self.throughput_bps_std
            / math.sqrt(self.replications)
        )

    def throughput_differs_from(self, other: "ReplicatedResult") -> bool:
        """True when the two 95% CIs on mean throughput do not overlap
        (a conservative significance check for scheme comparisons)."""
        low_self = self.throughput_bps_mean - self.throughput_ci95_bps
        high_self = self.throughput_bps_mean + self.throughput_ci95_bps
        low_other = other.throughput_bps_mean - other.throughput_ci95_bps
        high_other = other.throughput_bps_mean + other.throughput_ci95_bps
        return high_self < low_other or high_other < low_self


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))


def _seeded_configs(
    config: ScenarioConfig, replications: int, base_seed: int
) -> List[ScenarioConfig]:
    """The per-seed work units behind one replicated point."""
    return [
        replace(config, seed=base_seed + i, record_trace=False)
        for i in range(replications)
    ]


def _aggregate(
    config: ScenarioConfig,
    summaries: Sequence[RunSummary],
    failures: Tuple[UnitFailure, ...] = (),
    report: Optional[CompletenessReport] = None,
) -> ReplicatedResult:
    """Reduce per-seed summaries to one :class:`ReplicatedResult`."""
    for summary in summaries:
        if not summary.completed:
            raise RuntimeError(
                f"run with seed {summary.config.seed} did not complete within "
                f"{summary.config.max_sim_time} simulated seconds "
                f"(scheme={summary.config.scheme.value}, "
                f"packet={summary.config.tcp.packet_size})"
            )
    throughputs = [r.metrics.throughput_bps for r in summaries]
    return ReplicatedResult(
        config=config,
        replications=len(summaries),
        throughput_bps_mean=_mean(throughputs),
        throughput_bps_std=_std(throughputs),
        goodput_mean=_mean([r.metrics.goodput for r in summaries]),
        retransmitted_kbytes_mean=_mean(
            [r.metrics.retransmitted_kbytes for r in summaries]
        ),
        timeouts_mean=_mean([float(r.metrics.timeouts) for r in summaries]),
        duration_mean=_mean([r.metrics.duration for r in summaries]),
        tput_th_bps=summaries[0].tput_th_bps,
        results=tuple(summaries),
        failures=failures,
        report=report,
    )


def _make_runner(
    workers: Optional[int],
    cache: Optional[ResultCache],
    validate: bool,
    timeout: Optional[float],
    retries: Optional[int],
    fail_fast: bool,
    journal: Optional[CampaignJournal],
) -> ParallelRunner:
    """One place that translates the public knobs into a runner."""
    retry = RetryPolicy(max_retries=retries) if retries is not None else None
    return ParallelRunner(
        workers=workers,
        cache=cache,
        validate=validate,
        timeout=timeout,
        retry=retry,
        fail_fast=fail_fast,
        journal=journal,
    )


def run_replicated(
    config: ScenarioConfig,
    replications: int = 5,
    base_seed: int = 1,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> ReplicatedResult:
    """Run ``config`` over ``replications`` seeds and aggregate.

    Seeds are ``base_seed + i``; each run gets fully independent
    channel/backoff randomness via the seed-derived substreams.
    ``workers > 1`` fans the seeds over a process pool (``0`` = one
    per CPU); ``cache`` skips seeds already simulated under the
    current code version.  Aggregates are identical either way.
    ``validate=True`` attaches the invariant engine to every simulated
    seed (cache hits skip simulation and are not re-validated).

    Fault handling: ``timeout`` bounds each seed's wall-clock time,
    ``retries`` re-runs timed-out/crashed seeds (None = policy
    default), ``journal`` checkpoints completed seeds for resume.
    With ``fail_fast=True`` (default) a quarantined seed raises its
    taxonomy exception; with ``fail_fast=False`` the aggregate is
    computed over the surviving seeds and the result carries the
    failures — unless *every* seed failed, which still raises.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    runner = _make_runner(
        workers, cache, validate, timeout, retries, fail_fast, journal
    )
    campaign = runner.run_campaign(_seeded_configs(config, replications, base_seed))
    survivors = campaign.surviving()
    if not survivors:
        # Nothing to aggregate: even graceful degradation has a floor.
        return campaign.require_complete()  # pragma: no cover - always raises
    return _aggregate(
        config,
        survivors,
        failures=campaign.report.quarantined,
        report=campaign.report,
    )


@dataclass(frozen=True)
class SweepCampaign:
    """A sweep's points plus its campaign-wide completeness report.

    ``points`` omits any swept value whose *every* seed was
    quarantined (there is nothing to average); ``report`` still
    accounts for those units, so nothing goes missing silently.
    """

    points: Dict[T, ReplicatedResult]
    report: CompletenessReport


def sweep_campaign(
    values: Iterable[T],
    make_config: Callable[[T], ScenarioConfig],
    replications: int = 5,
    base_seed: int = 1,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> SweepCampaign:
    """Fault-tolerant sweep: every point, plus a completeness report.

    The whole sweep — every ``(value, seed)`` pair — is flattened into
    one batch for the parallel engine, so ``workers=N`` parallelizes
    across points as well as seeds, retries/timeouts apply per unit,
    and a ``journal`` checkpoints the entire campaign for resume.
    With ``fail_fast=False`` quarantined seeds degrade their point to
    a partial average (or drop the point when no seed survived).
    """
    value_list = list(values)
    seen: set = set()
    for value in value_list:
        if value in seen:
            raise ValueError(
                f"duplicate sweep value {value!r}: each swept value must be "
                f"unique (duplicates would silently overwrite each other)"
            )
        seen.add(value)
    configs = [make_config(value) for value in value_list]
    units: List[ScenarioConfig] = []
    for config in configs:
        units.extend(_seeded_configs(config, replications, base_seed))
    runner = _make_runner(
        workers, cache, validate, timeout, retries, fail_fast, journal
    )
    campaign = runner.run_campaign(units)
    points: Dict[T, ReplicatedResult] = {}
    for i, (value, config) in enumerate(zip(value_list, configs)):
        lo, hi = i * replications, (i + 1) * replications
        chunk = [s for s in campaign.summaries[lo:hi] if s is not None]
        point_failures = tuple(
            f for f in campaign.report.quarantined if lo <= f.index < hi
        )
        if not chunk:
            continue  # every seed quarantined; the report still has them
        points[value] = _aggregate(config, chunk, failures=point_failures)
    return SweepCampaign(points=points, report=campaign.report)


def sweep(
    values: Iterable[T],
    make_config: Callable[[T], ScenarioConfig],
    replications: int = 5,
    base_seed: int = 1,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    fail_fast: bool = True,
    journal: Optional[CampaignJournal] = None,
) -> Dict[T, ReplicatedResult]:
    """Run a replicated experiment for every value of a swept parameter.

    Points appear in the returned dict in input order, and duplicate
    sweep values are an error (they would silently alias one dict
    entry).  This is :func:`sweep_campaign` without the report — use
    that variant when you need the completeness accounting.

    >>> from repro.experiments.config import wan_scenario
    >>> points = sweep(
    ...     [576],
    ...     lambda size: wan_scenario(packet_size=size, transfer_bytes=10_240),
    ...     replications=1,
    ... )
    >>> 576 in points
    True
    """
    return sweep_campaign(
        values,
        make_config,
        replications=replications,
        base_seed=base_seed,
        workers=workers,
        cache=cache,
        validate=validate,
        timeout=timeout,
        retries=retries,
        fail_fast=fail_fast,
        journal=journal,
    ).points
