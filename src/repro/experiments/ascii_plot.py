"""Terminal line charts for experiment output.

A tiny dependency-free plotter used by the examples and the benchmark
harness to show the reproduced figures next to their numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def plot_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render named (x, y) series as an ASCII chart.

    >>> out = plot_series({"a": [(0, 0), (1, 1)]}, width=20, height=5)
    >>> "a" in out
    True
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)\n"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = y_min if y_min is not None else min(ys)
    y_hi = y_max if y_max is not None else max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:>10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    lines.append(f"{'':12}{x_lo:<12.4g}{x_label:^{max(width - 24, 0)}}{x_hi:>12.4g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(f"  legend: {legend}")
    if y_label:
        lines.append(f"  y: {y_label}")
    return "\n".join(lines) + "\n"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width text table for benchmark output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines) + "\n"
