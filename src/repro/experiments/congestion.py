"""Wired congestion and the ECN/EBSN interaction (§6 future work).

The paper assumes an uncongested wired network and defers "the impact
of congestion in the wired network on the effectiveness of EBSN ...
[and] the interaction between ECN and EBSN" to follow-up work.  This
module builds that experiment:

    FH ──fast──▶ R ══ 56 kbps bottleneck (bounded queue, optional ECN
    XS ──fast──▶ R     marking) ══▶ BS ──wireless──▶ MH

``XS`` is a constant-bit-rate cross-traffic source that terminates at
the base station, loading the bottleneck to a configurable fraction of
its capacity.  Congestion now produces *real* drops (or ECN marks) on
the wired segment while the wireless hop keeps producing fades, so a
source may receive congestion signals and EBSNs in the same
connection: ECN must shrink the window, EBSN must only re-arm the
timer, and neither may mask the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ebsn import EbsnGenerator, install_ebsn_handler
from repro.engine import RandomStreams, Simulator
from repro.linklayer import LinkLayerMode, WirelessPort
from repro.metrics import ConnectionMetrics, compute_metrics
from repro.net.link import WiredLink
from repro.net.node import Node
from repro.net.packet import Datagram, TcpSegment
from repro.net.wireless import WirelessLink, WirelessLinkConfig
from repro.experiments.topology import ChannelConfig, ScenarioConfig, Scheme
from repro.tcp import TahoeSender, TcpConfig, TcpSink


class CbrSource:
    """Constant-bit-rate cross traffic (UDP-like: no feedback, no
    retransmission)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        dst: str,
        rate_bps: float,
        packet_size: int = 576,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self._sim = sim
        self._node = node
        self.dst = dst
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.interval = packet_size * 8 / rate_bps
        self.packets_sent = 0
        self._seq = 0
        self._running = False

    def start(self) -> None:
        """Begin emitting packets at the configured rate."""
        self._running = True
        self._sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop emitting (pending ticks become no-ops)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        segment = TcpSegment(
            seq=self._seq, payload_bytes=self.packet_size - 40, sent_at=self._sim.now
        )
        self._seq += 1
        self._node.send(
            Datagram(self._node.name, self.dst, segment, self.packet_size)
        )
        self.packets_sent += 1
        self._sim.schedule(self.interval, self._tick)


class CbrSink:
    """Counts cross-traffic arrivals at the base station."""

    def __init__(self) -> None:
        self.packets_received = 0
        self.bytes_received = 0

    def receive(self, datagram: Datagram) -> None:
        """Count one cross-traffic arrival."""
        self.packets_received += 1
        self.bytes_received += datagram.size_bytes


@dataclass
class CongestedScenarioConfig:
    """One run of the congestion/ECN/EBSN interaction experiment."""

    scheme: Scheme = Scheme.BASIC  # BASIC or EBSN
    ecn: bool = False
    #: Cross-traffic load as a fraction of the bottleneck capacity.
    cross_load: float = 0.5
    bottleneck_bps: float = 56_000.0
    bottleneck_queue_packets: int = 10
    ecn_threshold_packets: int = 4
    access_bps: float = 1_000_000.0
    wired_prop_delay: float = 0.01
    tcp: TcpConfig = field(
        default_factory=lambda: TcpConfig(transfer_bytes=60 * 1024)
    )
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    wireless: WirelessLinkConfig = field(default_factory=WirelessLinkConfig)
    seed: int = 1
    max_sim_time: float = 50_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cross_load < 1.5:
            raise ValueError(f"cross_load out of range: {self.cross_load}")
        if self.scheme not in (Scheme.BASIC, Scheme.EBSN):
            raise ValueError("congestion study supports BASIC and EBSN only")


@dataclass
class CongestedScenarioResult:
    metrics: ConnectionMetrics
    completed: bool
    bottleneck_drops: int
    ecn_marks: int
    ecn_responses: int
    ebsn_received: int
    timeouts: int
    fast_retransmits: int
    cross_packets_delivered: int


def run_congested_scenario(config: CongestedScenarioConfig) -> CongestedScenarioResult:
    """Build and run the FH/XS → R → BS → MH topology."""
    sim = Simulator()
    streams = RandomStreams(config.seed)
    channel = config.channel.build(streams)

    fh, xs, router, bs, mh = (Node(n) for n in ("FH", "XS", "R", "BS", "MH"))

    # Access links into the router (never the bottleneck).
    fh_r = WiredLink(sim, config.access_bps, config.wired_prop_delay, name="FH->R")
    xs_r = WiredLink(sim, config.access_bps, config.wired_prop_delay, name="XS->R")
    # The bottleneck, with a bounded queue and optional ECN marking.
    r_bs = WiredLink(
        sim,
        config.bottleneck_bps,
        config.wired_prop_delay,
        queue_capacity=config.bottleneck_queue_packets,
        ecn_threshold=config.ecn_threshold_packets if config.ecn else None,
        name="R->BS",
    )
    # Reverse path (ACKs, EBSNs) — uncongested.
    bs_r = WiredLink(sim, config.bottleneck_bps, config.wired_prop_delay, name="BS->R")
    r_fh = WiredLink(sim, config.access_bps, config.wired_prop_delay, name="R->FH")

    fh_r.connect(router.receive)
    xs_r.connect(router.receive)
    r_bs.connect(bs.receive)
    bs_r.connect(router.receive)
    r_fh.connect(fh.receive)

    fh.add_interface("wired", fh_r.send, "MH", "BS", "R")
    xs.add_interface("wired", xs_r.send, "BS")
    router.add_interface("down", r_bs.send, "MH", "BS")
    router.add_interface("up", r_fh.send, "FH")
    bs.add_interface("up", bs_r.send, "FH")

    # Wireless hop (same machinery as the main scenarios).
    downlink = WirelessLink(sim, config.wireless, channel, name="BS->MH")
    uplink = WirelessLink(sim, config.wireless, channel, name="MH->BS")
    base = ScenarioConfig(
        scheme=config.scheme, wireless=config.wireless, tcp=config.tcp
    )
    arq = base.derived_arq()
    mode = LinkLayerMode.PLAIN if config.scheme is Scheme.BASIC else LinkLayerMode.ARQ

    ebsn_generator: Optional[EbsnGenerator] = None
    feedback = None
    if config.scheme is Scheme.EBSN:
        ebsn_generator = EbsnGenerator(bs)
        feedback = ebsn_generator

    cross_sink = CbrSink()

    def bs_deliver(datagram: Datagram) -> None:
        bs.receive(datagram)

    bs_port = WirelessPort(
        sim,
        "BS.wl",
        out_link=downlink,
        deliver=bs_deliver,
        mode=mode,
        arq_config=arq,
        rng=streams.stream("bs-arq"),
        feedback=feedback,
    )
    mh_port = WirelessPort(
        sim,
        "MH.wl",
        out_link=uplink,
        deliver=mh.receive,
        mode=mode,
        arq_config=arq,
        rng=streams.stream("mh-arq"),
    )
    downlink.connect(mh_port.receive_frame)
    uplink.connect(bs_port.receive_frame)
    bs.add_interface("wireless", bs_port.send_datagram, "MH")
    mh.add_interface("wireless", mh_port.send_datagram, "FH", "BS")
    bs.attach_agent(cross_sink)

    sender = TahoeSender(
        sim, fh, "MH", config=config.tcp, on_complete=sim.stop
    )
    sender.ecn_enabled = config.ecn
    fh.attach_agent(sender)
    sink = TcpSink(sim, mh, "FH", header_bytes=config.tcp.header_bytes)
    mh.attach_agent(sink)
    if config.scheme is Scheme.EBSN:
        install_ebsn_handler(sender)

    cross = CbrSource(
        sim,
        xs,
        "BS",
        rate_bps=config.cross_load * config.bottleneck_bps,
        packet_size=config.tcp.packet_size,
    )
    cross.start()
    sender.start()
    sim.run(until=config.max_sim_time)

    return CongestedScenarioResult(
        metrics=compute_metrics(sender, sink),
        completed=sender.completed,
        bottleneck_drops=r_bs.queue.stats.dropped,
        ecn_marks=r_bs.ecn_marks,
        ecn_responses=sender.stats.ecn_responses,
        ebsn_received=sender.stats.ebsn_received,
        timeouts=sender.stats.timeouts,
        fast_retransmits=sender.stats.fast_retransmits,
        cross_packets_delivered=cross_sink.packets_received,
    )
