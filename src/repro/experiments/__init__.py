"""Experiment harness: topologies, per-figure configs, sweep runner.

* :mod:`repro.experiments.topology` — builds the paper's three-node
  FH—BS—MH simulation (Fig. 2) for any scheme (basic TCP, local
  recovery, EBSN, source quench, snoop) and runs one connection.
* :mod:`repro.experiments.config` — the exact parameter sets of the
  paper's WAN (§5.1) and LAN (§5.2) studies.
* :mod:`repro.experiments.runner` — seed replication, mean/stddev,
  parameter sweeps.
* :mod:`repro.experiments.parallel` — process-pool fan-out of seeded
  work units (the parallel experiment engine).
* :mod:`repro.experiments.cache` — content-addressed on-disk result
  cache keyed by config + seed + code version.
* :mod:`repro.experiments.faults` — fault taxonomy, retry policy,
  and completeness reporting for campaign execution.
* :mod:`repro.experiments.journal` — append-only checkpoint journal
  behind ``--resume``.
* :mod:`repro.experiments.figures` — one entry point per paper
  figure, returning the data series the figure plots.
* :mod:`repro.experiments.ascii_plot` — terminal rendering of series.
"""

from repro.experiments.topology import (
    ChannelConfig,
    Scenario,
    ScenarioConfig,
    ScenarioResult,
    Scheme,
)
from repro.experiments.config import (
    lan_scenario,
    wan_scenario,
    LAN_BAD_PERIODS,
    LAN_GOOD_PERIOD,
    WAN_BAD_PERIODS,
    WAN_GOOD_PERIOD,
    WAN_PACKET_SIZES,
)
from repro.experiments.runner import (
    ReplicatedResult,
    SweepCampaign,
    run_replicated,
    sweep,
    sweep_campaign,
)
from repro.experiments.parallel import CampaignResult, ParallelRunner, RunSummary
from repro.experiments.cache import ResultCache, config_digest, default_cache_dir
from repro.experiments.faults import (
    CampaignError,
    CampaignInterrupted,
    CompletenessReport,
    RetryPolicy,
    UnitFailure,
    UnitQuarantined,
    UnitTimeout,
    WorkerCrashed,
    merge_reports,
)
from repro.experiments.journal import CampaignJournal

__all__ = [
    "ChannelConfig",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "Scheme",
    "lan_scenario",
    "wan_scenario",
    "LAN_BAD_PERIODS",
    "LAN_GOOD_PERIOD",
    "WAN_BAD_PERIODS",
    "WAN_GOOD_PERIOD",
    "WAN_PACKET_SIZES",
    "ReplicatedResult",
    "SweepCampaign",
    "run_replicated",
    "sweep",
    "sweep_campaign",
    "CampaignResult",
    "ParallelRunner",
    "RunSummary",
    "CampaignError",
    "CampaignInterrupted",
    "CompletenessReport",
    "RetryPolicy",
    "UnitFailure",
    "UnitQuarantined",
    "UnitTimeout",
    "WorkerCrashed",
    "merge_reports",
    "CampaignJournal",
    "ResultCache",
    "config_digest",
    "default_cache_dir",
]
