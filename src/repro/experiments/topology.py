"""The paper's simulation setup (Fig. 2), for every scheme.

A :class:`Scenario` wires the three-node chain

    FH (TCP source) --- wired --- BS --- wireless --- MH (TCP sink)

with the requested recovery scheme and runs one bulk transfer to
completion, returning a :class:`ScenarioResult` with the connection
metrics, the source packet trace, and all component statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.channel import (
    BernoulliLossChannel,
    deterministic_channel,
    markov_channel,
    matched_loss_probability,
)
from repro.core.ebsn import EbsnGenerator, install_ebsn_handler
from repro.core.quench import QuenchGenerator, install_quench_handler
from repro.core.snoop import SnoopAgent
from repro.core.split import SplitRelay
from repro.engine import RandomStreams, Simulator
from repro.linklayer import ArqConfig, LinkLayerMode, WirelessPort
from repro.metrics import ConnectionMetrics, PacketTrace, compute_metrics
from repro.metrics.theoretical import theoretical_throughput_bps
from repro.net.link import WiredLink
from repro.net.node import Node
from repro.net.packet import LINK_ACK_BYTES, Datagram, TcpAck, TcpSegment
from repro.net.wireless import WirelessLink, WirelessLinkConfig
from repro.tcp import NewRenoSender, RenoSender, TahoeSender, TcpConfig, TcpSink


class Scheme(enum.Enum):
    """The recovery schemes the paper compares."""

    BASIC = "basic"  # TCP Tahoe end to end, nothing else (Fig 3)
    LOCAL_RECOVERY = "local_recovery"  # + link-layer ARQ (Fig 4)
    EBSN = "ebsn"  # + ARQ + explicit bad state notification (Fig 5)
    QUENCH = "quench"  # + ARQ + ICMP source quench (§4.2.2)
    SNOOP = "snoop"  # snoop-style agent at the BS (§2 baseline)
    SPLIT = "split"  # I-TCP style split connection (§2 baseline)


@dataclass
class ChannelConfig:
    """Burst-error model parameters (§3.1)."""

    good_period_mean: float = 10.0
    bad_period_mean: float = 1.0
    ber_good: float = 1e-6
    ber_bad: float = 1e-2
    #: Frozen sojourns + deterministic corruption (the Figs 3–5 example).
    deterministic: bool = False
    #: Replace the burst process with i.i.d. per-frame loss of the
    #: same average rate (the snoop-friendly regime; §2 comparison).
    uniform: bool = False

    def build(self, streams: RandomStreams):
        """Construct the configured channel from seeded substreams."""
        if self.uniform:
            if self.deterministic:
                raise ValueError("uniform and deterministic are exclusive")
            return BernoulliLossChannel(
                matched_loss_probability(
                    self.good_period_mean,
                    self.bad_period_mean,
                    ber_good=self.ber_good,
                    ber_bad=self.ber_bad,
                ),
                rng=streams.stream("channel-errors"),
            )
        if self.deterministic:
            return deterministic_channel(
                self.good_period_mean,
                self.bad_period_mean,
                ber_good=self.ber_good,
                ber_bad=self.ber_bad,
            )
        return markov_channel(
            self.good_period_mean,
            self.bad_period_mean,
            rng=streams.stream("channel-errors"),
            sojourn_rng=streams.stream("channel-sojourns"),
            ber_good=self.ber_good,
            ber_bad=self.ber_bad,
        )


@dataclass
class ScenarioConfig:
    """Everything needed to build and run one connection."""

    scheme: Scheme = Scheme.BASIC
    tcp: TcpConfig = field(default_factory=TcpConfig)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    wireless: WirelessLinkConfig = field(default_factory=WirelessLinkConfig)
    #: Optional distinct physical parameters for the MH->BS direction
    #: (asymmetric radios, e.g. a low-power return channel); None =
    #: symmetric, as the paper assumes.
    wireless_up: Optional[WirelessLinkConfig] = None
    wired_bandwidth_bps: float = 56_000.0
    wired_prop_delay: float = 0.01
    arq: Optional[ArqConfig] = None  # None = derive from link parameters
    tcp_variant: str = "tahoe"  # or "reno" / "newreno"
    seed: int = 1
    record_trace: bool = True
    record_cwnd: bool = False
    #: Simulation abort horizon (a stuck run is an error, not a hang).
    max_sim_time: float = 50_000.0
    quench_queue_threshold: int = 8
    quench_min_interval: float = 0.5
    snoop_local_timeout: Optional[float] = None
    #: Packet size for the BS->MH leg of a split connection; None =
    #: reuse the wired packet size.
    split_wireless_packet_size: Optional[int] = None
    #: RFC 1122 delayed ACKs at the sink (the paper's ns sink ACKed
    #: every segment; this is the ack-clocking ablation knob).
    delayed_acks: bool = False
    #: Override the sender class (e.g. MessageSender for interactive
    #: workloads); receives the same constructor arguments the
    #: tcp_variant classes do.  None = use ``tcp_variant``.
    sender_factory: Optional[type] = None
    #: EBSN heartbeat interval (s): keep notifying between ARQ attempts
    #: while the link is failing.  None = per-attempt only (the paper).
    ebsn_heartbeat: Optional[float] = None

    def derived_arq(self) -> ArqConfig:
        """ARQ parameters scaled to the wireless link's timescales.

        The link-ACK timeout must cover a round trip plus the chance
        that the reverse direction is busy serializing an MTU-sized
        frame; the random backoff is of the order of a frame time, per
        the aggressive-retransmission protocol of [9]/[12].
        """
        if self.arq is not None:
            return self.arq
        cfg = self.wireless
        frame_time = (
            int(round(cfg.mtu_bytes * cfg.overhead_factor)) * 8 / cfg.raw_bandwidth_bps
        )
        ack_time = (
            int(round(LINK_ACK_BYTES * cfg.overhead_factor)) * 8 / cfg.raw_bandwidth_bps
        )
        ack_timeout = 2 * cfg.prop_delay + ack_time + frame_time + 0.01
        # Backoff sized so that the RTmax=13 attempt budget spans the
        # long tail of fades (13 cycles ≈ 8 s for the WAN numbers) —
        # the paper's local recovery rides out its bad periods, and an
        # ARQ that gives up inside a fade forces end-to-end recovery
        # that EBSN cannot paper over (see the RTmax ablation bench).
        return ArqConfig(
            ack_timeout=ack_timeout,
            rtmax=13,
            backoff_min=2.5 * frame_time,
            backoff_max=7.5 * frame_time,
        )


@dataclass
class ScenarioResult:
    """Output of one scenario run."""

    metrics: ConnectionMetrics
    completed: bool
    trace: Optional[PacketTrace]
    config: ScenarioConfig
    #: Theoretical maximum throughput under this error condition (bps).
    tput_th_bps: float
    sender: TahoeSender
    sink: TcpSink
    downlink: WirelessLink
    uplink: WirelessLink
    bs_port: WirelessPort
    mh_port: WirelessPort
    ebsn: Optional[EbsnGenerator] = None
    quench: Optional[QuenchGenerator] = None
    snoop: Optional[SnoopAgent] = None
    split: Optional[SplitRelay] = None


class Scenario:
    """Builds the Fig. 2 topology for a config and runs it."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.channel = config.channel.build(self.streams)

        self.fh = Node("FH")
        self.bs = Node("BS")
        self.mh = Node("MH")

        # Wired hop (duplex = two unidirectional links).
        self.wired_down = WiredLink(
            self.sim, config.wired_bandwidth_bps, config.wired_prop_delay, name="FH->BS"
        )
        self.wired_up = WiredLink(
            self.sim, config.wired_bandwidth_bps, config.wired_prop_delay, name="BS->FH"
        )

        # Wireless hop; both directions share the fading channel.
        uplink_config = config.wireless_up or config.wireless
        self.downlink = WirelessLink(self.sim, config.wireless, self.channel, name="BS->MH")
        self.uplink = WirelessLink(self.sim, uplink_config, self.channel, name="MH->BS")

        arq = config.derived_arq()
        mode = (
            LinkLayerMode.PLAIN
            if config.scheme in (Scheme.BASIC, Scheme.SNOOP, Scheme.SPLIT)
            else LinkLayerMode.ARQ
        )

        # Scheme-specific feedback at the base station.
        self.ebsn_generator: Optional[EbsnGenerator] = None
        self.quench_generator: Optional[QuenchGenerator] = None
        self.snoop_agent: Optional[SnoopAgent] = None
        self.split_relay: Optional[SplitRelay] = None
        feedback = None
        if config.scheme is Scheme.EBSN:
            self.ebsn_generator = EbsnGenerator(
                self.bs,
                sim=self.sim,
                heartbeat_interval=config.ebsn_heartbeat,
            )
            feedback = self.ebsn_generator
        elif config.scheme is Scheme.QUENCH:
            self.quench_generator = QuenchGenerator(
                self.sim,
                self.bs,
                queue_threshold=config.quench_queue_threshold,
                min_interval=config.quench_min_interval,
            )
            feedback = self.quench_generator

        self.bs_port = WirelessPort(
            self.sim,
            "BS.wl",
            out_link=self.downlink,
            deliver=self._bs_deliver,
            mode=mode,
            arq_config=arq,
            rng=self.streams.stream("bs-arq"),
            feedback=feedback,
        )
        self.mh_port = WirelessPort(
            self.sim,
            "MH.wl",
            out_link=self.uplink,
            deliver=self.mh.receive,
            mode=mode,
            arq_config=arq,
            rng=self.streams.stream("mh-arq"),
        )
        self.downlink.connect(self.mh_port.receive_frame)
        self.uplink.connect(self.bs_port.receive_frame)

        # Routing.
        self.fh.add_interface("wired", self.wired_down.send, "MH", "BS")
        self.bs.add_interface("wired", self.wired_up.send, "FH")
        self.bs.add_interface("wireless", self._bs_send_wireless, "MH")
        self.mh.add_interface("wireless", self.mh_port.send_datagram, "FH", "BS")
        self.wired_down.connect(self._bs_wired_arrival)
        self.wired_up.connect(self.fh.receive)

        # Transport.  For a split connection the fixed host's sender
        # finishes early (the relay ACKs on arrival at the BS), so the
        # run ends when the *sink* has all the data.
        is_split = config.scheme is Scheme.SPLIT
        self.trace = PacketTrace() if config.record_trace else None
        if config.sender_factory is not None:
            sender_cls = config.sender_factory
        else:
            sender_cls = {
                "tahoe": TahoeSender,
                "reno": RenoSender,
                "newreno": NewRenoSender,
            }[config.tcp_variant]
        self.sender = sender_cls(
            self.sim,
            self.fh,
            "MH",
            config=config.tcp,
            trace=self.trace,
            on_complete=None if is_split else self.sim.stop,
            record_cwnd=config.record_cwnd,
        )
        self.fh.attach_agent(self.sender)
        self.sink = TcpSink(
            self.sim,
            self.mh,
            "BS" if is_split else "FH",
            header_bytes=config.tcp.header_bytes,
            expected_bytes=config.tcp.transfer_bytes if is_split else None,
            on_complete=self.sim.stop if is_split else None,
            delayed_acks=config.delayed_acks,
        )
        self.mh.attach_agent(self.sink)

        if config.scheme is Scheme.EBSN:
            install_ebsn_handler(self.sender)
        elif config.scheme is Scheme.QUENCH:
            install_quench_handler(self.sender)
        elif config.scheme is Scheme.SNOOP:
            frame_time = self.downlink.tx_time(config.wireless.mtu_bytes)
            timeout = (
                config.snoop_local_timeout
                if config.snoop_local_timeout is not None
                else max(0.1, 8 * frame_time)
            )
            self.snoop_agent = SnoopAgent(
                self.sim,
                send_wireless=self.bs_port.send_datagram,
                send_wired=self.bs.routing.forward,
                local_timeout=timeout,
            )
        elif config.scheme is Scheme.SPLIT:
            self.split_relay = SplitRelay(
                self.sim,
                self.bs,
                wired_peer="FH",
                mobile="MH",
                wireless_packet_size=(
                    config.split_wireless_packet_size
                    if config.split_wireless_packet_size is not None
                    else config.tcp.packet_size
                ),
                window_bytes=config.tcp.window_bytes,
                transfer_bytes=config.tcp.transfer_bytes,
                clock_granularity=config.tcp.clock_granularity,
            )
            self.bs.attach_agent(self.split_relay)

    # -- BS plumbing -----------------------------------------------------

    def _bs_send_wireless(self, datagram: Datagram) -> None:
        if self.quench_generator is not None and isinstance(
            datagram.payload, TcpSegment
        ):
            self.quench_generator.note_data_source(datagram.src)
        self.bs_port.send_datagram(datagram)

    def _bs_wired_arrival(self, datagram: Datagram) -> None:
        """Datagrams arriving at the BS from the wired network."""
        if (
            self.snoop_agent is not None
            and isinstance(datagram.payload, TcpSegment)
            and datagram.dst == "MH"
        ):
            self.snoop_agent.on_wired_data(datagram)
            return
        if (
            self.split_relay is not None
            and isinstance(datagram.payload, TcpSegment)
            and datagram.dst == "MH"
        ):
            self.split_relay.on_wired_data(datagram)
            return
        self.bs.receive(datagram)

    def _bs_deliver(self, datagram: Datagram) -> None:
        """Datagrams reassembled from the wireless uplink at the BS."""
        if self.snoop_agent is not None and isinstance(datagram.payload, TcpAck):
            self.snoop_agent.on_wireless_ack(datagram)
            return
        self.bs.receive(datagram)

    # -- running ----------------------------------------------------------

    def run(self, wall_timeout: Optional[float] = None) -> ScenarioResult:
        """Run the transfer to completion (or the abort horizon).

        ``wall_timeout`` arms the engine's real-time watchdog: a hung
        or runaway run aborts with
        :class:`~repro.engine.simulator.WallClockExceeded` instead of
        spinning until the simulated-time horizon.
        """
        self.sender.start()
        self.sim.run(until=self.config.max_sim_time, wall_timeout=wall_timeout)
        if self.split_relay is not None:
            completed = self.sink.completed
        else:
            completed = self.sender.completed
        metrics = compute_metrics(
            self.sender,
            self.sink,
            end_at=self.sink.stats.last_data_at if self.split_relay else None,
        )
        tput_th = theoretical_throughput_bps(
            self.config.wireless.effective_bandwidth_bps,
            self.config.channel.good_period_mean,
            self.config.channel.bad_period_mean,
        )
        return ScenarioResult(
            metrics=metrics,
            completed=completed,
            trace=self.trace,
            config=self.config,
            tput_th_bps=tput_th,
            sender=self.sender,
            sink=self.sink,
            downlink=self.downlink,
            uplink=self.uplink,
            bs_port=self.bs_port,
            mh_port=self.mh_port,
            ebsn=self.ebsn_generator,
            quench=self.quench_generator,
            snoop=self.snoop_agent,
            split=self.split_relay,
        )


def run_scenario(
    config: ScenarioConfig,
    validate: "Optional[bool]" = None,
    bundle_dir=None,
    wall_timeout: Optional[float] = None,
) -> ScenarioResult:
    """Build and run one scenario (convenience wrapper).

    ``validate=True`` runs under the invariant engine
    (:mod:`repro.validate`): conservation, TCP state legality, ARQ
    attempt bounds, EBSN's no-window-action contract, and timer sanity
    are checked online, and a violation aborts the run with a replay
    bundle written to ``bundle_dir`` (default: the bundle directory;
    ``False`` suppresses the bundle).  ``validate=None`` consults the
    process default — off, unless the test suite or ``REPRO_VALIDATE``
    turned it on.  Checkers are pure observers, so validated runs are
    bit-identical to unvalidated ones.

    ``wall_timeout`` bounds the run in *wall-clock* seconds via the
    engine watchdog (see :meth:`Scenario.run`); the campaign layer
    uses this to kill hung units instead of waiting forever.
    """
    # Imported lazily: repro.validate pulls in the bundle/cache layers,
    # which this module's import-time dependencies must not require.
    from repro.validate.engine import run_validated, validation_default

    if validate is None:
        validate = validation_default()
    scenario = Scenario(config)
    if not validate:
        return scenario.run(wall_timeout=wall_timeout)
    return run_validated(scenario, bundle_dir=bundle_dir, wall_timeout=wall_timeout)


def with_scheme(config: ScenarioConfig, scheme: Scheme) -> ScenarioConfig:
    """A copy of ``config`` with a different recovery scheme."""
    return replace(config, scheme=scheme)
