"""Independent per-frame (uniform) loss — the non-bursty comparison.

The snoop paper evaluated against (mostly) independent losses; this
paper's critique is that real fades are bursty.  To reproduce *both*
sides, :class:`BernoulliLossChannel` corrupts each transmission
independently with a fixed probability, matched to a burst channel's
average loss rate via :func:`matched_loss_probability` — same mean
loss, none of the correlation.
"""

from __future__ import annotations

import math
import random


class BernoulliLossChannel:
    """Channel that corrupts each frame i.i.d. with probability ``p``."""

    def __init__(self, loss_probability: float, rng: random.Random) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1), got {loss_probability}"
            )
        self.loss_probability = loss_probability
        self._rng = rng
        self.frames_tested = 0
        self.frames_corrupted = 0

    def corrupts(self, start: float, duration: float, nbits: int) -> bool:
        """Decide i.i.d. whether this transmission is lost."""
        self.frames_tested += 1
        corrupted = self._rng.random() < self.loss_probability
        if corrupted:
            self.frames_corrupted += 1
        return corrupted

    def good_fraction(self) -> float:
        """Capacity fraction surviving: 1 - p (per-frame, not per-time)."""
        return 1.0 - self.loss_probability


def matched_loss_probability(
    good_period_mean: float,
    bad_period_mean: float,
    ber_good: float = 1e-6,
    ber_bad: float = 1e-2,
    frame_bits: int = 1536,
) -> float:
    """Per-frame loss probability matching a burst channel's average.

    Averages the per-state frame survival over the steady-state time
    split (ignoring boundary straddling — adequate when frames are
    much shorter than sojourns).

    >>> p = matched_loss_probability(10.0, 1.0)
    >>> 0.05 < p < 0.15   # ~9%: mostly the bad-state residence time
    True
    """
    if good_period_mean <= 0 or bad_period_mean <= 0:
        raise ValueError("period means must be positive")
    good_fraction = good_period_mean / (good_period_mean + bad_period_mean)
    survive_good = math.exp(frame_bits * math.log1p(-ber_good))
    survive_bad = math.exp(frame_bits * math.log1p(-ber_bad))
    survive = good_fraction * survive_good + (1.0 - good_fraction) * survive_bad
    return 1.0 - survive
