"""Two-state (good/bad) burst-error channel.

The channel alternates between a good and a bad state.  Sojourn
lengths come from a :class:`SojournSource` — exponential draws for the
Markov model of the paper's §3.1, constants for the deterministic
traces of §4.2.1.  Bit errors within each state occur at that state's
BER.

A frame transmission occupies an interval ``[start, start + duration]``
of channel time; its bits are exposed uniformly over that interval, so
a transmission that straddles a good→bad transition has part of its
bits at the good BER and part at the bad BER.  Corruption is then:

* **stochastic** — survive with probability
  ``(1-ber_good)^bits_good · (1-ber_bad)^bits_bad``;
* **deterministic** — corrupt iff the expected number of bit errors
  ``bits_good·ber_good + bits_bad·ber_bad`` reaches 1.  With the
  paper's parameters this reduces to "frames overlapping a bad period
  are lost, frames entirely in a good period survive", which is
  exactly the behaviour in Figs 3–5.
"""

from __future__ import annotations

import enum
import math
import random
from bisect import bisect_right
from typing import Iterator, List, Optional, Protocol, Tuple

# Local alias: a plain global lookup is cheaper than module-attribute
# access on the per-frame corrupts() path.  Same C function, same bits.
_exp = math.exp


class ChannelState(enum.Enum):
    """The two Markov states of the burst-error model."""

    GOOD = "good"
    BAD = "bad"


class SojournSource(Protocol):
    """Produces the next sojourn duration for a given state."""

    def next_sojourn(self, state: ChannelState) -> float:
        """Duration (seconds) the channel stays in ``state``."""
        ...  # pragma: no cover - protocol


class ExponentialSojourns:
    """Exponentially distributed sojourns (the Markov model).

    ``good_mean`` and ``bad_mean`` are the mean state-holding times in
    seconds, i.e. the reciprocals of the paper's transition rates
    (good_mean = 1/lambda_gb, bad_mean = 1/lambda_bg).
    """

    def __init__(self, good_mean: float, bad_mean: float, rng: random.Random) -> None:
        if good_mean <= 0 or bad_mean <= 0:
            raise ValueError("sojourn means must be positive")
        self.good_mean = good_mean
        self.bad_mean = bad_mean
        self._rng = rng

    def next_sojourn(self, state: ChannelState) -> float:
        """Draw an exponential holding time for ``state``."""
        mean = self.good_mean if state is ChannelState.GOOD else self.bad_mean
        return self._rng.expovariate(1.0 / mean)


class DeterministicSojourns:
    """Constant sojourns (the frozen model of the paper's example)."""

    def __init__(self, good_len: float, bad_len: float) -> None:
        if good_len <= 0 or bad_len <= 0:
            raise ValueError("sojourn lengths must be positive")
        self.good_len = good_len
        self.bad_len = bad_len

    def next_sojourn(self, state: ChannelState) -> float:
        """The fixed holding time for ``state``."""
        return self.good_len if state is ChannelState.GOOD else self.bad_len


class TwoStateChannel:
    """Good/bad channel with lazily materialized state history.

    The state timeline is generated on demand and kept as a sorted list
    of transition times, so queries may look back at intervals that
    began before the most recent query (a long frame's airtime starts
    in the past relative to its completion event).

    The timeline does not grow without bound: query starts only move
    forward in simulation time, so sojourns far behind the newest query
    can never be read again.  A sliding watermark (newest query start
    minus ``prune_retention`` seconds of slack for frames still in
    flight on the other link direction) prunes the dead prefix whenever
    the timeline exceeds ``prune_threshold`` entries, keeping both
    memory and per-query ``bisect`` cost O(retention/mean-sojourn)
    instead of O(transfer length).  Queries behind the pruned region
    raise rather than silently misread; set ``prune_threshold=0`` to
    keep the full history (e.g. for offline timeline inspection).
    """

    def __init__(
        self,
        sojourns: SojournSource,
        ber_good: float,
        ber_bad: float,
        rng: Optional[random.Random] = None,
        deterministic_errors: bool = False,
        initial_state: ChannelState = ChannelState.GOOD,
        prune_threshold: int = 512,
        prune_retention: float = 60.0,
    ) -> None:
        if not 0.0 <= ber_good <= 1.0 or not 0.0 <= ber_bad <= 1.0:
            raise ValueError("bit error rates must be in [0, 1]")
        if rng is None and not deterministic_errors:
            raise ValueError("stochastic error mode requires an rng")
        if prune_retention < 0:
            raise ValueError("prune_retention must be >= 0")
        self._sojourns = sojourns
        self.ber_good = ber_good
        self.ber_bad = ber_bad
        self._rng = rng
        self.deterministic_errors = deterministic_errors
        # _boundaries[i] is the start time of the i-th sojourn;
        # _states[i] its state.  _horizon is the end of the last
        # materialized sojourn.
        self._boundaries: List[float] = [0.0]
        self._states: List[ChannelState] = [initial_state]
        self._horizon: float = 0.0 + sojourns.next_sojourn(initial_state)
        self._prune_threshold = prune_threshold
        self._prune_retention = prune_retention
        #: Everything before this time has been discarded.
        self._pruned_until: float = 0.0
        #: Newest query start seen (the watermark pruning slides behind).
        self._query_watermark: float = 0.0
        self.sojourns_pruned = 0
        self.frames_tested = 0
        self.frames_corrupted = 0
        # Constant per-bit log-survival terms; math.log1p on the same
        # inputs is deterministic, so hoisting it out of
        # survival_probability changes no result bit.
        self._log1p_good = math.log1p(-ber_good)
        self._log1p_bad = math.log1p(-ber_bad)
        # O(1) fast-path cache: bounds and state of one materialized
        # sojourn (typically the one the previous frame ended in).  A
        # query interval that falls inside it needs no bisect, no
        # timeline extension and no watermark bookkeeping.  ``_fast_hi
        # < _fast_lo`` encodes "empty".
        self._fast_lo: float = 0.0
        self._fast_hi: float = -1.0
        self._fast_good: bool = True
        self.fast_path_hits = 0
        self.fast_path_misses = 0
        # Prebound RNG draw: _rng is only ever assigned here, so the
        # bound method cannot go stale, and corrupts() skips two
        # attribute lookups per frame.
        self._random = rng.random if rng is not None else None

    def _extend_to(self, time: float) -> None:
        """Materialize sojourns until the timeline covers ``time``."""
        while self._horizon <= time:
            last_state = self._states[-1]
            next_state = (
                ChannelState.BAD if last_state is ChannelState.GOOD else ChannelState.GOOD
            )
            self._boundaries.append(self._horizon)
            self._states.append(next_state)
            self._horizon += self._sojourns.next_sojourn(next_state)

    def _note_query(self, start: float) -> None:
        """Advance the watermark and prune once the timeline is long."""
        if start < self._pruned_until:
            raise ValueError(
                f"query at {start} reaches behind the pruned timeline "
                f"(history before {self._pruned_until} was discarded); "
                f"raise prune_retention or disable pruning"
            )
        if start > self._query_watermark:
            self._query_watermark = start
        if (
            self._prune_threshold > 0
            and len(self._boundaries) > self._prune_threshold
        ):
            self.prune_before(self._query_watermark - self._prune_retention)

    def prune_before(self, time: float) -> int:
        """Discard sojourns that ended at or before ``time``.

        The sojourn containing ``time`` is always retained, so any
        query with ``start >= time`` still resolves exactly as before
        pruning.  Returns the number of sojourns dropped.
        """
        if time <= self._boundaries[0]:
            return 0
        index = bisect_right(self._boundaries, time) - 1
        if index <= 0:
            return 0
        del self._boundaries[:index]
        del self._states[:index]
        self._pruned_until = time
        self.sojourns_pruned += index
        if self._fast_lo < self._boundaries[0]:
            # The cached sojourn fell off the retained prefix; drop it
            # so fast-path hits never answer behind the pruned history.
            self._fast_hi = self._fast_lo - 1.0
        return index

    def timeline_length(self) -> int:
        """Number of sojourns currently materialized (pruning metric)."""
        return len(self._boundaries)

    def state_at(self, time: float) -> ChannelState:
        """Channel state at absolute ``time`` (>= 0)."""
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        self._note_query(time)
        self._extend_to(time)
        boundaries = self._boundaries
        index = bisect_right(boundaries, time) - 1
        state = self._states[index]
        # Remember this sojourn for the exposure() fast path.
        self._fast_lo = boundaries[index]
        self._fast_hi = (
            boundaries[index + 1] if index + 1 < len(boundaries) else self._horizon
        )
        self._fast_good = state is ChannelState.GOOD
        return state

    def intervals(self, start: float, end: float) -> Iterator[Tuple[float, float, ChannelState]]:
        """Yield ``(seg_start, seg_end, state)`` covering ``[start, end]``."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        self._note_query(start)
        self._extend_to(end)
        index = bisect_right(self._boundaries, start) - 1
        if start == end:
            # Zero-width query: answer directly from the timeline just
            # materialized instead of recursing through state_at(),
            # which would re-run _note_query and could prune a second
            # time inside a single logical query.
            yield start, end, self._states[index]
            return
        cursor = start
        while cursor < end:
            seg_end = (
                self._boundaries[index + 1]
                if index + 1 < len(self._boundaries)
                else self._horizon
            )
            seg_end = min(seg_end, end)
            yield cursor, seg_end, self._states[index]
            cursor = seg_end
            index += 1

    def exposure(self, start: float, duration: float, nbits: int) -> Tuple[float, float]:
        """Split ``nbits`` into (bits_in_good, bits_in_bad) over the interval.

        Bits are spread uniformly over the transmission time.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        end = start + duration
        # O(1) fast path: the whole interval lies inside the cached
        # sojourn.  The guard is exact — ``start < hi`` because the
        # sojourn is half-open at its end, and ``end == hi`` only
        # counts when ``hi`` is an interior boundary: a frame ending
        # exactly at the materialized horizon must fall through so the
        # slow path's _extend_to(end) draws the next sojourn, keeping
        # RNG consumption identical to the unoptimised walk.
        hi = self._fast_hi
        if (
            self._fast_lo <= start < hi
            and end <= hi
            and (end != hi or hi != self._horizon)
        ):
            self.fast_path_hits += 1
            if end <= start or nbits == 0:
                share = float(nbits)
            else:
                # Same float expression the segment walk evaluates for
                # a single full-width segment: nbits * span / span, not
                # float(nbits) — the round trip is not always exact.
                span = end - start
                share = nbits * span / span
            return (share, 0.0) if self._fast_good else (0.0, share)
        self.fast_path_misses += 1
        if end <= start or nbits == 0:
            # Zero (or floating-point-negligible) airtime: all bits see
            # the state at the start instant.
            state = self.state_at(start)
            return (float(nbits), 0.0) if state is ChannelState.GOOD else (0.0, float(nbits))
        self._note_query(start)
        self._extend_to(end)
        boundaries = self._boundaries
        states = self._states
        n = len(boundaries)
        index = bisect_right(boundaries, start) - 1
        bits_good = 0.0
        bits_bad = 0.0
        # Normalize by the float width of [start, end], not the nominal
        # duration: at large offsets ``end - start`` rounds to a
        # different value than ``duration`` (an ulp of slack), and the
        # segments below tile exactly [start, end].  Dividing by the
        # tiled width is what conserves nbits.
        span = end - start
        cursor = start
        while cursor < end:
            seg_end = boundaries[index + 1] if index + 1 < n else self._horizon
            if seg_end > end:
                seg_end = end
            share = nbits * (seg_end - cursor) / span
            if states[index] is ChannelState.GOOD:
                bits_good += share
            else:
                bits_bad += share
            cursor = seg_end
            index += 1
        # Cache the sojourn the interval ended in: back-to-back frames
        # usually land in the same one.
        last = index - 1
        self._fast_lo = boundaries[last]
        self._fast_hi = boundaries[last + 1] if last + 1 < n else self._horizon
        self._fast_good = states[last] is ChannelState.GOOD
        return bits_good, bits_bad

    def survival_probability(self, start: float, duration: float, nbits: int) -> float:
        """Probability all ``nbits`` cross uncorrupted."""
        bits_good, bits_bad = self.exposure(start, duration, nbits)
        # _log1p_good/_log1p_bad are the log1p(-ber) values hoisted to
        # __init__; same inputs, same bits.
        return math.exp(bits_good * self._log1p_good + bits_bad * self._log1p_bad)

    def corrupts(self, start: float, duration: float, nbits: int) -> bool:
        """Decide whether a frame transmitted over the interval is lost."""
        self.frames_tested += 1
        if duration < 0 or nbits < 0:
            self.exposure(start, duration, nbits)  # raises the canonical error
        # Inlined exposure() fast path (one corrupts() per frame makes
        # this the hottest channel entry point); identical guard and
        # identical float expressions, falling back to exposure() on a
        # miss.  The miss counter is incremented by exposure() itself.
        end = start + duration
        hi = self._fast_hi
        if (
            self._fast_lo <= start < hi
            and end <= hi
            and (end != hi or hi != self._horizon)
        ):
            self.fast_path_hits += 1
            if end <= start or nbits == 0:
                share = float(nbits)
            else:
                span = end - start
                share = nbits * span / span
            if self._fast_good:
                bits_good, bits_bad = share, 0.0
            else:
                bits_good, bits_bad = 0.0, share
        else:
            bits_good, bits_bad = self.exposure(start, duration, nbits)
        if self.deterministic_errors:
            expected_errors = bits_good * self.ber_good + bits_bad * self.ber_bad
            corrupted = expected_errors >= 1.0
        else:
            assert self._random is not None
            corrupted = self._random() >= _exp(
                bits_good * self._log1p_good + bits_bad * self._log1p_bad
            )
        if corrupted:
            self.frames_corrupted += 1
        return corrupted

    def good_fraction(self) -> float:
        """Steady-state fraction of time in the good state.

        Equals ``lambda_bg / (lambda_bg + lambda_gb)`` of the paper's
        theoretical-maximum formula.
        """
        source = self._sojourns
        if isinstance(source, ExponentialSojourns):
            return source.good_mean / (source.good_mean + source.bad_mean)
        if isinstance(source, DeterministicSojourns):
            return source.good_len / (source.good_len + source.bad_len)
        raise TypeError(
            f"good_fraction undefined for sojourn source {type(source).__name__}"
        )


def markov_channel(
    good_mean: float,
    bad_mean: float,
    rng: random.Random,
    ber_good: float = 1e-6,
    ber_bad: float = 1e-2,
    sojourn_rng: Optional[random.Random] = None,
    steady_state_init: bool = True,
) -> TwoStateChannel:
    """The paper's stochastic burst-error channel (§3.1 defaults).

    Pass a separate ``sojourn_rng`` to decouple the fade timeline from
    per-frame corruption draws: with a fixed sojourn stream, every
    experiment sharing a seed sees the *same* good/bad timeline
    regardless of how many frames it transmits, which makes packet-size
    sweeps paired comparisons (far lower variance, the spirit of the
    paper's frozen-error example).

    With ``steady_state_init`` (default) the initial state is drawn
    from the chain's stationary distribution; because sojourns are
    exponential (memoryless), the process is then stationary from t=0
    and short transfers are not biased toward the good state.  Disable
    it to start in the good state as the paper's frozen example does.
    """
    state_rng = sojourn_rng or rng
    initial = ChannelState.GOOD
    if steady_state_init:
        p_good = good_mean / (good_mean + bad_mean)
        if state_rng.random() >= p_good:
            initial = ChannelState.BAD
    sojourns = ExponentialSojourns(good_mean, bad_mean, state_rng)
    return TwoStateChannel(
        sojourns, ber_good, ber_bad, rng=rng, initial_state=initial
    )


def deterministic_channel(
    good_len: float,
    bad_len: float,
    ber_good: float = 1e-6,
    ber_bad: float = 1e-2,
) -> TwoStateChannel:
    """The frozen channel used for the paper's trace example (§4.2.1)."""
    sojourns = DeterministicSojourns(good_len, bad_len)
    return TwoStateChannel(sojourns, ber_good, ber_bad, deterministic_errors=True)
