"""A fully scripted channel for tests and debugging.

Sometimes you need exact control: "lose the 3rd and 4th frames", or
"fail everything between t=2 and t=5".  :class:`ScriptedChannel`
satisfies the same interface the wireless link uses (``corrupts`` /
``good_fraction``) but takes its decisions from a user-supplied script
instead of a stochastic process, so protocol behaviour can be pinned
down frame by frame.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Set, Tuple


class ScriptedChannel:
    """Channel whose corruption decisions are scripted.

    Three (combinable) ways to script losses:

    * ``lose_frames`` — 1-based indices of transmissions to corrupt
      ("lose the 3rd and 7th frames offered");
    * ``bad_windows`` — absolute time intervals during which every
      transmission that overlaps them is lost;
    * ``decide`` — an arbitrary callback
      ``(index, start, duration, nbits) -> bool``.

    A transmission is corrupted if *any* active rule says so.
    """

    def __init__(
        self,
        lose_frames: Optional[Iterable[int]] = None,
        bad_windows: Optional[Iterable[Tuple[float, float]]] = None,
        decide: Optional[Callable[[int, float, float, int], bool]] = None,
        good_fraction_value: float = 1.0,
    ) -> None:
        self._lose: Set[int] = set(lose_frames or ())
        self._windows = [tuple(w) for w in (bad_windows or ())]
        for start, end in self._windows:
            if end < start:
                raise ValueError(f"bad window {start}..{end} is inverted")
        self._decide = decide
        self._good_fraction = good_fraction_value
        self.frames_tested = 0
        self.frames_corrupted = 0
        #: Log of (index, start, duration, corrupted) for assertions.
        self.decisions: list[Tuple[int, float, float, bool]] = []

    def corrupts(self, start: float, duration: float, nbits: int) -> bool:
        """Apply the scripted rules to one transmission."""
        self.frames_tested += 1
        index = self.frames_tested
        corrupted = index in self._lose
        if not corrupted:
            end = start + duration
            corrupted = any(
                start < w_end and end > w_start or (start == w_start)
                for w_start, w_end in self._windows
            )
        if not corrupted and self._decide is not None:
            corrupted = self._decide(index, start, duration, nbits)
        if corrupted:
            self.frames_corrupted += 1
        self.decisions.append((index, start, duration, corrupted))
        return corrupted

    def good_fraction(self) -> float:
        """The configured nominal good fraction (for tput_th helpers)."""
        return self._good_fraction
