"""Wireless channel error models.

The paper characterizes the wireless link with a two-state Markov
model (Fig. 1): a *good* state with mean BER 1e-6 and a *bad* state
(deep fade) with mean BER 1e-2; sojourn times in each state are
exponentially distributed (mean good period 10 s, mean bad period
1–4 s for the WAN study).  For the illustrative traces (Figs 3–5) the
paper freezes the randomness: constant sojourn lengths and
deterministic corruption, so the three schemes see identical error
sequences.

:class:`TwoStateChannel` implements both variants behind one
interface; see :mod:`repro.channel.twostate`.
"""

from repro.channel.bernoulli import BernoulliLossChannel, matched_loss_probability
from repro.channel.scripted import ScriptedChannel
from repro.channel.twostate import (
    ChannelState,
    DeterministicSojourns,
    ExponentialSojourns,
    SojournSource,
    TwoStateChannel,
    deterministic_channel,
    markov_channel,
)

__all__ = [
    "BernoulliLossChannel",
    "matched_loss_probability",
    "ScriptedChannel",
    "ChannelState",
    "DeterministicSojourns",
    "ExponentialSojourns",
    "SojournSource",
    "TwoStateChannel",
    "deterministic_channel",
    "markov_channel",
]
