"""Channel-State Dependent Packet scheduling (the [9] baseline of §2).

Bhagwat, Bhattacharya, Krishna & Tripathi (INFOCOM '95) — summarized
in the paper's related work — study *multiple* TCP connections sharing
one base-station radio, each to a different mobile host with its own
fading process.  Under FIFO scheduling, a head-of-line frame whose
destination is in a fade blocks everyone; round-robin and
channel-state-dependent (CSDP) scheduling restore the aggregate
throughput.  The paper cites two findings this package reproduces:

* "scheduling protocols such as round-robin provide significant
  performance improvement over FIFO";
* "the performance improvement achievable depends mostly on the
  accuracy of the channel state predictor", and source timeouts remain
  a problem CSDP does not address (EBSN is complementary).

Components:

* :class:`DownlinkRadio` — one transmitter at the BS serving N
  destinations, with per-destination burst-error channels, stop-and-
  wait-per-frame ARQ, and a pluggable scheduler;
* :mod:`repro.csdp.scheduling` — FIFO, round-robin and CSDP policies;
* :mod:`repro.csdp.study` — the N-connection topology and runner.
"""

from repro.csdp.radio import DownlinkRadio, RadioStats
from repro.csdp.scheduling import (
    CsdpScheduler,
    FifoScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.csdp.study import CsdpStudyConfig, CsdpStudyResult, run_csdp_study

__all__ = [
    "DownlinkRadio",
    "RadioStats",
    "CsdpScheduler",
    "FifoScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "CsdpStudyConfig",
    "CsdpStudyResult",
    "run_csdp_study",
]
