"""The CSDP study: N TCP connections sharing one base-station radio.

Topology (one row per connection i):

    FH_i ──wired──▶ BS ──(shared DownlinkRadio)──▶ MH_i
    FH_i ◀──wired── BS ◀──(per-MH plain uplink)─── MH_i

Each mobile host fades independently; the radio serves all of them
under a configurable scheduler.  The TCP ACK path uses a per-MH plain
uplink (no contention — the study isolates downlink scheduling, and
the paper's §3.1 treats MAC delay as negligible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.channel import markov_channel
from repro.csdp.radio import DownlinkRadio, RadioStats
from repro.csdp.scheduling import (
    CsdpScheduler,
    FifoScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.engine import RandomStreams, Simulator
from repro.net.ip import Fragmenter, Reassembler
from repro.net.link import WiredLink
from repro.net.node import Node
from repro.net.packet import data_frame
from repro.net.wireless import WirelessLink, WirelessLinkConfig
from repro.tcp import TahoeSender, TcpConfig, TcpSink


@dataclass
class CsdpStudyConfig:
    """Parameters of one multi-connection run."""

    scheduler: str = "fifo"  # "fifo" | "rr" | "csdp"
    n_connections: int = 4
    transfer_bytes: int = 50 * 1024
    packet_size: int = 576
    window_bytes: int = 4096
    wired_bandwidth_bps: float = 2_000_000.0  # wired is never the bottleneck
    wired_prop_delay: float = 0.005
    wireless: WirelessLinkConfig = field(default_factory=WirelessLinkConfig)
    good_period_mean: float = 4.0
    bad_period_mean: float = 1.0
    csdp_probe_interval: float = 0.5
    seed: int = 1
    max_sim_time: float = 50_000.0

    def build_scheduler(self) -> Scheduler:
        """Instantiate the configured scheduling policy."""
        if self.scheduler == "fifo":
            return FifoScheduler()
        if self.scheduler == "rr":
            return RoundRobinScheduler()
        if self.scheduler == "csdp":
            return CsdpScheduler(probe_interval=self.csdp_probe_interval)
        raise ValueError(f"unknown scheduler {self.scheduler!r}")


@dataclass
class CsdpStudyResult:
    """Aggregate and per-connection outcomes."""

    config: CsdpStudyConfig
    #: Total user payload delivered / time of last completion (bps).
    aggregate_throughput_bps: float
    per_connection_throughput_bps: List[float]
    completion_times: List[float]
    total_timeouts: int
    radio: RadioStats
    all_completed: bool
    scheduler: Scheduler

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over per-connection throughputs."""
        xs = self.per_connection_throughput_bps
        total = sum(xs)
        squares = sum(x * x for x in xs)
        if squares == 0:
            return 0.0
        return total * total / (len(xs) * squares)


def run_csdp_study(config: CsdpStudyConfig) -> CsdpStudyResult:
    """Build the N-connection topology and run all transfers."""
    sim = Simulator()
    streams = RandomStreams(config.seed)
    n = config.n_connections
    mh_names = [f"MH{i}" for i in range(n)]

    bs = Node("BS")

    # Independent fading per mobile host.
    channels = {
        name: markov_channel(
            config.good_period_mean,
            config.bad_period_mean,
            rng=streams.stream(f"errors-{name}"),
            sojourn_rng=streams.stream(f"sojourns-{name}"),
        )
        for name in mh_names
    }

    mh_nodes: Dict[str, Node] = {name: Node(name) for name in mh_names}
    radio = DownlinkRadio(
        sim,
        config.wireless,
        channels,
        config.build_scheduler(),
        rng=streams.stream("radio-backoff"),
        deliver=lambda dg: mh_nodes[dg.dst].receive(dg),
    )

    senders: List[TahoeSender] = []
    sinks: List[TcpSink] = []
    remaining = {"count": n}

    def one_done() -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            sim.stop()

    for i, mh_name in enumerate(mh_names):
        fh_name = f"FH{i}"
        fh = Node(fh_name)
        mh = mh_nodes[mh_name]

        wired_down = WiredLink(
            sim, config.wired_bandwidth_bps, config.wired_prop_delay, name=f"{fh_name}->BS"
        )
        wired_up = WiredLink(
            sim, config.wired_bandwidth_bps, config.wired_prop_delay, name=f"BS->{fh_name}"
        )
        wired_down.connect(bs.receive)
        wired_up.connect(fh.receive)
        fh.add_interface("wired", wired_down.send, mh_name, "BS")
        bs.add_interface(f"wired-{i}", wired_up.send, fh_name)

        # Plain per-MH uplink for TCP ACKs (shares the MH's fading).
        uplink = WirelessLink(sim, config.wireless, channels[mh_name], name=f"{mh_name}->BS")
        up_reassembler = Reassembler(sim, timeout=60.0, name=f"up-{mh_name}")
        up_fragmenter = Fragmenter(config.wireless.mtu_bytes)

        def on_uplink_frame(frame, _reasm=up_reassembler):
            datagram = _reasm.add(frame.fragment)
            if datagram is not None:
                bs.receive(datagram)

        uplink.connect(on_uplink_frame)

        def send_uplink(datagram, _link=uplink, _frag=up_fragmenter):
            for fragment in _frag.fragment(datagram):
                _link.send(data_frame(fragment))

        mh.add_interface("uplink", send_uplink, fh_name, "BS")

        sender = TahoeSender(
            sim,
            fh,
            mh_name,
            config=TcpConfig(
                packet_size=config.packet_size,
                window_bytes=config.window_bytes,
                transfer_bytes=config.transfer_bytes,
            ),
            on_complete=one_done,
        )
        fh.attach_agent(sender)
        sink = TcpSink(sim, mh, fh_name)
        mh.attach_agent(sink)
        senders.append(sender)
        sinks.append(sink)

    bs.add_interface("radio", radio.send_datagram, *mh_names)

    for sender in senders:
        sender.start()
    sim.run(until=config.max_sim_time)

    completion_times = [
        s.stats.completed_at if s.stats.completed_at is not None else sim.now
        for s in senders
    ]
    per_conn = [
        (sink.stats.useful_payload_bytes * 8 / t) if t > 0 else 0.0
        for sink, t in zip(sinks, completion_times)
    ]
    total_payload = sum(sink.stats.useful_payload_bytes for sink in sinks)
    span = max(completion_times) if completion_times else 0.0
    return CsdpStudyResult(
        config=config,
        aggregate_throughput_bps=total_payload * 8 / span if span > 0 else 0.0,
        per_connection_throughput_bps=per_conn,
        completion_times=completion_times,
        total_timeouts=sum(s.stats.timeouts for s in senders),
        radio=radio.stats,
        all_completed=all(s.completed for s in senders),
        scheduler=radio.scheduler,
    )
