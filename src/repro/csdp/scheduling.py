"""Link-level packet schedulers for the shared downlink radio.

The scheduler's job: given the set of destinations that have a frame
ready to transmit, pick one (or none).  It also observes per-attempt
outcomes, which is all a real base station can see — CSDP's "channel
state predictor" is exactly such an observation history.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence


class Scheduler(abc.ABC):
    """Chooses which destination the radio serves next."""

    @abc.abstractmethod
    def select(
        self, ready: Sequence[str], waiting: Sequence[str], now: float
    ) -> Optional[str]:
        """Pick a destination to serve, or ``None`` to idle.

        ``ready`` — destinations whose head frame may transmit now;
        ``waiting`` — destinations with frames still in retry backoff.
        A strict-FIFO scheduler idles when the globally oldest frame is
        in ``waiting`` (head-of-line blocking); a CSDP scheduler may
        idle when every ready destination is predicted faded.
        """

    def on_result(self, dest: str, success: bool, now: float) -> None:
        """Observe the outcome of one link-level attempt."""

    def earliest_retry(self, now: float) -> Optional[float]:
        """If :meth:`select` declined, when should the radio re-ask?"""
        return None


class FifoScheduler(Scheduler):
    """Strict global FIFO — the head-of-line-blocking baseline.

    The radio tells the scheduler the arrival order via
    :meth:`note_arrival`; FIFO always picks the destination owning the
    globally oldest queued frame, even if that destination is deep in
    a fade (its frame will be retried until the ARQ gives up, blocking
    everyone else — the pathology [9] identifies).
    """

    def __init__(self) -> None:
        self._order: List[tuple[int, str]] = []
        self._counter = 0

    def note_arrival(self, dest: str) -> None:
        """Record a frame arrival (preserves global FIFO order)."""
        self._order.append((self._counter, dest))
        self._counter += 1

    def note_departure(self, dest: str) -> None:
        """Remove the oldest entry for ``dest`` (frame acked/discarded)."""
        for i, (_, d) in enumerate(self._order):
            if d == dest:
                del self._order[i]
                return

    def select(
        self, ready: Sequence[str], waiting: Sequence[str], now: float
    ) -> Optional[str]:
        """Serve the globally oldest frame, or block behind it."""
        ready_set = set(ready)
        waiting_set = set(waiting)
        for _, dest in self._order:
            if dest in ready_set:
                return dest
            if dest in waiting_set:
                # The oldest frame is backing off: strict FIFO blocks
                # the whole radio behind it.
                return None
        # Order list empty or stale: fall back to first ready.
        return ready[0] if ready else None


class RoundRobinScheduler(Scheduler):
    """Cycle among destinations with ready frames."""

    def __init__(self) -> None:
        self._last: Optional[str] = None

    def select(
        self, ready: Sequence[str], waiting: Sequence[str], now: float
    ) -> Optional[str]:
        """Serve the next non-empty destination in rotation."""
        if not ready:
            return None
        ordered = sorted(ready)
        if self._last is None or self._last not in ordered:
            choice = ordered[0]
        else:
            index = (ordered.index(self._last) + 1) % len(ordered)
            choice = ordered[index]
        self._last = choice
        return choice


class CsdpScheduler(Scheduler):
    """Round-robin that avoids destinations predicted to be faded.

    The predictor is observation-driven: a failed attempt marks the
    destination *bad*; a bad destination is skipped until
    ``probe_interval`` seconds have passed, after which one probe
    transmission is allowed (success clears the mark).  A smaller
    probe interval reacts faster but wastes more probes — the accuracy
    trade-off the paper's §2 points at.
    """

    def __init__(self, probe_interval: float = 0.5) -> None:
        if probe_interval <= 0:
            raise ValueError(f"probe_interval must be positive, got {probe_interval}")
        self.probe_interval = probe_interval
        self._rr = RoundRobinScheduler()
        #: dest -> time the destination may next be tried.
        self._banned_until: Dict[str, float] = {}
        self.probes_sent = 0
        self.skips = 0

    def _usable(self, dest: str, now: float) -> bool:
        return now >= self._banned_until.get(dest, 0.0)

    def select(
        self, ready: Sequence[str], waiting: Sequence[str], now: float
    ) -> Optional[str]:
        """Round-robin over destinations not predicted to be faded."""
        if not ready:
            return None
        usable = [d for d in ready if self._usable(d, now)]
        self.skips += len(ready) - len(usable)
        if not usable:
            return None  # everyone ready is predicted faded: idle
        choice = self._rr.select(usable, [], now)
        if choice is not None and choice in self._banned_until:
            # First transmission after a ban is a probe.
            self.probes_sent += 1
        return choice

    def on_result(self, dest: str, success: bool, now: float) -> None:
        """Update the predictor: failure bans, success clears."""
        if success:
            self._banned_until.pop(dest, None)
        else:
            self._banned_until[dest] = now + self.probe_interval

    def earliest_retry(self, now: float) -> Optional[float]:
        """When the soonest ban expires (the radio's wake-up hint)."""
        if not self._banned_until:
            return None
        return min(self._banned_until.values())
