"""The shared downlink radio: one transmitter, many mobile hosts.

Models the base station of the CSDP study: a single radio serving N
destinations, each behind its own independently fading channel.  The
radio transmits one frame at a time (stop-and-wait at the frame level:
the outcome — link ACK or silence — is known one turnaround after the
frame leaves the air, as on a half-duplex MAC).  A failed frame backs
off and is retried up to ``rtmax`` times; what the radio does *while*
a frame backs off is the scheduler's decision, and that is exactly
where FIFO loses to round-robin and CSDP.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

import random

from repro.channel import TwoStateChannel
from repro.csdp.scheduling import FifoScheduler, Scheduler
from repro.engine import Simulator
from repro.engine.simulator import Event
from repro.linklayer import ArqConfig
from repro.net.ip import Fragmenter, Reassembler
from repro.net.packet import LINK_ACK_BYTES, Datagram, Fragment
from repro.net.wireless import WirelessLinkConfig


@dataclass
class RadioStats:
    """Counters for the shared radio."""

    frames_accepted: int = 0
    attempts: int = 0
    attempt_failures: int = 0
    frames_delivered: int = 0
    frames_discarded: int = 0
    siblings_dropped: int = 0
    idle_blocked_time: float = 0.0
    busy_time: float = 0.0


@dataclass
class _QueuedFrame:
    fragment: Fragment
    attempts: int = 0
    ready_at: float = 0.0


class DownlinkRadio:
    """Base-station radio multiplexing N per-destination queues."""

    def __init__(
        self,
        sim: Simulator,
        config: WirelessLinkConfig,
        channels: Dict[str, TwoStateChannel],
        scheduler: Scheduler,
        rng: random.Random,
        deliver: Callable[[Datagram], None],
        arq: Optional[ArqConfig] = None,
        reassembly_timeout: float = 60.0,
    ) -> None:
        if not channels:
            raise ValueError("need at least one destination channel")
        self._sim = sim
        self.config = config
        self.channels = channels
        self.scheduler = scheduler
        self._rng = rng
        self.deliver = deliver
        frame_time = self.tx_time(config.mtu_bytes)
        self.arq = arq or ArqConfig(
            ack_timeout=1.0,  # unused: outcome is synchronous here
            rtmax=13,
            backoff_min=2.5 * frame_time,
            backoff_max=7.5 * frame_time,
        )
        self.fragmenter = Fragmenter(config.mtu_bytes)
        self.reassembler = Reassembler(sim, timeout=reassembly_timeout, name="radio")
        self.queues: Dict[str, Deque[_QueuedFrame]] = {d: deque() for d in channels}
        self.stats = RadioStats()
        self._busy = False
        self._wake_event: Optional[Event] = None
        self._blocked_since: Optional[float] = None

    # ------------------------------------------------------------------

    def air_bytes(self, size_bytes: int) -> int:
        """On-air size after physical-layer expansion."""
        return int(round(size_bytes * self.config.overhead_factor))

    def tx_time(self, size_bytes: int) -> float:
        """Airtime of one frame of ``size_bytes``."""
        return self.air_bytes(size_bytes) * 8 / self.config.raw_bandwidth_bps

    @property
    def turnaround(self) -> float:
        """Propagation out, link-ACK airtime, propagation back."""
        return 2 * self.config.prop_delay + self.tx_time(LINK_ACK_BYTES)

    def send_datagram(self, datagram: Datagram) -> None:
        """Queue a datagram for its destination."""
        dest = datagram.dst
        if dest not in self.queues:
            raise KeyError(f"radio has no channel to {dest!r}")
        for fragment in self.fragmenter.fragment(datagram):
            self.queues[dest].append(_QueuedFrame(fragment))
            self.stats.frames_accepted += 1
            if isinstance(self.scheduler, FifoScheduler):
                self.scheduler.note_arrival(dest)
        self._pump()

    def backlog(self, dest: str) -> int:
        """Frames queued for one destination."""
        return len(self.queues[dest])

    # ------------------------------------------------------------------

    def _pump(self) -> None:
        if self._busy:
            return
        now = self._sim.now
        ready = [d for d, q in self.queues.items() if q and q[0].ready_at <= now]
        waiting = [d for d, q in self.queues.items() if q and q[0].ready_at > now]
        if not ready and not waiting:
            self._note_unblocked()
            return
        choice = self.scheduler.select(ready, waiting, now) if ready or waiting else None
        if choice is None:
            self._note_blocked()
            self._schedule_wake(waiting, now)
            return
        self._note_unblocked()
        self._transmit(choice)

    def _note_blocked(self) -> None:
        if self._blocked_since is None:
            self._blocked_since = self._sim.now

    def _note_unblocked(self) -> None:
        if self._blocked_since is not None:
            self.stats.idle_blocked_time += self._sim.now - self._blocked_since
            self._blocked_since = None

    def _schedule_wake(self, waiting, now: float) -> None:
        candidates = [self.queues[d][0].ready_at for d in waiting]
        hint = self.scheduler.earliest_retry(now)
        if hint is not None and hint > now:
            candidates.append(hint)
        if not candidates:
            candidates.append(now + 0.05)
        wake_at = max(min(candidates), now + 1e-6)
        if self._wake_event is not None:
            self._wake_event.cancel()
        self._wake_event = self._sim.schedule_at(wake_at, self._pump)

    def _transmit(self, dest: str) -> None:
        queued = self.queues[dest].popleft()
        queued.attempts += 1
        self._busy = True
        size = queued.fragment.size_bytes
        airtime = self.tx_time(size)
        self.stats.attempts += 1
        self.stats.busy_time += airtime

        channel = self.channels[dest]
        now = self._sim.now
        frame_ok = not channel.corrupts(now, airtime, self.air_bytes(size) * 8)
        ack_ok = False
        if frame_ok:
            ack_start = now + airtime + self.config.prop_delay
            ack_ok = not channel.corrupts(
                ack_start, self.tx_time(LINK_ACK_BYTES), self.air_bytes(LINK_ACK_BYTES) * 8
            )
        self._sim.schedule(
            airtime + self.turnaround,
            self._attempt_done,
            dest,
            queued,
            frame_ok,
            ack_ok,
        )

    def _attempt_done(
        self, dest: str, queued: _QueuedFrame, frame_ok: bool, ack_ok: bool
    ) -> None:
        self._busy = False
        self.scheduler.on_result(dest, ack_ok, self._sim.now)

        if frame_ok:
            # Receiver has it regardless of whether the ACK survived;
            # the reassembler's duplicate guard absorbs re-deliveries.
            datagram = self.reassembler.add(queued.fragment)
            if datagram is not None:
                self.stats.frames_delivered += 1
                self.deliver(datagram)

        if ack_ok:
            if isinstance(self.scheduler, FifoScheduler):
                self.scheduler.note_departure(dest)
        else:
            self.stats.attempt_failures += 1
            if queued.attempts >= self.arq.rtmax:
                self._discard(dest, queued)
            else:
                queued.ready_at = self._sim.now + self._rng.uniform(
                    self.arq.backoff_min, self.arq.backoff_max
                )
                self.queues[dest].appendleft(queued)
        self._pump()

    def _discard(self, dest: str, queued: _QueuedFrame) -> None:
        self.stats.frames_discarded += 1
        if isinstance(self.scheduler, FifoScheduler):
            self.scheduler.note_departure(dest)
        if self.arq.drop_siblings:
            uid = queued.fragment.datagram.uid
            queue = self.queues[dest]
            before = len(queue)
            self.queues[dest] = deque(
                qf for qf in queue if qf.fragment.datagram.uid != uid
            )
            dropped = before - len(self.queues[dest])
            self.stats.siblings_dropped += dropped
            if isinstance(self.scheduler, FifoScheduler):
                for _ in range(dropped):
                    self.scheduler.note_departure(dest)
