"""Configuration and counters for the link-layer ARQ (local recovery).

The paper's local recovery (§4.2.1, after Bhagwat et al. and the CDPD
spec) is aggressive retransmission with packet discard: if no link
acknowledgement follows a transmission, the frame is retransmitted
after a random backoff, up to ``rtmax`` total attempts (CDPD: 13)
before being discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ArqConfig:
    """Parameters of the stop-and-wait link-layer ARQ.

    ``ack_timeout`` is the time the transmitter waits *after the frame
    has fully left the radio* for the link ACK.  It must cover one
    round of propagation, the ACK's airtime, and the chance that the
    reverse link is busy serializing a data frame; topology builders
    compute it from the link parameters.
    """

    ack_timeout: float = 0.25
    #: Maximum successive transmissions of one frame before discard
    #: (the paper sets the CDPD value, 13).
    rtmax: int = 13
    #: Random retransmission backoff, uniform in [min, max] seconds.
    backoff_min: float = 0.02
    backoff_max: float = 0.2
    #: Frames that may be unacknowledged at once.  1 = stop-and-wait;
    #: a small window (default 4) keeps the radio busy across the
    #: link-ACK turnaround, as the aggressive-retransmission protocol
    #: of [9] does.  Failing frames occupy window slots, so a deep fade
    #: still blocks the queue (the head-of-line behaviour CSDP [9]
    #: observed) rather than dumping everything into the fade.
    window: int = 4
    #: When a fragment is discarded after rtmax attempts, also drop the
    #: queued sibling fragments of the same datagram (the datagram can
    #: no longer reassemble, so sending them only wastes airtime).
    drop_siblings: bool = True
    #: Deliver frames to the network layer in link-sequence order, as
    #: RLP-style local recovery does.  Without this, a retried frame
    #: overtaken by its successors produces TCP duplicate ACKs and a
    #: spurious fast retransmit at the source.
    in_order_delivery: bool = True
    #: How long the receiver holds out-of-order frames before flushing
    #: past a gap (covers the transmitter's full retry horizon).
    #: None = derive from rtmax/ack_timeout/backoff.
    resequencing_flush: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be positive, got {self.ack_timeout}")
        if self.rtmax < 1:
            raise ValueError(f"rtmax must be >= 1, got {self.rtmax}")
        if self.backoff_min < 0 or self.backoff_max < self.backoff_min:
            raise ValueError(
                f"need 0 <= backoff_min <= backoff_max, got "
                f"[{self.backoff_min}, {self.backoff_max}]"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.resequencing_flush is not None and self.resequencing_flush <= 0:
            raise ValueError("resequencing_flush must be positive or None")

    def derived_flush(self) -> float:
        """Resequencing flush timeout: the full retry horizon plus margin."""
        if self.resequencing_flush is not None:
            return self.resequencing_flush
        return self.rtmax * (self.ack_timeout + self.backoff_max) + 1.0


@dataclass
class ArqStats:
    """Counters kept by each port's ARQ transmitter."""

    frames_accepted: int = 0
    first_transmissions: int = 0
    link_retransmissions: int = 0
    link_acks_received: int = 0
    stale_link_acks: int = 0
    ack_timeouts: int = 0
    frames_discarded: int = 0
    siblings_dropped: int = 0
    rx_duplicates: int = 0
    rx_out_of_order: int = 0
    rx_gap_flushes: int = 0

    def attempts_per_frame(self) -> float:
        """Mean transmissions per accepted frame."""
        if not self.frames_accepted:
            return 0.0
        total = self.first_transmissions + self.link_retransmissions
        return total / self.frames_accepted
