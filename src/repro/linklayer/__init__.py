"""Link layer of the wireless hop: framing, ARQ local recovery, delivery.

:class:`WirelessPort` is one endpoint's attachment to the wireless
link.  The base station and the mobile host each own one port per
direction pair; a port fragments outgoing datagrams, transmits them in
``PLAIN`` (fire-and-forget) or ``ARQ`` (the paper's "local recovery":
stop-and-wait with link acknowledgements, random retransmission
backoff and an RTmax discard limit) mode, link-acknowledges and
reassembles incoming traffic, and exposes feedback hooks from which
the base station's EBSN / source-quench generators hang.
"""

from repro.linklayer.arq import ArqConfig, ArqStats
from repro.linklayer.port import FeedbackHooks, LinkLayerMode, WirelessPort

__all__ = [
    "ArqConfig",
    "ArqStats",
    "FeedbackHooks",
    "LinkLayerMode",
    "WirelessPort",
]
