"""A node's attachment to the wireless hop.

One :class:`WirelessPort` bundles everything a host does at the link
layer of the wireless hop:

* **outgoing**: fragment datagrams to the MTU and transmit — either
  fire-and-forget (``PLAIN``, basic TCP experiments) or under a
  sliding-window ARQ with link ACKs, random backoff, and RTmax discard
  (``ARQ``, the paper's local recovery);
* **incoming**: link-acknowledge received data frames (in ARQ mode),
  reassemble fragments all-or-nothing, and hand completed datagrams up
  to the node;
* **feedback**: surface every failed link-level attempt and discard to
  :class:`FeedbackHooks` — the base station's EBSN and source-quench
  generators attach here.

The ARQ transmitter keeps up to ``window`` frames unacknowledged (1 =
stop-and-wait).  Each transmitted frame starts its own acknowledgement
timer when it finishes leaving the radio; an unacknowledged frame is
retransmitted after a random backoff, with retransmissions taking
priority over new frames, until ``rtmax`` total attempts.  Because
failing frames keep occupying window slots, a deep fade stalls the
queue instead of pouring it into the fade — the head-of-line behaviour
the CSDP paper [9] describes for FIFO link scheduling.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.engine import Simulator, Timer
from repro.engine.simulator import Event
from repro.linklayer.arq import ArqConfig, ArqStats
from repro.net.ip import Fragmenter, Reassembler
from repro.net.packet import (
    Datagram,
    Fragment,
    FrameKind,
    LinkFrame,
    data_frame,
    link_ack_frame,
    skip_frame,
)
from repro.net.wireless import WirelessLink


class LinkLayerMode(enum.Enum):
    """How the port transmits over the wireless hop."""

    #: Fire-and-forget: corrupted frames are simply lost (basic TCP).
    PLAIN = "plain"
    #: Sliding-window local recovery with link ACKs (the paper's §4.2.1).
    ARQ = "arq"


class FeedbackHooks:
    """Callbacks raised by a port's ARQ machinery.

    The base class is all no-ops; the EBSN generator
    (:class:`repro.core.ebsn.EbsnGenerator`) and the source-quench
    generator override what they need.
    """

    def on_attempt_failed(self, fragment: Fragment, attempt: int) -> None:
        """A link-level transmission attempt got no acknowledgement."""

    def on_frame_discarded(self, fragment: Fragment) -> None:
        """A frame exhausted RTmax attempts and was dropped."""

    def on_queue_depth(self, depth: int) -> None:
        """The transmit queue depth changed (after an enqueue)."""

    def on_recovered(self) -> None:
        """A link ACK arrived — the channel is passing frames again."""


@dataclass
class _OutstandingFrame:
    """ARQ bookkeeping for one unacknowledged frame."""

    frame: LinkFrame
    attempts: int = 0
    ack_timer: Optional[Timer] = None
    backoff_event: Optional[Event] = None
    awaiting_retry: bool = False

    def cancel_timers(self) -> None:
        if self.ack_timer is not None:
            self.ack_timer.cancel()
        if self.backoff_event is not None:
            self.backoff_event.cancel()
            self.backoff_event = None


class WirelessPort:
    """One endpoint of the wireless hop (base station or mobile host)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        out_link: WirelessLink,
        deliver: Callable[[Datagram], None],
        mode: LinkLayerMode = LinkLayerMode.PLAIN,
        arq_config: Optional[ArqConfig] = None,
        rng: Optional[random.Random] = None,
        feedback: Optional[FeedbackHooks] = None,
        reassembly_timeout: float = 30.0,
    ) -> None:
        if mode is LinkLayerMode.ARQ and rng is None:
            raise ValueError("ARQ mode needs an rng for random backoff")
        self._sim = sim
        self.name = name
        self.out_link = out_link
        self.deliver = deliver
        self.mode = mode
        self.arq_config = arq_config or ArqConfig()
        self._rng = rng
        self.feedback = feedback or FeedbackHooks()

        self.fragmenter = Fragmenter(out_link.config.mtu_bytes)
        self.reassembler = Reassembler(
            sim, timeout=reassembly_timeout, name=f"{name}.reasm"
        )
        self.stats = ArqStats()

        # ARQ transmitter state.
        self._pending: Deque[Fragment] = deque()
        self._retry: Deque[int] = deque()  # frame uids ready to retransmit
        self._outstanding: Dict[int, _OutstandingFrame] = {}
        self._tx_seq = 0

        # ARQ receiver resequencing state (in-order delivery); None in
        # the buffer marks a SKIP slot.
        self._rx_expected = 0
        self._rx_buffer: Dict[int, Optional[Fragment]] = {}
        self._flush_timer = Timer(sim, self._flush_gap, name=f"{name}.flush")
        self._flush_timeout = self.arq_config.derived_flush()

    # ------------------------------------------------------------------
    # Outgoing path
    # ------------------------------------------------------------------

    def send_datagram(self, datagram: Datagram) -> None:
        """Fragment and transmit a datagram over the wireless hop."""
        fragments = self.fragmenter.fragment(datagram)
        if self.mode is LinkLayerMode.PLAIN:
            for fragment in fragments:
                self.out_link.send(data_frame(fragment))
            self.feedback.on_queue_depth(len(self.out_link.queue))
        else:
            self._pending.extend(fragments)
            self.stats.frames_accepted += len(fragments)
            self.feedback.on_queue_depth(self.queue_depth)
            self._pump()

    @property
    def queue_depth(self) -> int:
        """Frames waiting or unacknowledged at this port's transmitter."""
        if self.mode is LinkLayerMode.PLAIN:
            return len(self.out_link.queue)
        return len(self._pending) + len(self._outstanding)

    @property
    def busy(self) -> bool:
        """True while the ARQ has unacknowledged frames."""
        return bool(self._outstanding)

    def _pump(self) -> None:
        """Transmit retries first, then new frames, up to the window."""
        # Retries first: they already hold window slots, so they are
        # never throttled — only new frames consume fresh slots.
        while self._retry:
            uid = self._retry.popleft()
            entry = self._outstanding.get(uid)
            if entry is None or not entry.awaiting_retry:
                continue
            entry.awaiting_retry = False
            self.stats.link_retransmissions += 1
            self._transmit(entry)
        while self._pending and len(self._outstanding) < self.arq_config.window:
            fragment = self._pending.popleft()
            entry = _OutstandingFrame(frame=data_frame(fragment))
            if self.arq_config.in_order_delivery:
                entry.frame.link_seq = self._tx_seq
                self._tx_seq += 1
            self._outstanding[entry.frame.uid] = entry
            self.stats.first_transmissions += 1
            self._transmit(entry)

    def _transmit(self, entry: _OutstandingFrame) -> None:
        entry.attempts += 1
        entry.frame.attempt = entry.attempts
        self.out_link.send(entry.frame, on_tx_complete=self._on_tx_complete)

    def _on_tx_complete(self, frame: LinkFrame) -> None:
        entry = self._outstanding.get(frame.uid)
        if entry is None or entry.awaiting_retry:
            return
        if entry.ack_timer is None:
            entry.ack_timer = Timer(
                self._sim,
                lambda uid=frame.uid: self._on_ack_timeout(uid),
                name=f"{self.name}.arq#{frame.uid}",
            )
        entry.ack_timer.restart(self.arq_config.ack_timeout)

    def _on_ack_timeout(self, uid: int) -> None:
        entry = self._outstanding.get(uid)
        if entry is None:
            return
        self.stats.ack_timeouts += 1
        if entry.frame.fragment is not None:
            self.feedback.on_attempt_failed(entry.frame.fragment, entry.attempts)
        if entry.attempts >= self.arq_config.rtmax:
            self._discard(entry)
            return
        delay = self._backoff_delay()
        entry.backoff_event = self._sim.schedule(
            delay, self._backoff_expired, uid
        )

    def _backoff_expired(self, uid: int) -> None:
        entry = self._outstanding.get(uid)
        if entry is None:
            return
        entry.backoff_event = None
        entry.awaiting_retry = True
        self._retry.append(uid)
        self._pump()

    def _backoff_delay(self) -> float:
        assert self._rng is not None
        cfg = self.arq_config
        return self._rng.uniform(cfg.backoff_min, cfg.backoff_max)

    def _discard(self, entry: _OutstandingFrame) -> None:
        entry.cancel_timers()
        del self._outstanding[entry.frame.uid]
        self.stats.frames_discarded += 1
        fragment = entry.frame.fragment
        if fragment is None:
            # A SKIP marker itself exhausted its attempts; the far
            # side's flush timeout is the fallback.  Don't recurse.
            self._pump()
            return
        self.feedback.on_frame_discarded(fragment)
        self._send_skip(entry.frame.link_seq)
        if self.arq_config.drop_siblings:
            self._drop_siblings(fragment.datagram.uid)
        self._pump()

    def _send_skip(self, link_seq: Optional[int]) -> None:
        """Reliably tell the receiver to skip a discarded frame's slot."""
        if link_seq is None:
            return
        entry = _OutstandingFrame(frame=skip_frame(link_seq))
        self._outstanding[entry.frame.uid] = entry
        self._transmit(entry)

    def _drop_siblings(self, datagram_uid: int) -> None:
        """Drop queued/outstanding fragments of an unreassemblable datagram."""
        before = len(self._pending)
        self._pending = deque(
            f for f in self._pending if f.datagram.uid != datagram_uid
        )
        self.stats.siblings_dropped += before - len(self._pending)
        doomed = [
            e
            for e in self._outstanding.values()
            if e.frame.fragment is not None
            and e.frame.fragment.datagram.uid == datagram_uid
        ]
        for entry in doomed:
            entry.cancel_timers()
            del self._outstanding[entry.frame.uid]
            self.stats.siblings_dropped += 1
            self._send_skip(entry.frame.link_seq)

    # ------------------------------------------------------------------
    # Incoming path
    # ------------------------------------------------------------------

    def receive_frame(self, frame: LinkFrame) -> None:
        """Entry point: connect this to the incoming wireless link."""
        if frame.kind is FrameKind.LINK_ACK:
            self._handle_link_ack(frame)
            return
        if self.mode is LinkLayerMode.ARQ:
            self.out_link.send(link_ack_frame(frame.uid))
        if frame.kind is FrameKind.SKIP:
            assert frame.link_seq is not None
            self._resequence(frame.link_seq, None)
            return
        assert frame.fragment is not None
        if frame.link_seq is None:
            self._deliver_fragment(frame.fragment)
            return
        self._resequence(frame.link_seq, frame.fragment)

    def _deliver_fragment(self, fragment: Fragment) -> None:
        datagram = self.reassembler.add(fragment)
        if datagram is not None:
            self.deliver(datagram)

    def _resequence(self, seq: int, fragment: Optional[Fragment]) -> None:
        """Deliver fragments in link-sequence order, flushing stale gaps.

        ``fragment=None`` is a SKIP marker: the slot is consumed with
        nothing delivered.
        """
        if seq < self._rx_expected:
            # A retransmission of something already delivered (its link
            # ACK was lost).  The reassembler's duplicate guard handles
            # any residual effect; nothing to deliver.
            self.stats.rx_duplicates += 1
            return
        if seq > self._rx_expected:
            if seq not in self._rx_buffer:
                self._rx_buffer[seq] = fragment
                self.stats.rx_out_of_order += 1
            if not self._flush_timer.pending:
                self._flush_timer.start(self._flush_timeout)
            return
        if fragment is not None:
            self._deliver_fragment(fragment)
        self._rx_expected += 1
        self._drain_rx_buffer()

    def _drain_rx_buffer(self) -> None:
        while self._rx_expected in self._rx_buffer:
            fragment = self._rx_buffer.pop(self._rx_expected)
            if fragment is not None:
                self._deliver_fragment(fragment)
            self._rx_expected += 1
        if self._rx_buffer:
            self._flush_timer.restart(self._flush_timeout)
        else:
            self._flush_timer.cancel()

    def _flush_gap(self) -> None:
        """Skip a gap whose frame the far transmitter has given up on."""
        if not self._rx_buffer:
            return
        self.stats.rx_gap_flushes += 1
        self._rx_expected = min(self._rx_buffer)
        self._drain_rx_buffer()

    def _handle_link_ack(self, frame: LinkFrame) -> None:
        entry = self._outstanding.get(frame.acked_frame_uid or -1)
        if entry is None:
            self.stats.stale_link_acks += 1
            return
        self.stats.link_acks_received += 1
        self.feedback.on_recovered()
        entry.cancel_timers()
        if entry.awaiting_retry:
            entry.awaiting_retry = False  # leave a dangling uid in _retry
        del self._outstanding[entry.frame.uid]
        self._pump()
