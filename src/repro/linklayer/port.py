"""A node's attachment to the wireless hop.

One :class:`WirelessPort` bundles everything a host does at the link
layer of the wireless hop:

* **outgoing**: fragment datagrams to the MTU and transmit — either
  fire-and-forget (``PLAIN``, basic TCP experiments) or under a
  sliding-window ARQ with link ACKs, random backoff, and RTmax discard
  (``ARQ``, the paper's local recovery);
* **incoming**: link-acknowledge received data frames (in ARQ mode),
  reassemble fragments all-or-nothing, and hand completed datagrams up
  to the node;
* **feedback**: surface every failed link-level attempt and discard to
  :class:`FeedbackHooks` — the base station's EBSN and source-quench
  generators attach here.

The ARQ transmitter keeps up to ``window`` frames unacknowledged (1 =
stop-and-wait).  Each transmitted frame starts its own acknowledgement
timer when it finishes leaving the radio; an unacknowledged frame is
retransmitted after a random backoff, with retransmissions taking
priority over new frames, until ``rtmax`` total attempts.  Because
failing frames keep occupying window slots, a deep fade stalls the
queue instead of pouring it into the fade — the head-of-line behaviour
the CSDP paper [9] describes for FIFO link scheduling.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.engine import Simulator, Timer
from repro.engine.simulator import Event
from repro.linklayer.arq import ArqConfig, ArqStats
from repro.net.ip import Fragmenter, Reassembler
from repro.net.packet import (
    Datagram,
    Fragment,
    FrameKind,
    LinkFrame,
    data_frame,
    link_ack_frame,
    skip_frame,
)
from repro.net.wireless import WirelessLink


class LinkLayerMode(enum.Enum):
    """How the port transmits over the wireless hop."""

    #: Fire-and-forget: corrupted frames are simply lost (basic TCP).
    PLAIN = "plain"
    #: Sliding-window local recovery with link ACKs (the paper's §4.2.1).
    ARQ = "arq"


class FeedbackHooks:
    """Callbacks raised by a port's ARQ machinery.

    The base class is all no-ops; the EBSN generator
    (:class:`repro.core.ebsn.EbsnGenerator`) and the source-quench
    generator override what they need.
    """

    def on_attempt_failed(self, fragment: Fragment, attempt: int) -> None:
        """A link-level transmission attempt got no acknowledgement."""

    def on_frame_discarded(self, fragment: Fragment) -> None:
        """A frame exhausted RTmax attempts and was dropped."""

    def on_queue_depth(self, depth: int) -> None:
        """The transmit queue depth changed (after an enqueue)."""

    def on_recovered(self) -> None:
        """A link ACK arrived — the channel is passing frames again."""


@dataclass(slots=True)
class _OutstandingFrame:
    """ARQ bookkeeping for one unacknowledged frame."""

    frame: LinkFrame
    attempts: int = 0
    ack_timer: Optional[Timer] = None
    backoff_event: Optional[Event] = None
    awaiting_retry: bool = False

    def cancel_timers(self) -> None:
        if self.ack_timer is not None:
            self.ack_timer.cancel()
        if self.backoff_event is not None:
            self.backoff_event.cancel()
            self.backoff_event = None


# Module-level aliases: enum member access costs a class-attribute
# lookup per frame on the receive path; a plain global is cheaper.
_LINK_ACK = FrameKind.LINK_ACK
_SKIP = FrameKind.SKIP
_ARQ = LinkLayerMode.ARQ


class WirelessPort:
    """One endpoint of the wireless hop (base station or mobile host)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        out_link: WirelessLink,
        deliver: Callable[[Datagram], None],
        mode: LinkLayerMode = LinkLayerMode.PLAIN,
        arq_config: Optional[ArqConfig] = None,
        rng: Optional[random.Random] = None,
        feedback: Optional[FeedbackHooks] = None,
        reassembly_timeout: float = 30.0,
    ) -> None:
        if mode is LinkLayerMode.ARQ and rng is None:
            raise ValueError("ARQ mode needs an rng for random backoff")
        self._sim = sim
        self.name = name
        self.out_link = out_link
        self.deliver = deliver
        self.mode = mode
        self.arq_config = arq_config or ArqConfig()
        self._rng = rng
        self.feedback = feedback or FeedbackHooks()

        self.fragmenter = Fragmenter(out_link.config.mtu_bytes)
        self.reassembler = Reassembler(
            sim, timeout=reassembly_timeout, name=f"{name}.reasm"
        )
        self.stats = ArqStats()

        # ARQ transmitter state.
        self._pending: Deque[Fragment] = deque()
        self._retry: Deque[int] = deque()  # frame uids ready to retransmit
        self._outstanding: Dict[int, _OutstandingFrame] = {}
        self._tx_seq = 0

        # ARQ receiver resequencing state (in-order delivery); None in
        # the buffer marks a SKIP slot.
        self._rx_expected = 0
        self._rx_buffer: Dict[int, Optional[Fragment]] = {}
        self._flush_timer = Timer(sim, self._flush_gap, name=f"{name}.flush")
        self._flush_timeout = self.arq_config.derived_flush()

        # Hot-path prebinds.  Simulator.schedule is never instance-
        # patched; shadowing _on_tx_complete in the instance dict hands
        # out_link.send the same bound method every time instead of
        # binding a fresh one per frame.  (_transmit stays an attribute
        # lookup — the validation checkers instance-patch it.)
        self._schedule = sim.schedule
        self._on_tx_complete = self._on_tx_complete

    # ------------------------------------------------------------------
    # Outgoing path
    # ------------------------------------------------------------------

    def send_datagram(self, datagram: Datagram) -> None:
        """Fragment and transmit a datagram over the wireless hop."""
        fragments = self.fragmenter.fragment(datagram)
        if self.mode is LinkLayerMode.PLAIN:
            send = self.out_link.send
            for fragment in fragments:
                send(data_frame(fragment))
            self.feedback.on_queue_depth(len(self.out_link.queue))
        else:
            self._pending.extend(fragments)
            self.stats.frames_accepted += len(fragments)
            self.feedback.on_queue_depth(self.queue_depth)
            self._pump()

    @property
    def queue_depth(self) -> int:
        """Frames waiting or unacknowledged at this port's transmitter."""
        if self.mode is LinkLayerMode.PLAIN:
            return len(self.out_link.queue)
        return len(self._pending) + len(self._outstanding)

    @property
    def busy(self) -> bool:
        """True while the ARQ has unacknowledged frames."""
        return bool(self._outstanding)

    def _pump(self) -> None:
        """Transmit retries first, then new frames, up to the window."""
        # Retries first: they already hold window slots, so they are
        # never throttled — only new frames consume fresh slots.
        outstanding = self._outstanding
        retry = self._retry
        while retry:
            uid = retry.popleft()
            entry = outstanding.get(uid)
            if entry is None or not entry.awaiting_retry:
                continue
            entry.awaiting_retry = False
            self.stats.link_retransmissions += 1
            self._transmit(entry)
        pending = self._pending
        if not pending:
            return
        cfg = self.arq_config
        window = cfg.window
        in_order = cfg.in_order_delivery
        stats = self.stats
        while pending and len(outstanding) < window:
            frame = data_frame(pending.popleft())
            # Field-by-field build skips the dataclass __init__ on the
            # per-frame hot path (all defaults spelled out).
            entry = _OutstandingFrame.__new__(_OutstandingFrame)
            entry.frame = frame
            entry.attempts = 0
            entry.ack_timer = None
            entry.backoff_event = None
            entry.awaiting_retry = False
            if in_order:
                frame.link_seq = self._tx_seq
                self._tx_seq += 1
            outstanding[frame.uid] = entry
            stats.first_transmissions += 1
            self._transmit(entry)

    def _transmit(self, entry: _OutstandingFrame) -> None:
        entry.attempts += 1
        entry.frame.attempt = entry.attempts
        self.out_link.send(entry.frame, on_tx_complete=self._on_tx_complete)

    def _on_tx_complete(self, frame: LinkFrame) -> None:
        entry = self._outstanding.get(frame.uid)
        if entry is None or entry.awaiting_retry:
            return
        timer = entry.ack_timer
        if timer is None:
            timer = entry.ack_timer = Timer(
                self._sim,
                lambda uid=frame.uid: self._on_ack_timeout(uid),
                name=f"{self.name}.arq#{frame.uid}",
            )
        # Inlined timer.restart(self.arq_config.ack_timeout): one timer
        # restart per transmitted frame.
        event = timer._event
        if event is not None:
            event.cancel()
        timer._event = self._schedule(self.arq_config.ack_timeout, timer._fire)

    def _on_ack_timeout(self, uid: int) -> None:
        entry = self._outstanding.get(uid)
        if entry is None:
            return
        self.stats.ack_timeouts += 1
        if entry.frame.fragment is not None:
            self.feedback.on_attempt_failed(entry.frame.fragment, entry.attempts)
        if entry.attempts >= self.arq_config.rtmax:
            self._discard(entry)
            return
        delay = self._backoff_delay()
        entry.backoff_event = self._schedule(delay, self._backoff_expired, uid)

    def _backoff_expired(self, uid: int) -> None:
        entry = self._outstanding.get(uid)
        if entry is None:
            return
        entry.backoff_event = None
        entry.awaiting_retry = True
        self._retry.append(uid)
        self._pump()

    def _backoff_delay(self) -> float:
        assert self._rng is not None
        cfg = self.arq_config
        return self._rng.uniform(cfg.backoff_min, cfg.backoff_max)

    def _discard(self, entry: _OutstandingFrame) -> None:
        entry.cancel_timers()
        del self._outstanding[entry.frame.uid]
        self.stats.frames_discarded += 1
        fragment = entry.frame.fragment
        if fragment is None:
            # A SKIP marker itself exhausted its attempts; the far
            # side's flush timeout is the fallback.  Don't recurse.
            self._pump()
            return
        self.feedback.on_frame_discarded(fragment)
        self._send_skip(entry.frame.link_seq)
        if self.arq_config.drop_siblings:
            self._drop_siblings(fragment.datagram.uid)
        self._pump()

    def _send_skip(self, link_seq: Optional[int]) -> None:
        """Reliably tell the receiver to skip a discarded frame's slot."""
        if link_seq is None:
            return
        entry = _OutstandingFrame(frame=skip_frame(link_seq))
        self._outstanding[entry.frame.uid] = entry
        self._transmit(entry)

    def _drop_siblings(self, datagram_uid: int) -> None:
        """Drop queued/outstanding fragments of an unreassemblable datagram."""
        before = len(self._pending)
        self._pending = deque(
            f for f in self._pending if f.datagram.uid != datagram_uid
        )
        self.stats.siblings_dropped += before - len(self._pending)
        doomed = [
            e
            for e in self._outstanding.values()
            if e.frame.fragment is not None
            and e.frame.fragment.datagram.uid == datagram_uid
        ]
        for entry in doomed:
            entry.cancel_timers()
            del self._outstanding[entry.frame.uid]
            self.stats.siblings_dropped += 1
            self._send_skip(entry.frame.link_seq)

    # ------------------------------------------------------------------
    # Incoming path
    # ------------------------------------------------------------------

    def receive_frame(self, frame: LinkFrame) -> None:
        """Entry point: connect this to the incoming wireless link.

        The two per-frame cases — a link ACK releasing a window slot,
        and an in-order data frame — are inlined here; out-of-order,
        SKIP, and stale frames take the cold helpers.
        """
        kind = frame.kind
        if kind is _LINK_ACK:
            entry = self._outstanding.get(frame.acked_frame_uid or -1)
            if entry is None:
                self.stats.stale_link_acks += 1
                return
            self.stats.link_acks_received += 1
            self.feedback.on_recovered()
            # Inlined entry.cancel_timers() + Timer.cancel().
            timer = entry.ack_timer
            if timer is not None:
                event = timer._event
                if event is not None:
                    event.cancel()
                    timer._event = None
            backoff = entry.backoff_event
            if backoff is not None:
                backoff.cancel()
                entry.backoff_event = None
            if entry.awaiting_retry:
                entry.awaiting_retry = False  # leave a dangling uid in _retry
            del self._outstanding[entry.frame.uid]
            self._pump()
            return
        if self.mode is _ARQ:
            self.out_link.send(link_ack_frame(frame.uid))
        if kind is _SKIP:
            assert frame.link_seq is not None
            self._resequence(frame.link_seq, None)
            return
        fragment = frame.fragment
        assert fragment is not None
        seq = frame.link_seq
        if seq is None:
            datagram = self.reassembler.add(fragment)
            if datagram is not None:
                self.deliver(datagram)
            return
        if seq == self._rx_expected:
            # In-order arrival, the steady-state case.
            datagram = self.reassembler.add(fragment)
            if datagram is not None:
                self.deliver(datagram)
            self._rx_expected = seq + 1
            if self._rx_buffer:
                self._drain_rx_buffer()
            else:
                # Inlined self._flush_timer.cancel() — usually idle.
                timer = self._flush_timer
                event = timer._event
                if event is not None:
                    event.cancel()
                    timer._event = None
            return
        self._resequence(seq, fragment)

    def _resequence(self, seq: int, fragment: Optional[Fragment]) -> None:
        """Deliver fragments in link-sequence order, flushing stale gaps.

        ``fragment=None`` is a SKIP marker: the slot is consumed with
        nothing delivered.
        """
        if seq < self._rx_expected:
            # A retransmission of something already delivered (its link
            # ACK was lost).  The reassembler's duplicate guard handles
            # any residual effect; nothing to deliver.
            self.stats.rx_duplicates += 1
            return
        if seq > self._rx_expected:
            if seq not in self._rx_buffer:
                self._rx_buffer[seq] = fragment
                self.stats.rx_out_of_order += 1
            if not self._flush_timer.pending:
                self._flush_timer.start(self._flush_timeout)
            return
        if fragment is not None:
            datagram = self.reassembler.add(fragment)
            if datagram is not None:
                self.deliver(datagram)
        self._rx_expected += 1
        self._drain_rx_buffer()

    def _drain_rx_buffer(self) -> None:
        while self._rx_expected in self._rx_buffer:
            fragment = self._rx_buffer.pop(self._rx_expected)
            if fragment is not None:
                datagram = self.reassembler.add(fragment)
                if datagram is not None:
                    self.deliver(datagram)
            self._rx_expected += 1
        if self._rx_buffer:
            self._flush_timer.restart(self._flush_timeout)
        else:
            self._flush_timer.cancel()

    def _flush_gap(self) -> None:
        """Skip a gap whose frame the far transmitter has given up on."""
        if not self._rx_buffer:
            return
        self.stats.rx_gap_flushes += 1
        self._rx_expected = min(self._rx_buffer)
        self._drain_rx_buffer()

