"""repro — reproduction of "Improving Performance of TCP over Wireless
Networks" (Bakshi, Krishna, Vaidya, Pradhan; ICDCS 1997).

A pure-Python discrete-event network simulator plus the paper's
mechanisms:

* TCP Tahoe over a wired+wireless path with a two-state burst-error
  channel;
* link-layer local recovery (stop-and-wait ARQ with RTmax discard) at
  the base station;
* **EBSN** — Explicit Bad State Notification — the paper's
  contribution: the base station re-arms the source's retransmission
  timer during local recovery, eliminating spurious timeouts;
* packet-size optimization for fragmented wireless paths;
* baselines: ICMP source quench, snoop-style agent.

Quickstart::

    from repro import Scheme, run_scenario, wan_scenario

    result = run_scenario(wan_scenario(scheme=Scheme.EBSN, packet_size=1536,
                                       bad_period_mean=4.0))
    print(result.metrics.throughput_kbps, "kbps,",
          result.metrics.goodput * 100, "% goodput")
"""

from repro.experiments.config import (
    lan_scenario,
    trace_example_scenario,
    wan_scenario,
)
from repro.experiments.runner import ReplicatedResult, run_replicated, sweep
from repro.experiments.topology import (
    ChannelConfig,
    Scenario,
    ScenarioConfig,
    ScenarioResult,
    Scheme,
    run_scenario,
)
from repro.metrics import ConnectionMetrics, PacketTrace, theoretical_throughput_bps
from repro.tcp import RenoSender, TahoeSender, TcpConfig, TcpSink

__version__ = "1.0.0"

__all__ = [
    "ChannelConfig",
    "ConnectionMetrics",
    "PacketTrace",
    "RenoSender",
    "ReplicatedResult",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "Scheme",
    "TahoeSender",
    "TcpConfig",
    "TcpSink",
    "lan_scenario",
    "run_replicated",
    "run_scenario",
    "sweep",
    "theoretical_throughput_bps",
    "trace_example_scenario",
    "wan_scenario",
    "__version__",
]
