"""Discrete-event simulation engine.

The engine is the substrate everything else runs on: a binary-heap
event loop with a float-seconds clock (:class:`Simulator`), cancellable
re-armable timers (:class:`Timer`), and named deterministic random
streams (:class:`RandomStreams`) so that every stochastic component of
a simulation draws from its own reproducible sequence.
"""

from repro.engine.simulator import (
    Event,
    Simulator,
    SimulationError,
    WallClockExceeded,
)
from repro.engine.timer import Timer
from repro.engine.rng import RandomStreams

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "WallClockExceeded",
    "Timer",
    "RandomStreams",
]
