"""Cancellable, re-armable timers on top of the event loop.

TCP's retransmission timer and the link layer's ARQ timers both need
the same primitive: arm for a delay, possibly re-arm before expiry
(cancelling the previous deadline), and fire a callback on expiry.
The EBSN mechanism is literally "re-arm the rtx timer at the current
timeout", so this class is load-bearing for the paper's contribution.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.simulator import Event, Simulator


class Timer:
    """A single-shot timer that can be restarted or cancelled.

    >>> sim = Simulator()
    >>> fired = []
    >>> t = Timer(sim, lambda: fired.append(sim.now))
    >>> t.start(2.0)
    >>> t.restart(5.0)   # supersedes the 2.0 deadline
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "") -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self.name = name
        self.expiry_count = 0

    @property
    def pending(self) -> bool:
        """True while armed and not yet expired."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry_time(self) -> Optional[float]:
        """Absolute time the timer will fire, or ``None`` if idle."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm the timer.  Raises if already pending (use restart)."""
        if self.pending:
            raise RuntimeError(f"timer {self.name!r} already pending")
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Arm the timer for ``delay`` from now, cancelling any pending deadline."""
        event = self._event
        if event is not None:
            event.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm.  A no-op if the timer is idle."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.expiry_count += 1
        self._callback()
