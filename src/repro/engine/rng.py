"""Named deterministic random streams.

Every stochastic component of a simulation (the wireless channel, ARQ
backoff, ...) pulls from its own substream, derived from a master seed
and the component's name.  Components therefore cannot perturb each
other's sequences: adding a new random consumer to a simulation leaves
existing components' draws unchanged, which keeps regression baselines
stable and makes per-figure results reproducible across runs.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory for named, independent :class:`random.Random` substreams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("channel")
    >>> b = streams.stream("backoff")
    >>> a is streams.stream("channel")   # same name, same stream
    True
    >>> RandomStreams(7).stream("channel").random() == a.random()
    False
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, salt: str) -> "RandomStreams":
        """A new factory whose streams are independent of this one's.

        Used by replicated experiment runs: ``fork(f"rep{i}")`` gives
        replication *i* its own universe of substreams.
        """
        return RandomStreams(self._derive(f"fork:{salt}"))
