"""Event loop for discrete-event simulation.

Time is a float in seconds.  Events scheduled for the same instant are
executed in scheduling order (a monotonically increasing sequence
number breaks ties), which makes runs fully deterministic given
deterministic callbacks.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class WallClockExceeded(SimulationError):
    """A run overshot its wall-clock budget (a hung/runaway simulation).

    Raised cooperatively by :meth:`Simulator.run` between events when a
    ``wall_timeout`` was given.  The fault-tolerant campaign layer maps
    this to a structured ``timeout`` fault; standalone callers get a
    clear exception instead of an indefinite hang.
    """

    def __init__(self, elapsed: float, budget: float, events: int) -> None:
        super().__init__(
            f"simulation exceeded its wall-clock budget: {elapsed:.2f}s "
            f"elapsed (budget {budget:g}s) after {events} events"
        )
        self.elapsed = elapsed
        self.budget = budget
        self.events = events


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code holds on to the returned
    object only to :meth:`cancel` it.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in the owning simulator's
        # heap; cleared on pop so the cancelled-in-heap accounting stays
        # exact.  None for events constructed outside a simulator.
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the loop skips it.

        Cancellation is lazy: the heap entry stays in place and is
        discarded when popped — but the owning simulator counts dead
        entries and compacts the heap when they outnumber live ones.
        Cancelling an already-executed or already-cancelled event is a
        no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Binary-heap discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: Don't bother compacting heaps smaller than this: the rebuild
    #: bookkeeping would dominate the bisect savings.
    COMPACT_MIN_HEAP = 64

    #: Events between wall-clock watchdog checks.  Checking the OS
    #: clock every event would cost more than the event dispatch; at
    #: this stride the overhead is unmeasurable while a runaway run is
    #: still caught within milliseconds of its deadline.
    WATCHDOG_STRIDE = 2048

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: Cancelled events still sitting in the heap (lazy deletion).
        self._cancelled_count: int = 0
        self.events_executed: int = 0
        self.heap_compactions: int = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(time, self._seq, callback, args, sim=self)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        """Account one in-heap cancellation; compact when dead > live.

        Lazy deletion leaks in retransmission-heavy runs (every
        restarted RTO/ARQ timer leaves a corpse in the heap); rebuilding
        once cancelled entries outnumber live ones keeps total
        compaction work linear in the number of cancellations while
        :meth:`peek`/:meth:`step` never churn through long dead runs.
        """
        self._cancelled_count += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_HEAP
            and self._cancelled_count * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        live = []
        for event in self._heap:
            if event.cancelled:
                event._sim = None
            else:
                live.append(event)
        self._heap = live
        heapq.heapify(self._heap)
        self._cancelled_count = 0
        self.heap_compactions += 1

    def stop(self) -> None:
        """Stop the run loop after the currently executing event."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._sim = None
            self._cancelled_count -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._sim = None
            if event.cancelled:
                self._cancelled_count -= 1
                continue
            self._now = event.time
            self.events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wall_timeout: Optional[float] = None,
    ) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        ``until`` is inclusive: events at exactly that time execute, and
        the clock is advanced to ``until`` when the limit is hit with
        events still pending.  ``max_events`` bounds the number of
        callbacks executed in this call (a runaway-loop guard for
        tests).  ``wall_timeout`` is a *real-time* watchdog: when the
        call has run longer than that many wall-clock seconds, it
        aborts with :class:`WallClockExceeded` (checked every
        ``WATCHDOG_STRIDE`` events, so the run stays bit-identical to
        an unwatched one right up to the abort).
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        executed = 0
        deadline = (
            time.monotonic() + wall_timeout if wall_timeout is not None else None
        )
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                if (
                    deadline is not None
                    and executed % self.WATCHDOG_STRIDE == 0
                    and executed
                    and time.monotonic() > deadline
                ):
                    raise WallClockExceeded(
                        time.monotonic() - (deadline - wall_timeout),
                        wall_timeout,
                        executed,
                    )
                next_time = self.peek()
                if next_time is None:
                    if until is not None and self._now < until:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still scheduled.

        O(1): the heap length minus the lazily-deleted corpse count,
        both maintained incrementally.
        """
        return len(self._heap) - self._cancelled_count
