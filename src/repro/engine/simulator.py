"""Event loop for discrete-event simulation.

Time is a float in seconds.  Events scheduled for the same instant are
executed in scheduling order (a monotonically increasing sequence
number breaks ties), which makes runs fully deterministic given
deterministic callbacks.
"""

from __future__ import annotations

import heapq
import math
import sys
import time
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class WallClockExceeded(SimulationError):
    """A run overshot its wall-clock budget (a hung/runaway simulation).

    Raised cooperatively by :meth:`Simulator.run` between events when a
    ``wall_timeout`` was given.  The fault-tolerant campaign layer maps
    this to a structured ``timeout`` fault; standalone callers get a
    clear exception instead of an indefinite hang.
    """

    def __init__(self, elapsed: float, budget: float, events: int) -> None:
        super().__init__(
            f"simulation exceeded its wall-clock budget: {elapsed:.2f}s "
            f"elapsed (budget {budget:g}s) after {events} events"
        )
        self.elapsed = elapsed
        self.budget = budget
        self.events = events


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code holds on to the returned
    object only to :meth:`cancel` it.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in the owning simulator's
        # heap; cleared on pop so the cancelled-in-heap accounting stays
        # exact.  None for events constructed outside a simulator.
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the loop skips it.

        Cancellation is lazy: the heap entry stays in place and is
        discarded when popped — but the owning simulator counts dead
        entries and compacts the heap when they outnumber live ones.
        Cancelling an already-executed or already-cancelled event is a
        no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            # Inlined Simulator._note_cancelled (timer-heavy runs
            # cancel constantly): account the corpse, compact when dead
            # entries outnumber live ones.
            sim._cancelled_count += 1
            heap_len = len(sim._heap)
            if (
                heap_len >= sim.COMPACT_MIN_HEAP
                and sim._cancelled_count * 2 > heap_len
            ):
                sim._compact()

    def __lt__(self, other: "Event") -> bool:
        # time-then-seq without building two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Binary-heap discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: Don't bother compacting heaps smaller than this: the rebuild
    #: bookkeeping would dominate the bisect savings.
    COMPACT_MIN_HEAP = 64

    #: Events between wall-clock watchdog checks.  Checking the OS
    #: clock every event would cost more than the event dispatch; at
    #: this stride the overhead is unmeasurable while a runaway run is
    #: still caught within milliseconds of its deadline.
    WATCHDOG_STRIDE = 2048

    def __init__(self) -> None:
        # Heap entries are (time, seq, event) tuples: heap sift
        # comparisons stay in C (tuple < tuple never reaches a Python
        # __lt__ because seq is unique) instead of calling
        # Event.__lt__ O(n log n) times per run.
        self._heap: list[tuple[float, int, Event]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: Cancelled events still sitting in the heap (lazy deletion).
        self._cancelled_count: int = 0
        self.events_executed: int = 0
        self.heap_compactions: int = 0
        #: Perf counters (observability only — never consulted by the
        #: run loop, so they cannot perturb results).
        self.heap_pushes: int = 0
        self.run_wall_seconds: float = 0.0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        # Inline-constructed Event (bypassing __init__) — this is the
        # hottest allocation in the whole simulator.
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._heap, (time, seq, event))
        self.heap_pushes += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._heap, (time, seq, event))
        self.heap_pushes += 1
        return event

    def _note_cancelled(self) -> None:
        """Account one in-heap cancellation; compact when dead > live.

        Lazy deletion leaks in retransmission-heavy runs (every
        restarted RTO/ARQ timer leaves a corpse in the heap); rebuilding
        once cancelled entries outnumber live ones keeps total
        compaction work linear in the number of cancellations while
        :meth:`peek`/:meth:`step` never churn through long dead runs.
        """
        self._cancelled_count += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_HEAP
            and self._cancelled_count * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        Rebuilds in place (slice assignment) rather than rebinding
        ``self._heap``, so the run loop's local alias to the heap list
        stays valid across a compaction triggered mid-callback.
        """
        live = []
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2]._sim = None
            else:
                live.append(entry)
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._cancelled_count = 0
        self.heap_compactions += 1

    def stop(self) -> None:
        """Stop the run loop after the currently executing event."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2]._sim = None
            self._cancelled_count -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            event._sim = None
            if event.cancelled:
                self._cancelled_count -= 1
                continue
            self._now = event.time
            self.events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wall_timeout: Optional[float] = None,
    ) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        ``until`` is inclusive: events at exactly that time execute, and
        the clock is advanced to ``until`` when the limit is hit with
        events still pending.  ``max_events`` bounds the number of
        callbacks executed in this call (a runaway-loop guard for
        tests).  ``wall_timeout`` is a *real-time* watchdog: when the
        call has run longer than that many wall-clock seconds, it
        aborts with :class:`WallClockExceeded` (checked every
        ``WATCHDOG_STRIDE`` events, so the run stays bit-identical to
        an unwatched one right up to the abort).
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        executed = 0
        monotonic = time.monotonic
        deadline = monotonic() + wall_timeout if wall_timeout is not None else None
        # Watchdog countdown: reloads at WATCHDOG_STRIDE so the clock is
        # checked exactly when `executed` hits a positive stride multiple
        # (identical abort points to the old modulo check, without the
        # per-event modulo).  -1 disables the branch body when unwatched.
        countdown = self.WATCHDOG_STRIDE if deadline is not None else -1
        # Local aliases for the hot loop.  `heap` stays valid across
        # callbacks because _compact() rebuilds it in place and
        # schedule()/schedule_at() push into the same list object.
        heap = self._heap
        pop = heapq.heappop
        # Sentinels fold the per-iteration None checks into plain
        # comparisons (simulation times are finite, so `> inf` and
        # `>= maxsize` are never taken when no limit was given).
        event_limit = sys.maxsize if max_events is None else max_events
        time_limit = math.inf if until is None else until
        start_wall = monotonic()
        try:
            while not self._stopped:
                if executed >= event_limit:
                    break
                if countdown >= 0:
                    if countdown == 0:
                        countdown = self.WATCHDOG_STRIDE - 1
                        if monotonic() > deadline:
                            raise WallClockExceeded(
                                monotonic() - (deadline - wall_timeout),
                                wall_timeout,
                                executed,
                            )
                    else:
                        countdown -= 1
                # Inlined peek(): discard cancelled corpses at the head.
                while heap and heap[0][2].cancelled:
                    pop(heap)[2]._sim = None
                    self._cancelled_count -= 1
                if not heap:
                    if until is not None and self._now < until:
                        self._now = until
                    break
                head = heap[0]
                if head[0] > time_limit:
                    self._now = until
                    break
                # Inlined step(): the head is known live, pop-and-dispatch.
                pop(heap)
                event = head[2]
                event._sim = None
                self._now = head[0]
                event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
            self.events_executed += executed
            self.run_wall_seconds += monotonic() - start_wall

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still scheduled.

        O(1): the heap length minus the lazily-deleted corpse count,
        both maintained incrementally.
        """
        return len(self._heap) - self._cancelled_count

    def events_per_sec(self) -> float:
        """Dispatch throughput over all :meth:`run` calls so far.

        0.0 until the first run() completes (or if the wall time was
        too short to measure).
        """
        if self.run_wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.run_wall_seconds

    def perf_counters(self) -> dict:
        """Snapshot of the per-run performance counters.

        Pure observability: reading these never changes simulation
        behaviour, and the loop never branches on them.
        """
        return {
            "events_executed": self.events_executed,
            "heap_pushes": self.heap_pushes,
            "heap_compactions": self.heap_compactions,
            "run_wall_seconds": self.run_wall_seconds,
            "events_per_sec": self.events_per_sec(),
        }
