"""The paper's contributions.

* :mod:`repro.core.ebsn` — Explicit Bad State Notification: the base
  station tells the TCP source the wireless link is in a bad state
  after every failed link-level attempt; the source re-arms its
  retransmission timer at the current timeout, preventing spurious
  timeouts during local recovery (§4.2.3).
* :mod:`repro.core.quench` — ICMP Source Quench feedback, the §4.2.2
  negative result: it throttles new packets but cannot save packets
  already in flight from timing out.
* :mod:`repro.core.packet_size` — the §4.1 result: pick a "good"
  wired packet size per wireless error condition from a fixed table at
  the base station.
* :mod:`repro.core.snoop` — a snoop-style transport-aware agent at
  the base station (the Balakrishnan et al. baseline of §2), used by
  the comparison benchmarks.
* :mod:`repro.core.split` — an I-TCP style split connection (the
  Bakre & Badrinath baseline of §2): two back-to-back TCP connections
  meeting at the base station.
"""

from repro.core.ebsn import EbsnGenerator, install_ebsn_handler
from repro.core.quench import QuenchGenerator, install_quench_handler
from repro.core.packet_size import ErrorCondition, PacketSizeAdvisor
from repro.core.snoop import SnoopAgent
from repro.core.split import SplitRelay, StreamSender

__all__ = [
    "EbsnGenerator",
    "install_ebsn_handler",
    "QuenchGenerator",
    "install_quench_handler",
    "ErrorCondition",
    "PacketSizeAdvisor",
    "SnoopAgent",
    "SplitRelay",
    "StreamSender",
]
