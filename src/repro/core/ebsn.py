"""Explicit Bad State Notification (EBSN) — the paper's contribution.

Two halves, exactly as in §4.2.3 and the Appendix:

* **Base station side** (:class:`EbsnGenerator`): hangs off the
  wireless port's feedback hooks.  After *every* unsuccessful
  link-level attempt to transmit a TCP data packet to the mobile host,
  it sends an ICMP-like EBSN message to that packet's source over the
  wired network.  No per-connection state is kept — the trigger is the
  failed frame itself, and the destination is read off the frame's own
  datagram header.

* **Source side** (:func:`install_ebsn_handler`): on receipt of an
  EBSN, the source cancels its pending retransmission timer and arms a
  fresh one *at the current timeout value* (computed from the existing
  RTT/variance estimate, including any backoff in force).  Nothing
  else changes: no window action, no RTT sample, so the estimator is
  not polluted by bad-state delays.  The paper's pseudocode:

  .. code-block:: none

      tcp_recv() {
          if EBSN received { set_rtx_timer(); return; }
          /* other packet processing */
      }
"""

from __future__ import annotations

from typing import Optional

from repro.engine import Simulator, Timer
from repro.linklayer.port import FeedbackHooks
from repro.net.node import Node
from repro.net.packet import (
    ICMP_PACKET_BYTES,
    Datagram,
    Fragment,
    IcmpMessage,
    IcmpType,
    PacketType,
    TcpSegment,
)
from repro.tcp.tahoe import TahoeSender


class EbsnGenerator(FeedbackHooks):
    """Base-station feedback hook that emits EBSN messages.

    Attach as the ``feedback`` of the base station's wireless port
    (the BS→MH direction).  Only failed *TCP data* frames trigger an
    EBSN — the notification is meant for the TCP source; failed
    control traffic has no one to notify.
    """

    def __init__(
        self,
        node: Node,
        max_notifications: Optional[int] = None,
        sim: Optional[Simulator] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if heartbeat_interval is not None:
            if sim is None:
                raise ValueError("heartbeat needs the simulator for its timer")
            if heartbeat_interval <= 0:
                raise ValueError("heartbeat_interval must be positive")
        self._node = node
        #: Optional cap on total EBSNs (for ablations); None = unlimited.
        self.max_notifications = max_notifications
        #: Optional heartbeat: while the link is failing, keep sending
        #: EBSNs every ``heartbeat_interval`` seconds *between* ARQ
        #: attempts.  The per-attempt EBSN suffices when the source's
        #: RTO exceeds the ARQ retry cycle (the paper's bulk-transfer
        #: regime); interactive sources with millisecond RTTs have RTOs
        #: at the clock-granularity floor, below the retry cycle, and
        #: need the denser notification stream.
        self.heartbeat_interval = heartbeat_interval
        self._heartbeat_timer = (
            Timer(sim, self._heartbeat, name="ebsn-heartbeat")
            if heartbeat_interval is not None
            else None
        )
        self._last_source: Optional[str] = None
        self._last_seq: Optional[int] = None
        self.ebsn_sent = 0
        self.ebsn_suppressed = 0
        self.heartbeats_sent = 0

    def on_attempt_failed(self, fragment: Fragment, attempt: int) -> None:
        """Send one EBSN to the failed data packet's source."""
        datagram = fragment.datagram
        if datagram.packet_type is not PacketType.DATA:
            return
        payload = datagram.payload
        about_seq = payload.seq if isinstance(payload, TcpSegment) else None
        self._last_source = datagram.src
        self._last_seq = about_seq
        self._emit(datagram.src, about_seq)
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.restart(self.heartbeat_interval)

    def on_recovered(self) -> None:
        """Stop the heartbeat: frames are crossing again."""
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()

    def _heartbeat(self) -> None:
        if self._last_source is None:
            return
        self.heartbeats_sent += 1
        self._emit(self._last_source, self._last_seq)
        assert self._heartbeat_timer is not None
        self._heartbeat_timer.restart(self.heartbeat_interval)

    def _emit(self, dst: str, about_seq: Optional[int]) -> None:
        if (
            self.max_notifications is not None
            and self.ebsn_sent >= self.max_notifications
        ):
            self.ebsn_suppressed += 1
            return
        ebsn = Datagram(
            src=self._node.name,
            dst=dst,
            payload=IcmpMessage(IcmpType.EBSN, about_seq=about_seq),
            size_bytes=ICMP_PACKET_BYTES,
        )
        self.ebsn_sent += 1
        self._node.send(ebsn)


def install_ebsn_handler(sender: TahoeSender) -> None:
    """Make a TCP source respond to EBSN by re-arming its rtx timer.

    This is the minimal source-side change the paper's Appendix shows;
    non-EBSN ICMP messages are left to any previously installed
    handler (so EBSN and quench handling can coexist for the
    interaction ablation).
    """
    previous = sender.icmp_handler

    def handler(snd: TahoeSender, message: IcmpMessage) -> None:
        if message.icmp_type is IcmpType.EBSN:
            snd.stats.ebsn_received += 1
            snd.rearm_rtx_timer()
            return
        if previous is not None:
            previous(snd, message)

    sender.icmp_handler = handler
