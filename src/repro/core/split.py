"""Split-connection (I-TCP style) baseline — the §2 approach.

Bakre & Badrinath's I-TCP and Yavatkar & Bhagwat's approach split the
FH↔MH connection at the base station into two independent TCP
connections: FH↔BS over the wired network and BS↔MH over the wireless
hop.  The base station acknowledges data to the fixed host as soon as
it arrives — *before* the mobile host has it — which is the paper's
end-to-end-semantics criticism, and it must hold per-connection state
(the relay buffer, a whole second TCP sender) — the paper's state-
maintenance criticism.

:class:`StreamSender` is a Tahoe sender fed incrementally by a relay
instead of having a fixed transfer size.  :class:`SplitRelay` is the
base-station half: the wired-side receiver (acks toward the fixed
host) glued to the wireless-side :class:`StreamSender`.
"""

from __future__ import annotations

from typing import Optional

from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import (
    ACK_PACKET_BYTES,
    Address,
    Datagram,
    TcpAck,
    TcpSegment,
)
from repro.tcp.tahoe import TahoeSender, TcpConfig


class StreamSender(TahoeSender):
    """A Tahoe sender over an incrementally fed byte stream.

    ``push_payload`` appends bytes; ``close`` marks the end of the
    stream.  Only whole segments are transmitted until the stream is
    closed (the tail may then be a short segment), mirroring how a
    relay drains its buffer.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.transfer_bytes = 0
        self.total_segments = 0
        self.closed = False
        self.bytes_pushed = 0

    def push_payload(self, nbytes: int) -> None:
        """Feed ``nbytes`` more user data into the stream."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        if self.closed:
            raise RuntimeError("cannot push into a closed stream")
        self.bytes_pushed += nbytes
        self._recompute_totals()
        if self.stats.started_at is not None:
            self._send_pending()

    def close(self) -> None:
        """No more data will arrive; flush the partial tail segment."""
        self.closed = True
        self._recompute_totals()
        if self.stats.started_at is not None:
            if self._transfer_finished():
                self._complete()
            else:
                self._send_pending()

    def _recompute_totals(self) -> None:
        self.transfer_bytes = self.bytes_pushed
        payload = self.config.segment_payload
        if self.closed:
            self.total_segments = -(-self.bytes_pushed // payload)
        else:
            self.total_segments = self.bytes_pushed // payload

    def _transfer_finished(self) -> bool:
        return self.closed and self.snd_una >= self.total_segments


class SplitRelay:
    """The base-station half of a split connection.

    Wired side: behaves as the fixed host's receiver — cumulative ACKs
    are returned immediately (the end-to-end violation).  Wireless
    side: a fresh Tahoe connection from the BS to the mobile host,
    optionally with its own packet size (a split connection may pick a
    wireless-friendly segment size independent of the wired one).
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        wired_peer: Address = "FH",
        mobile: Address = "MH",
        wireless_packet_size: int = 576,
        window_bytes: int = 4096,
        transfer_bytes: Optional[int] = None,
        clock_granularity: float = 0.1,
    ) -> None:
        self._sim = sim
        self._node = node
        self.wired_peer = wired_peer
        self.mobile = mobile
        #: Total bytes expected from the wired side (close the wireless
        #: stream when they have all arrived); None = never closes.
        self.transfer_bytes = transfer_bytes

        self.wireless_sender = StreamSender(
            sim,
            node,
            mobile,
            config=TcpConfig(
                packet_size=wireless_packet_size,
                window_bytes=window_bytes,
                transfer_bytes=1,  # placeholder; StreamSender resets totals
                clock_granularity=clock_granularity,
            ),
        )
        self.wireless_sender.start()

        # Wired-side receiver state (segment-numbered, like TcpSink).
        self.next_expected = 0
        self._buffered_sizes: dict[int, int] = {}
        self.bytes_accepted = 0
        self.acks_sent = 0
        self.buffer_occupancy_peak = 0

    # -- wired side -----------------------------------------------------

    def on_wired_data(self, datagram: Datagram) -> None:
        """A data packet from the fixed host arrived at the BS."""
        segment = datagram.payload
        if not isinstance(segment, TcpSegment):
            raise TypeError(f"relay got non-data payload {segment!r}")
        seq = segment.seq
        if seq == self.next_expected:
            self._accept(segment.payload_bytes)
            self.next_expected += 1
            while self.next_expected in self._buffered_sizes:
                self._accept(self._buffered_sizes.pop(self.next_expected))
                self.next_expected += 1
        elif seq > self.next_expected:
            self._buffered_sizes.setdefault(seq, segment.payload_bytes)
        self._ack_wired()

    def _accept(self, payload_bytes: int) -> None:
        self.bytes_accepted += payload_bytes
        self.wireless_sender.push_payload(payload_bytes)
        backlog = self.bytes_accepted - self._wireless_acked_bytes()
        self.buffer_occupancy_peak = max(self.buffer_occupancy_peak, backlog)
        if (
            self.transfer_bytes is not None
            and self.bytes_accepted >= self.transfer_bytes
            and not self.wireless_sender.closed
        ):
            self.wireless_sender.close()

    def _wireless_acked_bytes(self) -> int:
        payload = self.wireless_sender.config.segment_payload
        return min(
            self.wireless_sender.snd_una * payload, self.wireless_sender.bytes_pushed
        )

    def _ack_wired(self) -> None:
        ack = Datagram(
            src=self._node.name,
            dst=self.wired_peer,
            payload=TcpAck(ack_seq=self.next_expected),
            size_bytes=ACK_PACKET_BYTES,
        )
        self.acks_sent += 1
        self._node.send(ack)

    # -- wireless side ---------------------------------------------------

    def on_wireless_ack(self, datagram: Datagram) -> None:
        """An ACK from the mobile host for the BS↔MH connection."""
        self.wireless_sender.receive(datagram)

    def receive(self, datagram: Datagram) -> None:
        """Agent entry point: dispatch by payload type."""
        if isinstance(datagram.payload, TcpSegment):
            self.on_wired_data(datagram)
        elif isinstance(datagram.payload, TcpAck):
            self.on_wireless_ack(datagram)
        else:
            # ICMP addressed to the BS itself — nothing to do.
            pass
