"""ICMP Source Quench feedback — the paper's §4.2.2 negative result.

The base station can be configured as a gateway that sends RFC 792
source-quench messages when packets pile up for the wireless link (or
when it anticipates drops).  The TCP source reacts per RFC 1122
§4.2.3.9: trigger slow start as if a retransmission timeout had
occurred — shrink the window — but, crucially, *nothing touches the
retransmission timer*.  Packets already in flight when the link went
bad still time out, which is why the paper found quench unable to
deliver the improvement EBSN does.
"""

from __future__ import annotations

from repro.engine import Simulator
from repro.linklayer.port import FeedbackHooks
from repro.net.node import Node
from repro.net.packet import (
    ICMP_PACKET_BYTES,
    Datagram,
    Fragment,
    IcmpMessage,
    IcmpType,
    PacketType,
    TcpSegment,
)
from repro.tcp.tahoe import TahoeSender


class QuenchGenerator(FeedbackHooks):
    """Base-station hook that emits source-quench messages.

    Two triggers, both from the paper's discussion:

    * the transmit queue for the wireless link exceeds
      ``queue_threshold`` frames (anticipatory congestion signal);
    * a link-level attempt failed (the link is visibly struggling).

    Quenches are rate-limited to one per ``min_interval`` seconds per
    source — RFC-era gateways did the same to avoid quench storms.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        queue_threshold: int = 8,
        min_interval: float = 0.5,
    ) -> None:
        if queue_threshold < 1:
            raise ValueError(f"queue_threshold must be >= 1, got {queue_threshold}")
        if min_interval < 0:
            raise ValueError(f"min_interval must be >= 0, got {min_interval}")
        self._sim = sim
        self._node = node
        self.queue_threshold = queue_threshold
        self.min_interval = min_interval
        self.quench_sent = 0
        self.quench_suppressed = 0
        self._last_sent: dict[str, float] = {}
        self._last_data_source: str | None = None

    def on_attempt_failed(self, fragment: Fragment, attempt: int) -> None:
        """Quench the source of a data packet the link is struggling with."""
        datagram = fragment.datagram
        if datagram.packet_type is PacketType.DATA:
            self._quench(datagram.src, datagram)

    def on_queue_depth(self, depth: int) -> None:
        """Anticipatory quench when the transmit queue builds up."""
        if depth > self.queue_threshold and self._last_data_source is not None:
            self._quench(self._last_data_source, None)

    def note_data_source(self, src: str) -> None:
        """Remember the source feeding the wireless queue (for depth-triggered quench)."""
        self._last_data_source = src

    def _quench(self, dst: str, datagram: Datagram | None) -> None:
        last = self._last_sent.get(dst)
        if last is not None and self._sim.now - last < self.min_interval:
            self.quench_suppressed += 1
            return
        about_seq = None
        if datagram is not None and isinstance(datagram.payload, TcpSegment):
            about_seq = datagram.payload.seq
        quench = Datagram(
            src=self._node.name,
            dst=dst,
            payload=IcmpMessage(IcmpType.SOURCE_QUENCH, about_seq=about_seq),
            size_bytes=ICMP_PACKET_BYTES,
        )
        self._last_sent[dst] = self._sim.now
        self.quench_sent += 1
        self._node.send(quench)


def install_quench_handler(sender: TahoeSender) -> None:
    """Make a TCP source react to source quench per RFC 1122.

    ssthresh ← max(2, flight/2), cwnd ← 1 (slow start as if a timeout
    had occurred), but no retransmission and — the point of §4.2.2 —
    no retransmission-timer change.
    """
    previous = sender.icmp_handler

    def handler(snd: TahoeSender, message: IcmpMessage) -> None:
        if message.icmp_type is IcmpType.SOURCE_QUENCH:
            snd.stats.quench_received += 1
            flight = max(snd.outstanding, 1)
            snd.ssthresh = max(2.0, min(snd.cwnd, float(flight)) / 2.0)
            snd.cwnd = 1.0
            return
        if previous is not None:
            previous(snd, message)

    sender.icmp_handler = handler
