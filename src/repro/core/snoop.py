"""A snoop-style transport-aware agent at the base station.

This is the Balakrishnan et al. baseline the paper compares against in
§2: the base station caches TCP data packets heading to the mobile
host and performs *local* retransmissions when duplicate ACKs or a
local timer reveal a wireless loss, suppressing the duplicate ACKs so
the source never notices.  Unlike EBSN it keeps per-connection state
at the base station, and — the paper's criticism — the source can
still time out while snoop is retransmitting, and bursty losses (no
ACK flow at all) defeat dupack-driven recovery.

The implementation is deliberately faithful to that failure mode: it
recovers quickly from isolated losses but has only its local timer
during a deep fade.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.engine import Simulator, Timer
from repro.net.packet import Datagram, TcpAck, TcpSegment


class SnoopAgent:
    """Per-connection snoop cache and local-retransmission engine.

    Wire it between the base station's wired input and its wireless
    port:

    * TCP data datagrams from the fixed host pass through
      :meth:`on_wired_data` (cached, then forwarded via
      ``send_wireless``);
    * TCP ACK datagrams from the mobile host pass through
      :meth:`on_wireless_ack` (snooped; duplicates may be suppressed;
      new ACKs forwarded via ``send_wired``).
    """

    def __init__(
        self,
        sim: Simulator,
        send_wireless: Callable[[Datagram], None],
        send_wired: Callable[[Datagram], None],
        local_timeout: float = 0.6,
        dupack_threshold: int = 1,
        max_local_retx: int = 10,
    ) -> None:
        if local_timeout <= 0:
            raise ValueError("local_timeout must be positive")
        if dupack_threshold < 1:
            raise ValueError("dupack_threshold must be >= 1")
        self._sim = sim
        self._send_wireless = send_wireless
        self._send_wired = send_wired
        self.local_timeout = local_timeout
        self.dupack_threshold = dupack_threshold
        self.max_local_retx = max_local_retx

        self._cache: Dict[int, Datagram] = {}
        self._retx_count: Dict[int, int] = {}
        self._last_ack: Optional[int] = None
        self._dupacks = 0
        self._timer = Timer(sim, self._on_local_timeout, name="snoop")

        self.data_cached = 0
        self.local_retransmissions = 0
        self.dupacks_suppressed = 0
        self.cache_evictions = 0

    # ------------------------------------------------------------------

    def on_wired_data(self, datagram: Datagram) -> None:
        """Cache and forward a data packet heading for the mobile host."""
        payload = datagram.payload
        if isinstance(payload, TcpSegment):
            self._cache[payload.seq] = datagram
            self._retx_count.setdefault(payload.seq, 0)
            self.data_cached += 1
            if not self._timer.pending:
                self._timer.start(self.local_timeout)
        self._send_wireless(datagram)

    def on_wireless_ack(self, datagram: Datagram) -> None:
        """Snoop an ACK from the mobile host; maybe suppress it."""
        payload = datagram.payload
        if not isinstance(payload, TcpAck):
            self._send_wired(datagram)
            return
        ack = payload.ack_seq
        if self._last_ack is None or ack > self._last_ack:
            self._last_ack = ack
            self._dupacks = 0
            self._clean_below(ack)
            self._rearm_timer()
            self._send_wired(datagram)
            return
        # Duplicate ACK: the segment `ack` is missing at the receiver.
        self._dupacks += 1
        cached = self._cache.get(ack)
        if cached is not None and self._dupacks >= self.dupack_threshold:
            self._local_retransmit(ack)
            self.dupacks_suppressed += 1
            return  # suppressed — the source never sees it
        self._send_wired(datagram)

    # ------------------------------------------------------------------

    @property
    def cached_segments(self) -> int:
        return len(self._cache)

    def _clean_below(self, ack: int) -> None:
        for seq in [s for s in self._cache if s < ack]:
            del self._cache[seq]
            self._retx_count.pop(seq, None)
            self.cache_evictions += 1

    def _rearm_timer(self) -> None:
        if self._cache:
            self._timer.restart(self.local_timeout)
        else:
            self._timer.cancel()

    def _local_retransmit(self, seq: int) -> None:
        datagram = self._cache.get(seq)
        if datagram is None:
            return
        if self._retx_count.get(seq, 0) >= self.max_local_retx:
            return
        self._retx_count[seq] = self._retx_count.get(seq, 0) + 1
        self.local_retransmissions += 1
        self._send_wireless(datagram)
        self._rearm_timer()

    def _on_local_timeout(self) -> None:
        if not self._cache:
            return
        self._local_retransmit(min(self._cache))
        self._timer.restart(self.local_timeout)
