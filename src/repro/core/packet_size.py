"""Packet-size selection — the paper's §4.1 proposal.

The optimal wired packet size depends on the wireless error condition:
small packets waste header overhead, large packets fragment into many
MTUs and one lost fragment costs the whole packet.  The paper proposes
"maintaining a fixed table at each base station which maps a
particular wireless link error characteristic to the 'good' packet
size for that error characteristic."

:class:`PacketSizeAdvisor` is that table.  It can be populated from
sweep results (see :mod:`repro.experiments`) or used with the
analytic first-cut model below, which captures the trade-off the
paper measures: expected useful throughput of a P-byte packet that
must cross ``ceil(P / MTU)`` fragments each surviving the channel
independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class ErrorCondition:
    """A wireless-link error characteristic the table is keyed by."""

    good_period_mean: float
    bad_period_mean: float
    ber_good: float = 1e-6
    ber_bad: float = 1e-2

    def __post_init__(self) -> None:
        if self.good_period_mean <= 0 or self.bad_period_mean <= 0:
            raise ValueError("period means must be positive")

    @property
    def bad_fraction(self) -> float:
        """Steady-state fraction of time the link is in the bad state."""
        return self.bad_period_mean / (self.good_period_mean + self.bad_period_mean)


class PacketSizeAdvisor:
    """The base station's fixed error-condition → packet-size table.

    >>> advisor = PacketSizeAdvisor(mtu_bytes=128)
    >>> cond = ErrorCondition(good_period_mean=10.0, bad_period_mean=1.0)
    >>> advisor.learn(cond, best_packet_size=512)
    >>> advisor.recommend(cond)
    512
    """

    def __init__(
        self,
        mtu_bytes: int = 128,
        header_bytes: int = 40,
        overhead_factor: float = 1.5,
        candidate_sizes: Optional[Iterable[int]] = None,
    ) -> None:
        if mtu_bytes <= 0:
            raise ValueError("MTU must be positive")
        if header_bytes < 0:
            raise ValueError("header bytes must be >= 0")
        self.mtu_bytes = mtu_bytes
        self.header_bytes = header_bytes
        self.overhead_factor = overhead_factor
        self.candidate_sizes: List[int] = sorted(
            candidate_sizes
            if candidate_sizes is not None
            else [128, 256, 384, 512, 640, 768, 1024, 1280, 1536]
        )
        self._table: Dict[ErrorCondition, int] = {}

    # -- table management (the paper's mechanism) -----------------------

    def learn(self, condition: ErrorCondition, best_packet_size: int) -> None:
        """Record a measured best packet size for an error condition."""
        if best_packet_size <= self.header_bytes:
            raise ValueError(
                f"packet size {best_packet_size} leaves no payload after header"
            )
        self._table[condition] = best_packet_size

    def recommend(self, condition: ErrorCondition) -> int:
        """Best known packet size for ``condition``.

        Exact table hit first; otherwise the nearest learned condition
        (by bad-state fraction); otherwise the analytic estimate.
        """
        if condition in self._table:
            return self._table[condition]
        if self._table:
            nearest = min(
                self._table,
                key=lambda c: abs(c.bad_fraction - condition.bad_fraction),
            )
            return self._table[nearest]
        return self.analytic_best(condition)

    @property
    def table(self) -> Dict[ErrorCondition, int]:
        """A copy of the learned table."""
        return dict(self._table)

    def populate_from_sweeps(
        self,
        conditions: Iterable[ErrorCondition],
        replications: int = 5,
        transfer_bytes: int = 50 * 1024,
        base_seed: int = 1,
    ) -> None:
        """Learn the table by running the §4.1 sweep per condition.

        This is how a base station operator would actually build the
        paper's fixed table: simulate (or measure) each error
        condition across the candidate sizes and record the winner.
        """
        from repro.experiments.config import wan_scenario
        from repro.experiments.runner import run_replicated
        from repro.experiments.topology import Scheme

        for condition in conditions:
            best_size, best_tput = None, -1.0
            for size in self.candidate_sizes:
                result = run_replicated(
                    wan_scenario(
                        scheme=Scheme.BASIC,
                        packet_size=size,
                        bad_period_mean=condition.bad_period_mean,
                        good_period_mean=condition.good_period_mean,
                        transfer_bytes=transfer_bytes,
                        record_trace=False,
                    ),
                    replications=replications,
                    base_seed=base_seed,
                )
                if result.throughput_bps_mean > best_tput:
                    best_tput = result.throughput_bps_mean
                    best_size = size
            assert best_size is not None
            self.learn(condition, best_size)

    # -- analytic first-cut model ---------------------------------------

    def fragment_count(self, packet_size: int) -> int:
        """Fragments a packet of this size produces on the wireless hop."""
        return -(-packet_size // self.mtu_bytes)

    def expected_efficiency(self, condition: ErrorCondition, packet_size: int) -> float:
        """Expected useful-payload efficiency of one packet.

        Approximates the channel as i.i.d. per fragment: a fragment of
        ``s`` bytes is on air for ``s · overhead`` bytes and survives
        with probability
        ``(1-ber)^bits`` averaged over the good/bad time split.  The
        packet delivers its payload only if *all* fragments survive;
        efficiency is payload per on-air byte times that probability.
        """
        if packet_size <= self.header_bytes:
            return 0.0
        count = self.fragment_count(packet_size)
        survive_all = 1.0
        remaining = packet_size
        for _ in range(count):
            size = min(self.mtu_bytes, remaining)
            remaining -= size
            bits = int(size * self.overhead_factor) * 8
            p_good = math.exp(bits * math.log1p(-condition.ber_good))
            p_bad = math.exp(bits * math.log1p(-condition.ber_bad))
            p = (
                (1.0 - condition.bad_fraction) * p_good
                + condition.bad_fraction * p_bad
            )
            survive_all *= p
        payload = packet_size - self.header_bytes
        return survive_all * payload / packet_size

    def analytic_best(self, condition: ErrorCondition) -> int:
        """Candidate size maximizing :meth:`expected_efficiency`."""
        scored: List[Tuple[float, int]] = [
            (self.expected_efficiency(condition, size), size)
            for size in self.candidate_sizes
        ]
        best_eff, best_size = max(scored)
        if best_eff <= 0.0:
            return min(self.candidate_sizes)
        return best_size
