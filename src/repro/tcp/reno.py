"""TCP Reno sender — fast recovery extension.

The paper used Tahoe (the ns default of the day); Reno is provided as
an extension/ablation to ask whether fast recovery changes the story
(it does not: wireless losses in a bad period kill whole windows, so
Reno's partial-loss machinery rarely engages — dupacks never arrive
when every fragment is lost).

Reno differs from Tahoe only in the reaction to the third duplicate
ACK: instead of collapsing to cwnd = 1, it halves the window
(ssthresh ← flight/2, cwnd ← ssthresh + 3), inflates cwnd per extra
dupack, and deflates to ssthresh when the retransmitted hole is
acknowledged.  Timeouts behave exactly as in Tahoe.
"""

from __future__ import annotations

from repro.tcp.tahoe import TahoeSender


class RenoSender(TahoeSender):
    """Tahoe sender with NewReno-free classic fast recovery."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.in_fast_recovery = False
        self._recover_seq = 0

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        flight = max(self.outstanding, 1)
        self.ssthresh = max(2.0, min(self.cwnd, float(flight)) / 2.0)
        self.cwnd = self.ssthresh + self.config.dupack_threshold
        self.in_fast_recovery = True
        self._recover_seq = self.snd_nxt
        # Retransmit only the hole, keep snd_nxt where it is.
        self._retransmit_one(self.snd_una)
        self.rtx_timer.restart(self.current_timeout())

    def _retransmit_one(self, seq: int) -> None:
        saved_nxt = self.snd_nxt
        self.snd_nxt = seq
        self._transmit(seq)
        self.snd_nxt = max(saved_nxt, seq + 1)

    def _handle_dupack(self) -> None:
        if self.in_fast_recovery:
            self.stats.dupacks_received += 1
            self.cwnd += 1.0  # window inflation per extra dupack
            self._send_pending()
            return
        super()._handle_dupack()

    def _handle_new_ack(self, ack_seq: int) -> None:
        if self.in_fast_recovery:
            self.in_fast_recovery = False
            self.cwnd = self.ssthresh  # deflate
        super()._handle_new_ack(ack_seq)

    def _on_timeout(self) -> None:
        self.in_fast_recovery = False
        super()._on_timeout()
