"""Message-oriented sender for interactive traffic.

The paper motivates its study with interactive applications — "users
of portable computers would like to execute popular applications like
ftp, telnet, www-access" — but evaluates bulk transfer only.  To
measure what its schemes do for *latency*, this sender transmits one
segment per application message (a keystroke, an echo, a small web
object), like a telnet connection with Nagle disabled: messages are
queued by the application at arbitrary times and sequenced through the
normal Tahoe machinery.
"""

from __future__ import annotations

from typing import List

from repro.tcp.tahoe import TahoeSender


class MessageSender(TahoeSender):
    """Tahoe sender where each application message is one segment.

    ``send_message(nbytes)`` queues a message (at most one segment
    payload); ``close()`` marks the end of the conversation.  The
    congestion/loss machinery is untouched — under fades, queued
    keystrokes experience exactly the stalls the bulk study measures.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.transfer_bytes = 0
        self.total_segments = 0
        self.closed = False
        self._message_sizes: List[int] = []

    def send_message(self, nbytes: int) -> int:
        """Queue one message; returns its segment number."""
        if self.closed:
            raise RuntimeError("cannot send into a closed conversation")
        if not 0 < nbytes <= self.config.segment_payload:
            raise ValueError(
                f"message must be 1..{self.config.segment_payload} bytes, "
                f"got {nbytes}"
            )
        seq = self.total_segments
        self._message_sizes.append(nbytes)
        self.total_segments += 1
        self.transfer_bytes += nbytes
        if self.stats.started_at is not None:
            self._send_pending()
        return seq

    def close(self) -> None:
        """No more messages will be sent."""
        self.closed = True
        if self.stats.started_at is not None and self._transfer_finished():
            self._complete()

    def _transfer_finished(self) -> bool:
        return self.closed and self.snd_una >= self.total_segments

    def _segment_payload_bytes(self, seq: int) -> int:
        return self._message_sizes[seq]
