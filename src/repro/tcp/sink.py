"""TCP sink: the receiving agent on the mobile host.

By default, acknowledges every arriving data segment with a cumulative
ACK (the behaviour of the ns one-way TCP sink the paper used).
Optionally implements RFC 1122 delayed ACKs (every second segment, or
a 200 ms timer) for the ack-clocking ablation.  Out-of-order and
duplicate segments are always acknowledged immediately — duplicate
ACKs drive the sender's fast retransmit and must not be delayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set

from repro.engine import Simulator, Timer
from repro.net.node import Node
from repro.net.packet import (
    ACK_PACKET_BYTES,
    Address,
    Datagram,
    TcpAck,
    TcpSegment,
)


@dataclass(slots=True)
class SinkStats:
    """Receive-side counters used for goodput/throughput."""

    segments_received: int = 0
    duplicate_segments: int = 0
    out_of_order_segments: int = 0
    acks_sent: int = 0
    #: User data delivered in order, counted once per segment.
    useful_payload_bytes: int = 0
    #: Same, including the 40 B header — the unit the paper's
    #: throughput numbers are in ("we take into account 40 bytes of
    #: header overhead while measuring connection throughput").
    useful_wire_bytes: int = 0
    first_data_at: Optional[float] = None
    last_data_at: Optional[float] = None
    ecn_marks_seen: int = 0
    delayed_ack_timeouts: int = 0


class TcpSink:
    """Receives TCP segments, returns cumulative ACKs toward ``src``."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        src: Address,
        header_bytes: int = ACK_PACKET_BYTES,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[], None]] = None,
        delayed_acks: bool = False,
        delack_timeout: float = 0.2,
        on_segment: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if delack_timeout <= 0:
            raise ValueError(f"delack_timeout must be positive, got {delack_timeout}")
        self._sim = sim
        self._node = node
        self.src = src
        self.header_bytes = header_bytes
        #: When set, ``on_complete`` fires once this much in-order user
        #: data has been delivered — needed by split-connection runs,
        #: where the *sender's* completion happens early (the relay
        #: ACKs data the mobile host has not yet received).
        self.expected_bytes = expected_bytes
        self.on_complete = on_complete
        #: Optional per-segment delivery callback ``(seq, payload_bytes)``,
        #: fired once per segment on first in-order delivery — used by
        #: latency-measuring workloads.
        self.on_segment = on_segment
        self.completed = False
        self.next_expected = 0
        self._buffered: Set[int] = set()
        self._buffered_sizes = {}
        #: Congestion-experienced marks awaiting echo (Floyd '94 ECN):
        #: each marked data packet makes the next ACK carry ecn_echo.
        self._ecn_pending = 0
        self.delayed_acks = delayed_acks
        self.delack_timeout = delack_timeout
        self._ack_held = False
        self._delack_timer = Timer(sim, self._delack_expired, name="delack")
        self.stats = SinkStats()

    def receive(self, datagram: Datagram) -> None:
        """Agent entry point for datagrams addressed to this node."""
        segment = datagram.payload
        if not isinstance(segment, TcpSegment):
            # ACKs/ICMP addressed to the sink are a wiring error.
            raise TypeError(f"sink received non-data payload {segment!r}")
        self.stats.segments_received += 1
        if datagram.ecn_marked:
            self._ecn_pending += 1
            self.stats.ecn_marks_seen += 1
        if self.stats.first_data_at is None:
            self.stats.first_data_at = self._sim.now
        self.stats.last_data_at = self._sim.now

        seq = segment.seq
        in_order = False
        if seq == self.next_expected:
            in_order = True
            self._deliver(segment.payload_bytes)
            if self.on_segment is not None:
                self.on_segment(seq, segment.payload_bytes)
            self.next_expected += 1
            while self.next_expected in self._buffered:
                self._buffered.discard(self.next_expected)
                size = self._buffered_sizes.pop(self.next_expected)
                self._deliver(size)
                if self.on_segment is not None:
                    self.on_segment(self.next_expected, size)
                self.next_expected += 1
        elif seq > self.next_expected:
            if seq not in self._buffered:
                self.stats.out_of_order_segments += 1
                self._buffered.add(seq)
                self._buffered_sizes[seq] = segment.payload_bytes
            else:
                self.stats.duplicate_segments += 1
        else:
            self.stats.duplicate_segments += 1

        if not self.delayed_acks or not in_order:
            # Immediate ACK; duplicates/gaps always ack at once so the
            # sender's dupack machinery keeps working.
            self._cancel_held_ack()
            self._send_ack()
        elif self._ack_held:
            # Second in-order segment: ack now (RFC 1122).
            self._cancel_held_ack()
            self._send_ack()
        else:
            self._ack_held = True
            self._delack_timer.restart(self.delack_timeout)

    def _cancel_held_ack(self) -> None:
        if self._ack_held:
            self._ack_held = False
            self._delack_timer.cancel()

    def _delack_expired(self) -> None:
        self._ack_held = False
        self.stats.delayed_ack_timeouts += 1
        self._send_ack()

    def _deliver(self, payload_bytes: int) -> None:
        self.stats.useful_payload_bytes += payload_bytes
        self.stats.useful_wire_bytes += payload_bytes + self.header_bytes
        if (
            not self.completed
            and self.expected_bytes is not None
            and self.stats.useful_payload_bytes >= self.expected_bytes
        ):
            self.completed = True
            if self.on_complete is not None:
                self.on_complete()

    def _send_ack(self) -> None:
        echo = self._ecn_pending > 0
        if echo:
            self._ecn_pending -= 1
        ack = TcpAck(ack_seq=self.next_expected, ecn_echo=echo)
        datagram = Datagram(
            src=self._node.name,
            dst=self.src,
            payload=ack,
            size_bytes=self.header_bytes,
            created_at=self._sim.now,
        )
        self.stats.acks_sent += 1
        self._node.send(datagram)
