"""Round-trip-time estimation and retransmission-timeout computation.

Implements Jacobson's mean/deviation estimator on a coarse clock: RTT
samples are quantized to ticks of ``granularity`` seconds (the paper
uses 100 ms and discusses how granularity interacts with local
recovery), and the resulting RTO is a whole number of ticks with a
floor of ``min_ticks``.

Karn's rule (never sample a retransmitted segment, keep the backed-off
RTO until an ACK for a fresh segment arrives) lives in the sender; this
class only knows about valid samples.
"""

from __future__ import annotations

import math
from typing import Optional


class RttEstimator:
    """Jacobson/Karn RTT estimator on a tick-quantized clock.

    >>> est = RttEstimator(granularity=0.1)
    >>> est.rto()            # initial conservative RTO
    3.0
    >>> est.sample(0.35)     # quantized to 4 ticks
    >>> est.srtt is not None
    True
    >>> est.rto() >= 0.2     # never below min_ticks * granularity
    True
    """

    #: Jacobson's gains: srtt ← srtt + err/8, rttvar ← rttvar + (|err|−rttvar)/4.
    SRTT_GAIN = 0.125
    RTTVAR_GAIN = 0.25

    def __init__(
        self,
        granularity: float = 0.1,
        initial_rto: float = 3.0,
        min_ticks: int = 2,
        max_rto: float = 64.0,
        k: float = 4.0,
        var_decay_gain: Optional[float] = None,
    ) -> None:
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        if initial_rto <= 0:
            raise ValueError(f"initial_rto must be positive, got {initial_rto}")
        if min_ticks < 1:
            raise ValueError(f"min_ticks must be >= 1, got {min_ticks}")
        if max_rto < granularity:
            raise ValueError("max_rto must be at least one tick")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if var_decay_gain is not None and not 0 < var_decay_gain <= 1:
            raise ValueError("var_decay_gain must be in (0, 1]")
        self.granularity = granularity
        self.initial_rto = initial_rto
        self.min_ticks = min_ticks
        self.max_rto = max_rto
        #: Variance weight in RTO = srtt + k·rttvar.  Jacobson's 4 is
        #: the default; the §6 "robust timer" ablation raises it so
        #: occasional wireless-delay spikes keep the RTO above the
        #: fade timescale without explicit feedback.
        self.k = k
        #: Optional asymmetric variance gain: when a sample *shrinks*
        #: the deviation, apply this gain instead of RTTVAR_GAIN (a
        #: value < 0.25 makes the estimator hold delay spikes longer —
        #: "peak-hold" variance, another robust-timer knob).
        self.var_decay_gain = var_decay_gain
        #: Smoothed RTT in ticks, or None before the first sample.
        self.srtt: Optional[float] = None
        #: Mean deviation in ticks.
        self.rttvar: float = 0.0
        self.samples_taken = 0

    def sample(self, rtt_seconds: float) -> None:
        """Feed one valid (non-retransmitted-segment) RTT measurement."""
        if rtt_seconds < 0:
            raise ValueError(f"RTT sample must be >= 0, got {rtt_seconds}")
        ticks = max(1.0, round(rtt_seconds / self.granularity))
        if self.srtt is None:
            self.srtt = ticks
            self.rttvar = ticks / 2
        else:
            err = ticks - self.srtt
            self.srtt += self.SRTT_GAIN * err
            deviation_change = abs(err) - self.rttvar
            gain = self.RTTVAR_GAIN
            if deviation_change < 0 and self.var_decay_gain is not None:
                gain = self.var_decay_gain
            self.rttvar += gain * deviation_change
        self.samples_taken += 1

    def rto(self) -> float:
        """Current retransmission timeout in seconds (no backoff applied).

        Before any sample: the conservative ``initial_rto``.  After:
        ``srtt + k·rttvar`` rounded up to a whole tick, clamped to
        ``[min_ticks · granularity, max_rto]``.
        """
        if self.srtt is None:
            return self.initial_rto
        raw_ticks = self.srtt + self.k * self.rttvar
        ticks = max(self.min_ticks, math.ceil(raw_ticks - 1e-9))
        return min(self.max_rto, ticks * self.granularity)

    def reset(self) -> None:
        """Forget all history (fresh connection)."""
        self.srtt = None
        self.rttvar = 0.0
        self.samples_taken = 0
