"""TCP implementation: Tahoe sender (paper default), Reno (extension), sink.

The sender implements the algorithms the paper's ns TCP-Tahoe used:
slow start, congestion avoidance, fast retransmit on three duplicate
ACKs (no fast recovery — Tahoe collapses the window), Jacobson RTT
estimation at a configurable clock granularity (100 ms in the paper),
Karn's sampling rule, and exponential timer backoff.

ICMP handling is pluggable (:attr:`TahoeSender.icmp_handler`), which is
where the paper's EBSN and source-quench responses attach — see
:mod:`repro.core`.
"""

from repro.tcp.rto import RttEstimator
from repro.tcp.sink import SinkStats, TcpSink
from repro.tcp.tahoe import SenderStats, TahoeSender, TcpConfig
from repro.tcp.reno import RenoSender
from repro.tcp.newreno import NewRenoSender
from repro.tcp.messages import MessageSender

__all__ = [
    "RttEstimator",
    "SinkStats",
    "TcpSink",
    "SenderStats",
    "TahoeSender",
    "TcpConfig",
    "RenoSender",
    "NewRenoSender",
    "MessageSender",
]
