"""TCP NewReno — partial-ACK fast recovery (RFC 2582, an extension).

Classic Reno leaves fast recovery on the first new ACK even when that
ACK only covers part of the outstanding window ("partial ACK"), so a
burst that drops several segments from one window costs Reno one fast
retransmit *per RTT* or a timeout.  NewReno stays in fast recovery
until the whole window outstanding at loss detection (``recover``) is
acknowledged, retransmitting the next hole immediately on each partial
ACK.

Relevant here because a short fade clips several segments of one
window: NewReno recovers them in one RTT each without collapsing, and
the ablation shows how far transport-only fixes can go compared with
the paper's link-layer + EBSN approach.
"""

from __future__ import annotations

from repro.tcp.reno import RenoSender


class NewRenoSender(RenoSender):
    """Reno with RFC 2582 partial-ACK handling."""

    def _handle_new_ack(self, ack_seq: int) -> None:
        if self.in_fast_recovery and ack_seq < self._recover_seq:
            # Partial ACK: the next segment is also lost.  Retransmit
            # it right away, deflate by the amount acked, and stay in
            # fast recovery.
            self.stats.acks_received += 0  # counted by caller already
            newly = ack_seq - self.snd_una
            self.snd_una = ack_seq
            self.dupacks = 0
            self.cwnd = max(1.0, self.cwnd - newly + 1)
            for seq in range(ack_seq - newly, ack_seq):
                self._sent_at.pop(seq, None)
            self._retransmit_one(ack_seq)
            self.rtx_timer.restart(self.current_timeout())
            if self._timed_seq is not None and ack_seq > self._timed_seq:
                self._timed_seq = None  # sample unusable mid-recovery
            return
        super()._handle_new_ack(ack_seq)
