"""TCP Tahoe bulk-transfer sender.

Segment-numbered (as in the ns TCP the paper used): the unit of
sequencing is one segment of ``packet_size - header_bytes`` payload.
The connection transfers ``transfer_bytes`` and stops.

Algorithms implemented (Jacobson '88 / Stevens):

* slow start: cwnd += 1 per new ACK while cwnd < ssthresh;
* congestion avoidance: cwnd += 1/cwnd per new ACK;
* loss response (both timeout and fast retransmit — Tahoe has no fast
  recovery): ssthresh ← max(2, flight/2), cwnd ← 1, go back to the
  first unacknowledged segment;
* timeout additionally doubles the RTO (exponential backoff); the
  backoff is cleared only when an ACK for a never-retransmitted
  segment arrives (Karn/Partridge);
* RTT is sampled from one timed segment at a time, never a
  retransmitted one (Karn's rule), on a 100 ms-granularity clock.

The ``icmp_handler`` hook is the attachment point for the paper's
schemes: EBSN re-arms the retransmission timer at the current timeout
(see :mod:`repro.core.ebsn`); source quench shrinks the window (see
:mod:`repro.core.quench`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol, Set

from repro.engine import Simulator, Timer
from repro.net.node import Node
from repro.net.packet import (
    Address,
    Datagram,
    IcmpMessage,
    TcpAck,
    TcpSegment,
    TCP_IP_HEADER_BYTES,
)
from repro.tcp.rto import RttEstimator


class SendTrace(Protocol):
    """Consumer of per-transmission trace records (Figs 3–5)."""

    def record_send(self, time: float, seq: int, is_retransmission: bool) -> None:
        """Record one source transmission."""
        ...  # pragma: no cover - protocol


@dataclass
class TcpConfig:
    """Connection parameters (paper §3.3 defaults for the WAN study)."""

    #: Wired packet size including the 40 B header — the swept variable.
    packet_size: int = 576
    header_bytes: int = TCP_IP_HEADER_BYTES
    #: Advertised/receiver window in bytes (4 KB WAN, 64 KB LAN).
    window_bytes: int = 4096
    #: Bulk-transfer size in user-data bytes (100 KB WAN, 4 MB LAN).
    transfer_bytes: int = 100 * 1024
    #: TCP clock granularity in seconds (paper: 100 ms).
    clock_granularity: float = 0.1
    initial_rto: float = 3.0
    min_rto_ticks: int = 2
    max_rto: float = 64.0
    dupack_threshold: int = 3
    max_backoff_doublings: int = 6
    initial_ssthresh_segments: Optional[int] = None
    #: RTO variance weight (Jacobson's k = 4); the §6 robust-timer
    #: ablation raises it.
    rto_k: float = 4.0
    #: Asymmetric rttvar decay gain (None = standard 0.25); smaller
    #: values hold delay spikes longer ("peak-hold" robust timer).
    rto_var_decay_gain: Optional[float] = None

    def __post_init__(self) -> None:
        if self.packet_size <= self.header_bytes:
            raise ValueError(
                f"packet size {self.packet_size} leaves no payload after "
                f"{self.header_bytes} B header"
            )
        if self.window_bytes < self.packet_size:
            raise ValueError("window must hold at least one packet")
        if self.transfer_bytes <= 0:
            raise ValueError("transfer_bytes must be positive")
        if self.dupack_threshold < 1:
            raise ValueError("dupack threshold must be >= 1")

    @property
    def segment_payload(self) -> int:
        """User-data bytes per full segment."""
        return self.packet_size - self.header_bytes

    @property
    def window_segments(self) -> int:
        """Advertised window expressed in whole packets."""
        return max(1, self.window_bytes // self.packet_size)

    @property
    def total_segments(self) -> int:
        """Segments needed for the whole transfer."""
        return -(-self.transfer_bytes // self.segment_payload)


@dataclass
class SenderStats:
    """Counters the metrics layer and the figures read out."""

    segments_sent: int = 0
    retransmissions: int = 0
    bytes_sent_wire: int = 0
    retransmitted_bytes_wire: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    acks_received: int = 0
    dupacks_received: int = 0
    ebsn_received: int = 0
    ebsn_timer_rearms: int = 0
    quench_received: int = 0
    ecn_responses: int = 0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    cwnd_trace: list = field(default_factory=list)


class TahoeSender:
    """A TCP Tahoe source performing one bulk transfer.

    Attach to a node with ``node.attach_agent(sender)``; call
    :meth:`start` to begin.  ``on_complete`` (if given) fires once when
    the final ACK arrives.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        dst: Address,
        config: Optional[TcpConfig] = None,
        trace: Optional[SendTrace] = None,
        on_complete: Optional[Callable[[], None]] = None,
        record_cwnd: bool = False,
    ) -> None:
        self._sim = sim
        self._node = node
        self.dst = dst
        self.config = config or TcpConfig()
        self.trace = trace
        self.on_complete = on_complete
        self.record_cwnd = record_cwnd

        self.estimator = RttEstimator(
            granularity=self.config.clock_granularity,
            initial_rto=self.config.initial_rto,
            min_ticks=self.config.min_rto_ticks,
            max_rto=self.config.max_rto,
            k=self.config.rto_k,
            var_decay_gain=self.config.rto_var_decay_gain,
        )
        self.rtx_timer = Timer(sim, self._on_timeout, name=f"rtx@{node.name}")
        self.stats = SenderStats()

        # Sequence state (segment numbers).  ``transfer_bytes`` /
        # ``total_segments`` are instance state so stream-fed variants
        # (the split-connection relay) can grow them while running.
        self.snd_una = 0
        self.snd_nxt = 0
        self.transfer_bytes = self.config.transfer_bytes
        self.total_segments = self.config.total_segments

        # Congestion state (in segments).
        self.cwnd: float = 1.0
        initial_ssthresh = (
            self.config.initial_ssthresh_segments
            if self.config.initial_ssthresh_segments is not None
            else self.config.window_segments
        )
        self.ssthresh: float = float(max(2, initial_ssthresh))
        self.backoff_exp = 0
        self.dupacks = 0

        # ECN (Floyd '94): react to at most one congestion echo per
        # window of data, like a single fast-retransmit halving.
        self.ecn_enabled = False
        self._ecn_recover = 0

        # RTT timing (one timed segment at a time, Karn's rule).
        self._timed_seq: Optional[int] = None
        self._timed_at: float = 0.0
        self._ever_retransmitted: Set[int] = set()
        self._sent_at: Dict[int, float] = {}

        #: Pluggable ICMP response — set by the EBSN/quench policies.
        self.icmp_handler: Optional[Callable[["TahoeSender", IcmpMessage], None]] = None

        self.completed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the transfer at the current simulation time."""
        if self.stats.started_at is not None:
            raise RuntimeError("sender already started")
        self.stats.started_at = self._sim.now
        self._send_pending()

    @property
    def outstanding(self) -> int:
        """Segments in flight (sent, unacknowledged)."""
        return self.snd_nxt - self.snd_una

    def effective_window(self) -> int:
        """min(cwnd, advertised window), in whole segments."""
        return max(1, min(int(self.cwnd), self.config.window_segments))

    def current_timeout(self) -> float:
        """RTO with the current exponential backoff applied."""
        backed_off = self.estimator.rto() * (2 ** self.backoff_exp)
        return min(self.config.max_rto, backed_off)

    def rearm_rtx_timer(self) -> None:
        """Re-arm the retransmission timer at the current timeout value.

        This is the paper's entire EBSN response (Appendix): cancel any
        pending timer and set a fresh one from the *existing* RTT/
        variance estimate — no window change, no estimator pollution.
        """
        if self.completed or self.outstanding == 0:
            return
        self.rtx_timer.restart(self.current_timeout())
        self.stats.ebsn_timer_rearms += 1

    # ------------------------------------------------------------------
    # Datagram input
    # ------------------------------------------------------------------

    def receive(self, datagram: Datagram) -> None:
        """Agent entry point: ACKs and ICMP messages addressed to us."""
        payload = datagram.payload
        if isinstance(payload, TcpAck):
            self._handle_ack(payload)
        elif isinstance(payload, IcmpMessage):
            self._handle_icmp(payload)
        elif isinstance(payload, TcpSegment):
            raise TypeError("bulk sender received a data segment")

    def _handle_icmp(self, message: IcmpMessage) -> None:
        if self.icmp_handler is not None:
            self.icmp_handler(self, message)
        # Without an installed policy, ICMP is ignored (basic TCP).

    def _handle_ack(self, ack: TcpAck) -> None:
        if self.completed:
            return
        self.stats.acks_received += 1
        if self.ecn_enabled and ack.ecn_echo:
            self._ecn_response()
        if ack.ack_seq > self.snd_una:
            self._handle_new_ack(ack.ack_seq)
        elif ack.ack_seq == self.snd_una and self.outstanding > 0:
            self._handle_dupack()

    def _handle_new_ack(self, ack_seq: int) -> None:
        newly_acked = ack_seq - self.snd_una
        highest_acked = ack_seq - 1

        # RTT sample: only if the timed segment is covered and was
        # never retransmitted (Karn's rule).
        if (
            self._timed_seq is not None
            and ack_seq > self._timed_seq
            and self._timed_seq not in self._ever_retransmitted
        ):
            self.estimator.sample(self._sim.now - self._timed_at)
        if self._timed_seq is not None and ack_seq > self._timed_seq:
            self._timed_seq = None

        # Karn/Partridge: keep the backed-off RTO until an ACK arrives
        # for a segment that was transmitted exactly once.
        if highest_acked not in self._ever_retransmitted:
            self.backoff_exp = 0

        self.snd_una = ack_seq
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        self.dupacks = 0

        # Window growth, per new ACK (not per segment acked).
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd
        if self.record_cwnd:
            self.stats.cwnd_trace.append((self._sim.now, self.cwnd))

        for seq in range(ack_seq - newly_acked, ack_seq):
            self._sent_at.pop(seq, None)

        if self._transfer_finished():
            self._complete()
            return

        # Restart the timer for the remaining in-flight data; an idle
        # stream-fed sender (acked everything, nothing queued yet)
        # must not leave a stale timer armed.
        if self.outstanding > 0 or self.snd_nxt < self.total_segments:
            self.rtx_timer.restart(self.current_timeout())
        else:
            self.rtx_timer.cancel()
        self._send_pending()

    def _handle_dupack(self) -> None:
        self.stats.dupacks_received += 1
        self.dupacks += 1
        if self.dupacks == self.config.dupack_threshold:
            self._fast_retransmit()

    def _ecn_response(self) -> None:
        """Halve the window on a congestion echo, once per window.

        Per Floyd '94: the source reacts as it would to a single
        packet drop detected by fast retransmit — ssthresh and cwnd
        halve — but nothing is retransmitted and the RTO is untouched.
        """
        if self.snd_una < self._ecn_recover:
            return  # already responded within this window of data
        self.stats.ecn_responses += 1
        flight = max(self.outstanding, 1)
        self.ssthresh = max(2.0, min(self.cwnd, float(flight)) / 2.0)
        self.cwnd = self.ssthresh
        self._ecn_recover = self.snd_nxt

    # ------------------------------------------------------------------
    # Loss responses
    # ------------------------------------------------------------------

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self._loss_response()
        self.rtx_timer.restart(self.current_timeout())
        self._send_pending()

    def _on_timeout(self) -> None:
        if self.completed:
            return
        self.stats.timeouts += 1
        self.backoff_exp = min(self.backoff_exp + 1, self.config.max_backoff_doublings)
        # A timeout invalidates any in-progress RTT measurement.
        self._timed_seq = None
        self._loss_response()
        self.rtx_timer.restart(self.current_timeout())
        self._send_pending()

    def _loss_response(self) -> None:
        """Tahoe's reaction to any loss signal: collapse to slow start."""
        flight = max(self.outstanding, 1)
        self.ssthresh = max(2.0, min(self.cwnd, float(flight)) / 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.snd_nxt = self.snd_una  # go-back-N from the hole
        if self.record_cwnd:
            self.stats.cwnd_trace.append((self._sim.now, self.cwnd))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def _transfer_finished(self) -> bool:
        """All data acknowledged (stream variants add 'and closed')."""
        return self.snd_una >= self.total_segments

    def _segment_payload_bytes(self, seq: int) -> int:
        if seq == self.total_segments - 1:
            tail = self.transfer_bytes - seq * self.config.segment_payload
            # Clamp: a stream-fed sender may hold more bytes than it
            # has released as whole segments (open tail).
            if 0 < tail < self.config.segment_payload:
                return tail
        return self.config.segment_payload

    def _send_pending(self) -> None:
        limit = self.snd_una + self.effective_window()
        while self.snd_nxt < limit and self.snd_nxt < self.total_segments:
            self._transmit(self.snd_nxt)
            self.snd_nxt += 1

    def _transmit(self, seq: int) -> None:
        is_retx = seq in self._sent_at or seq in self._ever_retransmitted
        payload_bytes = self._segment_payload_bytes(seq)
        segment = TcpSegment(
            seq=seq,
            payload_bytes=payload_bytes,
            sent_at=self._sim.now,
            is_retransmission=is_retx,
            rtt_eligible=not is_retx,
        )
        size = payload_bytes + self.config.header_bytes
        datagram = Datagram(
            src=self._node.name,
            dst=self.dst,
            payload=segment,
            size_bytes=size,
            created_at=self._sim.now,
        )

        self.stats.segments_sent += 1
        self.stats.bytes_sent_wire += size
        if is_retx:
            self.stats.retransmissions += 1
            self.stats.retransmitted_bytes_wire += size
            self._ever_retransmitted.add(seq)
        if self.trace is not None:
            self.trace.record_send(self._sim.now, seq, is_retx)

        self._sent_at[seq] = self._sim.now
        if self._timed_seq is None and not is_retx:
            self._timed_seq = seq
            self._timed_at = self._sim.now

        if not self.rtx_timer.pending:
            self.rtx_timer.start(self.current_timeout())

        self._node.send(datagram)

    def _complete(self) -> None:
        self.completed = True
        self.stats.completed_at = self._sim.now
        self.rtx_timer.cancel()
        if self.on_complete is not None:
            self.on_complete()
