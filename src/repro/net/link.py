"""Point-to-point wired link.

A unidirectional serializing link: datagrams queue behind the
transmitter, each occupies the line for ``size · 8 / bandwidth``
seconds, then arrives ``prop_delay`` later.  Wired links are error
free (the paper's premise: on wired links virtually all loss is
congestion).  A duplex connection is two instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine import Simulator
from repro.net.packet import Datagram
from repro.net.queues import DropTailQueue


@dataclass(slots=True)
class LinkStats:
    """Transmission counters shared by wired and wireless links."""

    offered: int = 0
    transmitted: int = 0
    delivered: int = 0
    corrupted: int = 0
    bytes_transmitted: int = 0
    busy_time: float = 0.0

    def loss_rate(self) -> float:
        """Fraction of transmitted frames corrupted in flight."""
        return self.corrupted / self.transmitted if self.transmitted else 0.0


class WiredLink:
    """One direction of a wired link.

    >>> from repro.engine import Simulator
    >>> from repro.net.packet import Datagram, TcpAck
    >>> sim = Simulator()
    >>> got = []
    >>> link = WiredLink(sim, bandwidth_bps=56_000, prop_delay=0.01)
    >>> link.connect(got.append)
    >>> link.send(Datagram("FH", "MH", TcpAck(0), 40))
    >>> sim.run()
    >>> len(got), round(sim.now, 6)   # 40*8/56000 + 0.01
    (1, 0.015714)
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        prop_delay: float,
        queue_capacity: Optional[int] = None,
        name: str = "wired",
        ecn_threshold: Optional[int] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay}")
        if ecn_threshold is not None and ecn_threshold < 1:
            raise ValueError(f"ecn_threshold must be >= 1, got {ecn_threshold}")
        self._sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.name = name
        self.queue: DropTailQueue[Datagram] = DropTailQueue(queue_capacity, name=f"{name}.q")
        #: ECN gateway behaviour: mark datagrams that arrive to a
        #: queue at least this deep (None = ECN off).
        self.ecn_threshold = ecn_threshold
        self.ecn_marks = 0
        self.stats = LinkStats()
        self._receiver: Optional[Callable[[Datagram], None]] = None
        self._busy = False

    def connect(self, receiver: Callable[[Datagram], None]) -> None:
        """Set the far-end delivery callback."""
        self._receiver = receiver

    @property
    def busy(self) -> bool:
        """True while a datagram is being serialized onto the line."""
        return self._busy

    def tx_time(self, size_bytes: int) -> float:
        """Serialization time for a datagram of ``size_bytes``."""
        return size_bytes * 8 / self.bandwidth_bps

    def send(self, datagram: Datagram) -> bool:
        """Queue a datagram for transmission; False if the queue dropped it."""
        if self._receiver is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        self.stats.offered += 1
        if self.ecn_threshold is not None and len(self.queue) >= self.ecn_threshold:
            datagram.ecn_marked = True
            self.ecn_marks += 1
        if not self.queue.offer(datagram, datagram.size_bytes):
            return False
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        datagram = self.queue.poll()
        if datagram is None:
            self._busy = False
            return
        self._busy = True
        duration = self.tx_time(datagram.size_bytes)
        self._sim.schedule(duration, self._tx_done, datagram, duration)

    def _tx_done(self, datagram: Datagram, duration: float) -> None:
        self.stats.transmitted += 1
        self.stats.bytes_transmitted += datagram.size_bytes
        self.stats.busy_time += duration
        self.stats.delivered += 1
        assert self._receiver is not None
        self._sim.schedule(self.prop_delay, self._receiver, datagram)
        self._start_next()
