"""Nodes and interfaces.

A :class:`Node` is a named endpoint/router: datagrams addressed to it
are handed to its attached agent (a TCP source, a TCP sink, ...);
anything else is forwarded via its routing table.  An
:class:`Interface` is the thin glue binding a node's routing entry to
a link's ``send`` method while counting per-interface traffic.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.net.ip import RoutingTable
from repro.net.packet import Address, Datagram


class Agent(Protocol):
    """Anything that can consume datagrams addressed to its node."""

    def receive(self, datagram: Datagram) -> None:
        """Handle a datagram whose ``dst`` is this node."""
        ...  # pragma: no cover - protocol


class Interface:
    """A node's attachment point to one outgoing link."""

    def __init__(self, name: str, send: Callable[[Datagram], None]) -> None:
        self.name = name
        self._send = send
        self.datagrams_out = 0
        self.bytes_out = 0

    def __call__(self, datagram: Datagram) -> None:
        self.datagrams_out += 1
        self.bytes_out += datagram.size_bytes
        self._send(datagram)


class Node:
    """A host or router in the simulated topology."""

    def __init__(self, name: Address) -> None:
        self.name = name
        self.routing = RoutingTable(name)
        self.agent: Optional[Agent] = None
        self.datagrams_received = 0
        self.datagrams_forwarded = 0

    def attach_agent(self, agent: Agent) -> None:
        """Install the transport-layer agent living on this node."""
        self.agent = agent

    def add_interface(
        self, name: str, send: Callable[[Datagram], None], *destinations: Address
    ) -> Interface:
        """Create an interface and route the given destinations through it."""
        interface = Interface(name, send)
        for dst in destinations:
            self.routing.add_route(dst, interface)
        return interface

    def receive(self, datagram: Datagram) -> None:
        """Entry point for datagrams arriving from any link."""
        if datagram.dst == self.name:
            self.datagrams_received += 1
            if self.agent is None:
                raise RuntimeError(
                    f"node {self.name!r} received a datagram but has no agent"
                )
            self.agent.receive(datagram)
        else:
            self.datagrams_forwarded += 1
            self.routing.forward(datagram)

    def send(self, datagram: Datagram) -> None:
        """Originate a datagram from this node (route it one hop out)."""
        self.routing.forward(datagram)
