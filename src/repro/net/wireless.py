"""The lossy wireless link.

One direction of the wireless hop.  Each link frame is expanded by the
physical-layer ``overhead_factor`` (framing, FEC, segmentation,
synchronization — the paper's W → 1.5 W rule, which turns the 19.2 kbps
raw CDPD channel into 12.8 kbps effective) and is then exposed to the
burst-error channel for exactly its airtime, so a frame can straddle a
good→bad transition.  Corrupted frames vanish (link-layer CRC drop);
the receiver never sees them.

Both directions of a hop share one :class:`~repro.channel.TwoStateChannel`
instance: a deep fade affects data and acknowledgements alike, which is
why TCP ACKs are lost in bad periods too (§4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.channel import TwoStateChannel
from repro.engine import Simulator
from repro.net.link import LinkStats
from repro.net.packet import FrameKind, LinkFrame
from repro.net.queues import DropTailQueue


@dataclass
class WirelessLinkConfig:
    """Physical parameters of one wireless hop direction.

    Defaults are the paper's wide-area (CDPD-like) values; the LAN
    study uses 2 Mbps with no framing overhead.
    """

    raw_bandwidth_bps: float = 19_200.0
    prop_delay: float = 0.002
    overhead_factor: float = 1.5
    mtu_bytes: int = 128

    def __post_init__(self) -> None:
        if self.raw_bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.prop_delay < 0:
            raise ValueError("propagation delay must be >= 0")
        if self.overhead_factor < 1.0:
            raise ValueError("overhead factor must be >= 1")
        if self.mtu_bytes <= 0:
            raise ValueError("MTU must be positive")

    @property
    def effective_bandwidth_bps(self) -> float:
        """Goodput ceiling after overhead (the paper's tput_max)."""
        return self.raw_bandwidth_bps / self.overhead_factor


class WirelessLink:
    """One direction of the wireless hop.

    ``send(frame, on_tx_complete=...)`` queues a frame; the optional
    callback fires when the frame finishes leaving the transmitter
    (whether or not the channel corrupted it) — the link-layer ARQ uses
    it to start its acknowledgement timer.  The sender is *not* told
    the corruption outcome: only the absence of a link ACK reveals it,
    as on real hardware.
    """

    def __init__(
        self,
        sim: Simulator,
        config: WirelessLinkConfig,
        channel: TwoStateChannel,
        name: str = "wireless",
    ) -> None:
        self._sim = sim
        self.config = config
        self.channel = channel
        self.name = name
        self.queue: DropTailQueue = DropTailQueue(name=f"{name}.q")
        #: Link-layer ACK frames are transmitted ahead of queued data,
        #: as a real MAC acknowledges in-band with priority — otherwise
        #: an ACK stuck behind a window of data frames looks like a
        #: loss to the other side's ARQ.
        self.ack_queue: DropTailQueue = DropTailQueue(name=f"{name}.ackq")
        self.stats = LinkStats()
        self._receiver: Optional[Callable[[LinkFrame], None]] = None
        self._busy = False

    def connect(self, receiver: Callable[[LinkFrame], None]) -> None:
        """Set the far-end delivery callback."""
        self._receiver = receiver

    @property
    def busy(self) -> bool:
        return self._busy

    def air_bytes(self, size_bytes: int) -> int:
        """On-air size of a frame after physical-layer expansion."""
        return int(round(size_bytes * self.config.overhead_factor))

    def tx_time(self, size_bytes: int) -> float:
        """Airtime of a frame of ``size_bytes`` (pre-expansion)."""
        return self.air_bytes(size_bytes) * 8 / self.config.raw_bandwidth_bps

    def send(
        self,
        frame: LinkFrame,
        on_tx_complete: Optional[Callable[[LinkFrame], None]] = None,
    ) -> None:
        """Queue a frame for transmission."""
        if self._receiver is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        self.stats.offered += 1
        target = self.ack_queue if frame.kind is FrameKind.LINK_ACK else self.queue
        target.offer((frame, on_tx_complete), frame.size_bytes)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        entry = self.ack_queue.poll()
        if entry is None:
            entry = self.queue.poll()
        if entry is None:
            self._busy = False
            return
        frame, on_tx_complete = entry
        self._busy = True
        duration = self.tx_time(frame.size_bytes)
        start = self._sim.now
        self._sim.schedule(duration, self._tx_done, frame, on_tx_complete, start, duration)

    def _tx_done(
        self,
        frame: LinkFrame,
        on_tx_complete: Optional[Callable[[LinkFrame], None]],
        start: float,
        duration: float,
    ) -> None:
        self.stats.transmitted += 1
        self.stats.bytes_transmitted += frame.size_bytes
        self.stats.busy_time += duration
        nbits = self.air_bytes(frame.size_bytes) * 8
        corrupted = self.channel.corrupts(start, duration, nbits)
        if corrupted:
            self.stats.corrupted += 1
        else:
            self.stats.delivered += 1
            assert self._receiver is not None
            self._sim.schedule(self.config.prop_delay, self._receiver, frame)
        if on_tx_complete is not None:
            on_tx_complete(frame)
        self._start_next()
