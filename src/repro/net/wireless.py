"""The lossy wireless link.

One direction of the wireless hop.  Each link frame is expanded by the
physical-layer ``overhead_factor`` (framing, FEC, segmentation,
synchronization — the paper's W → 1.5 W rule, which turns the 19.2 kbps
raw CDPD channel into 12.8 kbps effective) and is then exposed to the
burst-error channel for exactly its airtime, so a frame can straddle a
good→bad transition.  Corrupted frames vanish (link-layer CRC drop);
the receiver never sees them.

Both directions of a hop share one :class:`~repro.channel.TwoStateChannel`
instance: a deep fade affects data and acknowledgements alike, which is
why TCP ACKs are lost in bad periods too (§4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.channel import TwoStateChannel
from repro.engine import Simulator
from repro.net.link import LinkStats
from repro.net.packet import FrameKind, LinkFrame
from repro.net.queues import DropTailQueue


@dataclass
class WirelessLinkConfig:
    """Physical parameters of one wireless hop direction.

    Defaults are the paper's wide-area (CDPD-like) values; the LAN
    study uses 2 Mbps with no framing overhead.
    """

    raw_bandwidth_bps: float = 19_200.0
    prop_delay: float = 0.002
    overhead_factor: float = 1.5
    mtu_bytes: int = 128

    def __post_init__(self) -> None:
        if self.raw_bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.prop_delay < 0:
            raise ValueError("propagation delay must be >= 0")
        if self.overhead_factor < 1.0:
            raise ValueError("overhead factor must be >= 1")
        if self.mtu_bytes <= 0:
            raise ValueError("MTU must be positive")

    @property
    def effective_bandwidth_bps(self) -> float:
        """Goodput ceiling after overhead (the paper's tput_max)."""
        return self.raw_bandwidth_bps / self.overhead_factor


class WirelessLink:
    """One direction of the wireless hop.

    ``send(frame, on_tx_complete=...)`` queues a frame; the optional
    callback fires when the frame finishes leaving the transmitter
    (whether or not the channel corrupted it) — the link-layer ARQ uses
    it to start its acknowledgement timer.  The sender is *not* told
    the corruption outcome: only the absence of a link ACK reveals it,
    as on real hardware.
    """

    def __init__(
        self,
        sim: Simulator,
        config: WirelessLinkConfig,
        channel: TwoStateChannel,
        name: str = "wireless",
    ) -> None:
        self._sim = sim
        self.config = config
        self.channel = channel
        self.name = name
        self.queue: DropTailQueue = DropTailQueue(name=f"{name}.q")
        #: Link-layer ACK frames are transmitted ahead of queued data,
        #: as a real MAC acknowledges in-band with priority — otherwise
        #: an ACK stuck behind a window of data frames looks like a
        #: loss to the other side's ARQ.
        self.ack_queue: DropTailQueue = DropTailQueue(name=f"{name}.ackq")
        self.stats = LinkStats()
        self._receiver: Optional[Callable[[LinkFrame], None]] = None
        self._busy = False
        # Frame sizes repeat endlessly (full fragments, the tail
        # fragment, link ACKs), so memoize size -> (air_bytes, airtime).
        # Values are computed by the same expressions as the uncached
        # methods, so the cache is arithmetically invisible.
        self._airtime_cache: dict[int, tuple[int, float]] = {}
        # Hot-path prebinds.  Simulator.schedule is never instance-
        # patched, so one bound method serves every transmission;
        # shadowing _tx_done in the instance dict skips a descriptor
        # bind per schedule.  (channel.corrupts and this link's own
        # send ARE instance-patched by the event log, so those stay
        # ordinary attribute lookups.)
        self._schedule = sim.schedule
        self._tx_done = self._tx_done

    def connect(self, receiver: Callable[[LinkFrame], None]) -> None:
        """Set the far-end delivery callback."""
        self._receiver = receiver

    @property
    def busy(self) -> bool:
        return self._busy

    def _airtime(self, size_bytes: int) -> tuple[int, float]:
        """Memoized (on-air bytes, airtime seconds) for a frame size."""
        cached = self._airtime_cache.get(size_bytes)
        if cached is None:
            air = int(round(size_bytes * self.config.overhead_factor))
            cached = (air, air * 8 / self.config.raw_bandwidth_bps)
            self._airtime_cache[size_bytes] = cached
        return cached

    def air_bytes(self, size_bytes: int) -> int:
        """On-air size of a frame after physical-layer expansion."""
        return self._airtime(size_bytes)[0]

    def tx_time(self, size_bytes: int) -> float:
        """Airtime of a frame of ``size_bytes`` (pre-expansion)."""
        return self._airtime(size_bytes)[1]

    def send(
        self,
        frame: LinkFrame,
        on_tx_complete: Optional[Callable[[LinkFrame], None]] = None,
    ) -> None:
        """Queue a frame for transmission."""
        if self._receiver is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        self.stats.offered += 1
        target = self.ack_queue if frame.kind is FrameKind.LINK_ACK else self.queue
        # Inlined target.offer((frame, on_tx_complete), frame.size_bytes):
        # one call per frame on the hot path.
        items = target._items
        stats = target.stats
        size = frame.size_bytes
        if target.capacity is not None and len(items) >= target.capacity:
            stats.dropped += 1
            stats.dropped_bytes += size
        else:
            items.append((frame, on_tx_complete))
            stats.enqueued += 1
            stats.enqueued_bytes += size
            depth = len(items)
            if depth > stats.peak_depth:
                stats.peak_depth = depth
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        # Inlined ack_queue.poll() / queue.poll(): this runs once per
        # frame and per idle check, and the two method calls (one
        # usually answering "empty") showed up in profiles.
        queue = self.ack_queue
        items = queue._items
        if not items:
            queue = self.queue
            items = queue._items
            if not items:
                self._busy = False
                return
        queue.stats.dequeued += 1
        frame, on_tx_complete = items.popleft()
        self._busy = True
        cached = self._airtime_cache.get(frame.size_bytes)
        if cached is None:
            cached = self._airtime(frame.size_bytes)
        air, duration = cached
        self._schedule(
            duration,
            self._tx_done,
            frame,
            on_tx_complete,
            self._sim._now,
            duration,
            air * 8,
        )

    def _tx_done(
        self,
        frame: LinkFrame,
        on_tx_complete: Optional[Callable[[LinkFrame], None]],
        start: float,
        duration: float,
        nbits: int,
    ) -> None:
        stats = self.stats
        stats.transmitted += 1
        stats.bytes_transmitted += frame.size_bytes
        stats.busy_time += duration
        corrupted = self.channel.corrupts(start, duration, nbits)
        if corrupted:
            stats.corrupted += 1
        else:
            stats.delivered += 1
            assert self._receiver is not None
            self._schedule(self.config.prop_delay, self._receiver, frame)
        if on_tx_complete is not None:
            on_tx_complete(frame)
        self._start_next()
