"""IP-layer services: routing, fragmentation, reassembly.

Fragmentation is the crux of the paper's §4.1: wired packets larger
than the wireless MTU are split at the base station, and losing *any*
fragment loses the whole packet — the source retransmits everything.
Reassembly here is therefore strictly all-or-nothing, with a timeout
that garbage-collects partial datagrams (as RFC 791 reassembly does).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.engine import Simulator
from repro.net.packet import Address, Datagram, Fragment


class RoutingTable:
    """Static next-hop routing: destination address → forwarding callable.

    The paper's topology is a three-node chain, so routes are installed
    by the topology builder once and never change (no handoffs in this
    study).
    """

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name
        self._routes: Dict[Address, Callable[[Datagram], None]] = {}
        self._default: Optional[Callable[[Datagram], None]] = None

    def add_route(self, dst: Address, forward: Callable[[Datagram], None]) -> None:
        """Install the forwarding function for datagrams to ``dst``."""
        self._routes[dst] = forward

    def set_default(self, forward: Callable[[Datagram], None]) -> None:
        """Install a default route for unknown destinations."""
        self._default = forward

    def lookup(self, dst: Address) -> Callable[[Datagram], None]:
        """The forwarding function for ``dst``; raises KeyError if unroutable."""
        forward = self._routes.get(dst, self._default)
        if forward is None:
            raise KeyError(f"node {self.node_name!r} has no route to {dst!r}")
        return forward

    def forward(self, datagram: Datagram) -> None:
        """Route a datagram one hop toward its destination."""
        # Inlined lookup(): forwarding runs once per datagram per hop.
        dst = datagram.dst
        forward = self._routes.get(dst, self._default)
        if forward is None:
            raise KeyError(f"node {self.node_name!r} has no route to {dst!r}")
        forward(datagram)


class Fragmenter:
    """Split datagrams to fit the wireless MTU.

    A datagram of N bytes becomes ``ceil(N / mtu)`` fragments; all but
    the last are exactly MTU-sized.  (Per-fragment radio framing is
    accounted separately by the wireless link's overhead factor, which
    the paper says covers framing, FEC, segmentation and sync.)
    """

    def __init__(self, mtu_bytes: int) -> None:
        if mtu_bytes <= 0:
            raise ValueError(f"MTU must be positive, got {mtu_bytes}")
        self.mtu_bytes = mtu_bytes
        self.datagrams_fragmented = 0
        self.fragments_produced = 0

    def fragment_count(self, size_bytes: int) -> int:
        """Number of fragments a datagram of ``size_bytes`` produces."""
        return -(-size_bytes // self.mtu_bytes)

    def fragment(self, datagram: Datagram) -> List[Fragment]:
        """Split ``datagram``; a datagram within the MTU yields one fragment."""
        mtu = self.mtu_bytes
        count = -(-datagram.size_bytes // mtu)
        fragments: List[Fragment] = []
        remaining = datagram.size_bytes
        for index in range(count):
            size = mtu if remaining > mtu else remaining
            # Field-by-field build skips __init__/__post_init__ on the
            # per-fragment hot path; the validated invariants (index in
            # range, positive size) hold by construction.
            frag = Fragment.__new__(Fragment)
            frag.datagram = datagram
            frag.frag_index = index
            frag.frag_count = count
            frag.size_bytes = size
            fragments.append(frag)
            remaining -= size
        if count > 1:
            self.datagrams_fragmented += 1
        self.fragments_produced += count
        return fragments


@dataclass(slots=True)
class _PartialDatagram:
    """Reassembly buffer for one in-flight datagram."""

    frag_count: int
    received: Set[int] = field(default_factory=set)
    first_seen: float = 0.0

    @property
    def complete(self) -> bool:
        return len(self.received) == self.frag_count


class Reassembler:
    """All-or-nothing fragment reassembly with timeout.

    ``add()`` returns the whole datagram when its last fragment
    arrives, else ``None``.  Partial datagrams older than ``timeout``
    are discarded by a periodic sweep, counting a reassembly failure —
    this is the wired packet the TCP source will have to resend.
    """

    #: How many completed datagram uids to remember, so that a late
    #: ARQ re-delivery of a fragment (its link ACK was lost) does not
    #: resurrect a reassembly buffer for an already-delivered datagram.
    COMPLETED_MEMORY = 512

    def __init__(self, sim: Simulator, timeout: float = 30.0, name: str = "reasm") -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._sim = sim
        self.timeout = timeout
        self.name = name
        self._partials: Dict[int, _PartialDatagram] = {}
        self._completed_recent: "OrderedDict[int, None]" = OrderedDict()
        self.completed = 0
        self.failed = 0
        self.duplicate_fragments = 0
        self._sweep_scheduled = False

    def add(self, fragment: Fragment) -> Optional[Datagram]:
        """Account one arriving fragment; return the datagram if complete."""
        uid = fragment.datagram.uid
        if uid in self._completed_recent:
            self.duplicate_fragments += 1
            return None
        partial = self._partials.get(uid)
        if partial is None:
            partial = _PartialDatagram(
                frag_count=fragment.frag_count, first_seen=self._sim.now
            )
            self._partials[uid] = partial
            self._ensure_sweep()
        received = partial.received
        before = len(received)
        received.add(fragment.frag_index)
        if len(received) == before:
            self.duplicate_fragments += 1
            return None
        if len(received) == partial.frag_count:
            del self._partials[uid]
            self.completed += 1
            self._completed_recent[uid] = None
            while len(self._completed_recent) > self.COMPLETED_MEMORY:
                self._completed_recent.popitem(last=False)
            return fragment.datagram
        return None

    @property
    def pending(self) -> int:
        """Number of datagrams currently awaiting fragments."""
        return len(self._partials)

    def _ensure_sweep(self) -> None:
        if not self._sweep_scheduled:
            self._sweep_scheduled = True
            self._sim.schedule(self.timeout, self._sweep)

    def _sweep(self) -> None:
        self._sweep_scheduled = False
        deadline = self._sim.now - self.timeout
        expired = [uid for uid, p in self._partials.items() if p.first_seen <= deadline]
        for uid in expired:
            del self._partials[uid]
            self.failed += 1
        if self._partials:
            self._ensure_sweep()
