"""Drop-tail FIFO queues with statistics.

Every link has an input queue; the base station's queue filling up
during a bad channel period is what the source-quench scheme reacts to
(§4.2.2), so queue occupancy is observable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


@dataclass(slots=True)
class QueueStats:
    """Counters kept by every queue."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    enqueued_bytes: int = 0
    dropped_bytes: int = 0
    peak_depth: int = 0

    def drop_rate(self) -> float:
        """Fraction of offered packets dropped."""
        offered = self.enqueued + self.dropped
        return self.dropped / offered if offered else 0.0


class DropTailQueue(Generic[T]):
    """Bounded FIFO that drops arrivals when full (drop-tail).

    The capacity is in packets, matching ns's default DropTail
    behaviour; ``maxlen=None`` gives an unbounded queue (used for the
    single-connection experiments where the paper assumes no
    congestion on the wired network).
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._items: deque[T] = deque()
        self.capacity = capacity
        self.name = name
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def offer(self, item: T, size_bytes: int = 0) -> bool:
        """Enqueue ``item``; returns False (and counts a drop) if full."""
        items = self._items
        stats = self.stats
        if self.capacity is not None and len(items) >= self.capacity:
            stats.dropped += 1
            stats.dropped_bytes += size_bytes
            return False
        items.append(item)
        stats.enqueued += 1
        stats.enqueued_bytes += size_bytes
        depth = len(items)
        if depth > stats.peak_depth:
            stats.peak_depth = depth
        return True

    def poll(self) -> Optional[T]:
        """Dequeue the head item, or ``None`` when empty."""
        items = self._items
        if not items:
            return None
        self.stats.dequeued += 1
        return items.popleft()

    def peek(self) -> Optional[T]:
        """The head item without removing it, or ``None`` when empty."""
        return self._items[0] if self._items else None

    def requeue_front(self, item: T) -> None:
        """Put an item back at the head (used by ARQ retransmission)."""
        self._items.appendleft(item)

    def clear(self) -> int:
        """Remove everything; returns the number of items discarded."""
        count = len(self._items)
        self._items.clear()
        return count

    def __iter__(self):
        return iter(self._items)
