"""Network substrate: packets, queues, links, and the IP layer.

This package provides everything below the transport layer:

* :mod:`repro.net.packet` — datagrams, TCP segment/ACK payload types,
  ICMP messages (EBSN, source quench), link frames, fragments.
* :mod:`repro.net.queues` — drop-tail FIFO queues with statistics.
* :mod:`repro.net.link` — point-to-point wired links.
* :mod:`repro.net.wireless` — the lossy wireless link (framing
  overhead, channel-model-driven corruption).
* :mod:`repro.net.ip` — static routing, fragmentation to the wireless
  MTU, and all-or-nothing reassembly.
* :mod:`repro.net.node` — hosts and the node/interface wiring.
"""

from repro.net.packet import (
    Address,
    Datagram,
    Fragment,
    IcmpMessage,
    IcmpType,
    LinkFrame,
    PacketType,
    TcpAck,
    TcpSegment,
)
from repro.net.queues import DropTailQueue, QueueStats
from repro.net.link import WiredLink
from repro.net.wireless import WirelessLink, WirelessLinkConfig
from repro.net.ip import Fragmenter, Reassembler, RoutingTable
from repro.net.node import Interface, Node

__all__ = [
    "Address",
    "Datagram",
    "Fragment",
    "IcmpMessage",
    "IcmpType",
    "LinkFrame",
    "PacketType",
    "TcpAck",
    "TcpSegment",
    "DropTailQueue",
    "QueueStats",
    "WiredLink",
    "WirelessLink",
    "WirelessLinkConfig",
    "Fragmenter",
    "Reassembler",
    "RoutingTable",
    "Interface",
    "Node",
]
