"""Packet types for every layer of the simulated stack.

The layering mirrors the paper's setup:

* The TCP source emits :class:`TcpSegment` / the sink emits
  :class:`TcpAck`; either is carried as the payload of a
  :class:`Datagram` (a network-layer packet).  A datagram's
  ``size_bytes`` is the *wired packet size* the paper sweeps
  (128–1536 B) and includes the 40-byte TCP/IP header.
* The base station's ICMP-like control messages —
  :class:`IcmpMessage` with type ``EBSN`` or ``SOURCE_QUENCH`` — are
  also datagram payloads.
* On the wireless hop a datagram larger than the MTU is split into
  :class:`Fragment` pieces; each fragment (or small whole datagram)
  travels inside a :class:`LinkFrame`, the unit the wireless link
  transmits and the unit the link-layer ARQ acknowledges.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

#: Node addresses are plain strings ("FH", "BS", "MH").
Address = str

#: TCP/IP header bytes on every data segment and ACK (paper §3.3).
TCP_IP_HEADER_BYTES = 40

#: Bytes of a pure TCP ACK on the wire (header only, no payload).
ACK_PACKET_BYTES = 40

#: Bytes of an ICMP control message (EBSN / source quench) on the wire.
ICMP_PACKET_BYTES = 40

#: Bytes of a link-layer acknowledgement frame (before air overhead).
LINK_ACK_BYTES = 8

_datagram_ids = itertools.count(1)
_frame_ids = itertools.count(1)


class PacketType(enum.Enum):
    """Network-layer payload discriminator."""

    DATA = "data"
    ACK = "ack"
    ICMP = "icmp"


class IcmpType(enum.Enum):
    """ICMP message types used by the base station's feedback schemes."""

    #: Explicit Bad State Notification (the paper's contribution).
    EBSN = "ebsn"
    #: Classic RFC 792 source quench (the §4.2.2 negative result).
    SOURCE_QUENCH = "source_quench"


@dataclass(slots=True)
class TcpSegment:
    """A TCP data segment, identified by segment number.

    Sequence space is segment-numbered (as in the ns TCP the paper
    used); ``payload_bytes`` excludes the 40-byte header.
    """

    seq: int
    payload_bytes: int
    sent_at: float
    is_retransmission: bool = False
    #: True when this transmission may be used for an RTT sample
    #: (Karn's algorithm: never sample retransmitted segments).
    rtt_eligible: bool = True

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"segment number must be >= 0, got {self.seq}")
        if self.payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {self.payload_bytes}")


@dataclass(slots=True)
class TcpAck:
    """A cumulative TCP acknowledgement.

    ``ack_seq`` is the next segment number the receiver expects; i.e.
    all segments < ``ack_seq`` were received in order.  ``ecn_echo``
    carries a congestion-experienced mark back to the source (Floyd
    '94 ECN, used by the wired-congestion extension study).
    """

    ack_seq: int
    ecn_echo: bool = False

    def __post_init__(self) -> None:
        if self.ack_seq < 0:
            raise ValueError(f"ack_seq must be >= 0, got {self.ack_seq}")


@dataclass(slots=True)
class IcmpMessage:
    """An ICMP control message from the base station to the source.

    ``about_seq`` identifies the segment whose link-level transmission
    failed (EBSN) or that was queued when congestion was signalled
    (source quench); it is informational — the paper's EBSN response
    does not depend on it.
    """

    icmp_type: IcmpType
    about_seq: Optional[int] = None


Payload = Union[TcpSegment, TcpAck, IcmpMessage]


@dataclass(slots=True)
class Datagram:
    """A network-layer packet.

    ``size_bytes`` is the full on-the-(wired)-wire size including the
    40-byte TCP/IP header; this is the "packet size" of the paper's
    sweeps.
    """

    src: Address
    dst: Address
    payload: Payload
    size_bytes: int
    uid: int = field(default_factory=lambda: next(_datagram_ids))
    created_at: float = 0.0
    #: Congestion-experienced mark, set by an ECN gateway when its
    #: queue is building (Floyd '94); echoed by the sink.
    ecn_marked: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes < TCP_IP_HEADER_BYTES:
            raise ValueError(
                f"datagram of {self.size_bytes} B is smaller than the "
                f"{TCP_IP_HEADER_BYTES} B header"
            )

    @property
    def packet_type(self) -> PacketType:
        if isinstance(self.payload, TcpSegment):
            return PacketType.DATA
        if isinstance(self.payload, TcpAck):
            return PacketType.ACK
        return PacketType.ICMP

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Datagram #{self.uid} {self.src}->{self.dst} "
            f"{self.packet_type.value} {self.size_bytes}B {self.payload!r}>"
        )


@dataclass(slots=True)
class Fragment:
    """One MTU-sized piece of a datagram on the wireless hop.

    ``frag_index`` runs from 0 to ``frag_count - 1``; reassembly is
    all-or-nothing (losing any fragment loses the datagram).
    """

    datagram: Datagram
    frag_index: int
    frag_count: int
    size_bytes: int

    def __post_init__(self) -> None:
        if not 0 <= self.frag_index < self.frag_count:
            raise ValueError(
                f"fragment index {self.frag_index} out of range "
                f"(count={self.frag_count})"
            )
        if self.size_bytes <= 0:
            raise ValueError(f"fragment size must be positive, got {self.size_bytes}")

    @property
    def is_last(self) -> bool:
        return self.frag_index == self.frag_count - 1


class FrameKind(enum.Enum):
    """What a link frame carries."""

    DATA = "data"  # a Fragment (or an unfragmented whole Datagram)
    LINK_ACK = "link_ack"  # a link-layer acknowledgement
    #: Sequence-sync control: "the frame with this link_seq was given
    #: up on" — lets the in-order receiver skip the gap immediately
    #: instead of stalling until its flush timeout.
    SKIP = "skip"


@dataclass(slots=True)
class LinkFrame:
    """The unit the wireless link transmits and the ARQ acknowledges.

    ``size_bytes`` is the frame size *before* the physical-layer
    overhead multiplier; the wireless link applies the 1.5× framing/
    FEC expansion when computing airtime and error exposure.
    """

    kind: FrameKind
    size_bytes: int
    fragment: Optional[Fragment] = None
    #: frame uid this LINK_ACK acknowledges.
    acked_frame_uid: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_frame_ids))
    #: Number of link-level transmission attempts so far (set by ARQ).
    attempt: int = 1
    #: Per-direction link sequence number, assigned by the ARQ
    #: transmitter; the receiver uses it to deliver in order (as RLP-
    #: style local recovery does).  None on PLAIN-mode frames.
    link_seq: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is FrameKind.DATA and self.fragment is None:
            raise ValueError("DATA frame requires a fragment")
        if self.kind is FrameKind.LINK_ACK and self.acked_frame_uid is None:
            raise ValueError("LINK_ACK frame requires acked_frame_uid")
        if self.kind is FrameKind.SKIP and self.link_seq is None:
            raise ValueError("SKIP frame requires link_seq")
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes}")


def _blank_frame() -> LinkFrame:
    """Uninitialised LinkFrame for the hot factories below.

    The two per-frame factories run once per transmission and once per
    link ACK; building the frame field-by-field skips the dataclass
    ``__init__``/``__post_init__`` pair, whose checks hold by
    construction here (fragment present, fixed positive sizes).
    """
    return LinkFrame.__new__(LinkFrame)


def data_frame(fragment: Fragment) -> LinkFrame:
    """Wrap a fragment in a transmittable link frame."""
    frame = _blank_frame()
    frame.kind = FrameKind.DATA
    frame.size_bytes = fragment.size_bytes
    frame.fragment = fragment
    frame.acked_frame_uid = None
    frame.uid = next(_frame_ids)
    frame.attempt = 1
    frame.link_seq = None
    return frame


def link_ack_frame(acked_frame_uid: int) -> LinkFrame:
    """Build the small link-layer ACK for a received data frame."""
    frame = _blank_frame()
    frame.kind = FrameKind.LINK_ACK
    frame.size_bytes = LINK_ACK_BYTES
    frame.fragment = None
    frame.acked_frame_uid = acked_frame_uid
    frame.uid = next(_frame_ids)
    frame.attempt = 1
    frame.link_seq = None
    return frame


def skip_frame(link_seq: int) -> LinkFrame:
    """Build the sequence-sync marker for a discarded frame's slot."""
    return LinkFrame(kind=FrameKind.SKIP, size_bytes=LINK_ACK_BYTES, link_seq=link_seq)
