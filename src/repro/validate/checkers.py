"""The concrete invariant checkers.

Each checker guards one class of protocol property the paper's claims
rest on:

* :class:`TimerSanityChecker` — engine: no cancelled event ever fires,
  and fire times never move backwards (simulator event dispatch).
* :class:`TcpStateChecker` — transport: sequence monotonicity and
  cwnd/ssthresh legality under the Tahoe/Reno/NewReno state machines.
* :class:`ArqBoundChecker` — link layer: no frame is ever transmitted
  more than RTmax times (the paper's CDPD bound, 13).
* :class:`EbsnWindowChecker` — the paper's core contract: EBSN re-arms
  the retransmission timer and does *nothing else*; any window action
  from the EBSN handler is a violation.
* :class:`DeliveryChecker` — receive path: nothing is delivered after
  the connection completed (no delivery after FIN) and the sink never
  holds more in-order payload than the source has produced.
* :class:`ConservationChecker` — end of run: every transferred byte
  was delivered exactly once, and the accounting counters agree.

All checkers are pure observers: they wrap existing callbacks, draw no
randomness, and schedule nothing, so validated runs are bit-identical
to unvalidated ones.
"""

from __future__ import annotations

from repro.net.packet import IcmpMessage, IcmpType
from repro.validate.engine import InvariantChecker

#: Slack for float comparisons on cwnd/ssthresh (segments).
_EPS = 1e-9


class TimerSanityChecker(InvariantChecker):
    """No firing of cancelled events; fire times never go backwards.

    Wraps ``Simulator.schedule_at`` (which ``schedule`` and every
    ``Timer`` route through) so each scheduled callback verifies, at
    fire time, that its event is live and that simulated time is
    consistent.  A lazy-deletion or heap-compaction bug in the engine
    surfaces here instead of as a mystery retransmission.
    """

    name = "timer-sanity"

    def attach(self, scenario, report) -> None:
        """Wrap ``schedule_at`` so every callback self-checks at fire time."""
        sim = scenario.sim
        original_schedule_at = sim.schedule_at
        state = {"last_fired": sim.now}

        def schedule_at(time, callback, *args):
            event = original_schedule_at(time, callback, *args)
            inner = event.callback

            def checked(*callback_args):
                if event.cancelled:
                    report(f"cancelled event fired (t={event.time:.6f})")
                if event.time < state["last_fired"] - _EPS:
                    report(
                        f"event fired out of order: t={event.time:.6f} after "
                        f"t={state['last_fired']:.6f}"
                    )
                if abs(sim.now - event.time) > _EPS:
                    report(
                        f"clock desync: now={sim.now:.6f} but event scheduled "
                        f"for t={event.time:.6f}"
                    )
                state["last_fired"] = event.time
                inner(*callback_args)

            event.callback = checked
            return event

        sim.schedule_at = schedule_at


class TcpStateChecker(InvariantChecker):
    """Sequence monotonicity and window legality at the TCP source.

    After every datagram the source processes: ``snd_una`` never moves
    backwards, ``snd_una <= snd_nxt``, ``cwnd >= 1``, ``ssthresh >= 2``,
    and cwnd grows by at most ``dupack_threshold + 1`` segments per
    event (the largest single-step growth any of Tahoe/Reno/NewReno
    permits — slow start adds 1, Reno's fast retransmit sets
    ``cwnd = ssthresh + 3``).  A timeout must collapse cwnd to 1
    (all three variants revert to slow start on timeout).
    """

    name = "tcp-state"

    def attach(self, scenario, report) -> None:
        """Wrap the source's receive path and retransmission timer."""
        sender = scenario.sender
        config = sender.config
        max_growth = config.dupack_threshold + 1 + _EPS
        original_receive = sender.receive

        def receive(datagram):
            una_before = sender.snd_una
            cwnd_before = sender.cwnd
            original_receive(datagram)
            if sender.snd_una < una_before:
                report(
                    f"snd_una moved backwards: {una_before} -> {sender.snd_una}"
                )
            if sender.snd_nxt < sender.snd_una:
                report(
                    f"snd_nxt {sender.snd_nxt} fell below snd_una {sender.snd_una}"
                )
            if sender.cwnd < 1.0 - _EPS:
                report(f"cwnd fell below one segment: {sender.cwnd:.6f}")
            if sender.ssthresh < 2.0 - _EPS:
                report(f"ssthresh fell below two segments: {sender.ssthresh:.6f}")
            growth = sender.cwnd - cwnd_before
            if growth > max_growth:
                report(
                    f"cwnd grew by {growth:.3f} segments on one event "
                    f"(legal maximum {config.dupack_threshold + 1})"
                )

        sender.receive = receive

        # The rtx timer captured its callback at construction, so wrap
        # the timer's callback rather than the (already-bound) method.
        timer = sender.rtx_timer
        inner_timeout = timer._callback

        def on_timeout():
            was_completed = sender.completed
            inner_timeout()
            if (
                not was_completed
                and not sender.completed
                and abs(sender.cwnd - 1.0) > _EPS
            ):
                report(
                    f"timeout did not collapse cwnd to 1 (cwnd={sender.cwnd:.6f})"
                )

        timer._callback = on_timeout


class ArqBoundChecker(InvariantChecker):
    """No link frame is transmitted more than RTmax times."""

    name = "arq-rtmax"

    def attach(self, scenario, report) -> None:
        """Wrap both wireless ports' transmit path."""
        for port in (scenario.bs_port, scenario.mh_port):
            self._wrap(port, report)

    @staticmethod
    def _wrap(port, report) -> None:
        rtmax = port.arq_config.rtmax
        original_transmit = port._transmit

        def transmit(entry):
            original_transmit(entry)
            if entry.attempts > rtmax:
                report(
                    f"{port.name}: frame uid={entry.frame.uid} reached "
                    f"{entry.attempts} transmissions (RTmax={rtmax})"
                )

        port._transmit = transmit


class EbsnWindowChecker(InvariantChecker):
    """EBSN must never modify cwnd/ssthresh (the paper's Appendix).

    The source's entire EBSN response is "re-arm the retransmission
    timer at the current timeout"; any window action would change the
    congestion behaviour the paper explicitly leaves untouched.
    Source-quench messages *do* shrink the window, so only
    ``IcmpType.EBSN`` deliveries are held to this contract.
    """

    name = "ebsn-no-window-action"

    def attach(self, scenario, report) -> None:
        """Wrap the source's ICMP handler with a window snapshot."""
        sender = scenario.sender
        original_handle = sender._handle_icmp

        def handle_icmp(message: IcmpMessage):
            window_before = (sender.cwnd, sender.ssthresh)
            original_handle(message)
            if (
                message.icmp_type is IcmpType.EBSN
                and (sender.cwnd, sender.ssthresh) != window_before
            ):
                report(
                    f"EBSN handler modified the window: cwnd "
                    f"{window_before[0]:.3f} -> {sender.cwnd:.3f}, ssthresh "
                    f"{window_before[1]:.3f} -> {sender.ssthresh:.3f}"
                )

        sender._handle_icmp = handle_icmp


class DeliveryChecker(InvariantChecker):
    """No delivery after FIN; delivered bytes never exceed produced bytes.

    Wraps the sink's in-order delivery path.  ``sender.transfer_bytes``
    is read at check time, so stream-fed senders (the interactive
    workload) are bounded by what the application has queued so far.
    """

    name = "delivery"

    def attach(self, scenario, report) -> None:
        """Wrap the sink's in-order delivery callback."""
        sink = scenario.sink
        sender = scenario.sender
        original_deliver = sink._deliver
        # Under SPLIT the source legitimately completes (relay ACKed
        # everything) while the relay is still draining to the sink, so
        # only the sink's own FIN bounds deliveries there.
        watch_sender = scenario.split_relay is None

        def deliver(payload_bytes):
            if sink.completed or (watch_sender and sender.completed):
                report(
                    f"{payload_bytes} B delivered after the connection "
                    f"completed (no delivery after FIN)"
                )
            original_deliver(payload_bytes)
            ceiling = getattr(sender, "transfer_bytes", None)
            if (
                ceiling is not None
                and sink.stats.useful_payload_bytes > ceiling
            ):
                report(
                    f"sink delivered {sink.stats.useful_payload_bytes} B "
                    f"in order but the source only produced {ceiling} B "
                    f"(duplicate delivery)"
                )

        sink._deliver = deliver


class ConservationChecker(InvariantChecker):
    """End-of-run byte/packet conservation and counter consistency."""

    name = "conservation"

    def finalize(self, scenario, result, report) -> None:
        """Check byte conservation and counter consistency at end of run."""
        sender = scenario.sender
        sink = scenario.sink
        metrics = result.metrics

        if result.completed:
            expected = getattr(sender, "transfer_bytes", None)
            delivered = sink.stats.useful_payload_bytes
            if expected is not None and delivered != expected:
                report(
                    f"completed transfer delivered {delivered} B in order "
                    f"but the source produced {expected} B"
                )

        if result.completed and metrics.goodput <= 0.0:
            report("completed transfer reports zero goodput")

        stats = sender.stats
        if stats.retransmitted_bytes_wire > stats.bytes_sent_wire:
            report(
                f"retransmitted wire bytes ({stats.retransmitted_bytes_wire}) "
                f"exceed total wire bytes ({stats.bytes_sent_wire})"
            )
        expected_retx = stats.segments_sent - sender.total_segments
        if result.completed and stats.retransmissions != expected_retx:
            report(
                f"retransmission accounting broke: counter says "
                f"{stats.retransmissions}, sends minus segments says "
                f"{expected_retx}"
            )
        # The split relay re-segments onto the wireless hop with its
        # own headers, so the source's wire bytes don't bound the
        # sink's (and goodput — their ratio — can exceed 1); every
        # other scheme forwards the source's packets unchanged.
        if scenario.split_relay is None:
            if metrics.goodput > 1.0 + _EPS:
                report(f"goodput exceeds 1: {metrics.goodput:.6f}")
            if metrics.useful_wire_bytes > metrics.bytes_sent_wire:
                report(
                    f"useful wire bytes ({metrics.useful_wire_bytes}) exceed "
                    f"bytes the source sent ({metrics.bytes_sent_wire})"
                )


def default_checkers(scenario):
    """The standard checker set for one scenario run."""
    return [
        TimerSanityChecker(),
        TcpStateChecker(),
        ArqBoundChecker(),
        EbsnWindowChecker(),
        DeliveryChecker(),
        ConservationChecker(),
    ]
