"""Replay bundles: deterministic reproduction of invariant violations.

A bundle is one JSON file capturing everything needed to re-run a
failed scenario bit-identically: the full
:class:`~repro.experiments.topology.ScenarioConfig` (reversibly
encoded, seed included), the violations observed, the tail of the
event log leading up to the failure, and the
:func:`~repro.experiments.cache.config_digest` / code-version token of
the run that produced it — the same content-addressing machinery the
result cache uses, so a bundle names the exact (config, seed, code)
point that failed.

``repro replay <bundle.json>`` (or :func:`replay_bundle`) rebuilds the
config and re-runs it under the validator.  Because every run is
deterministic given (config, seed), the replay either reproduces the
recorded violation exactly — confirming the bug — or proves the
failure was environmental (e.g. the code changed; the bundle records
the original code token so the mismatch is visible).
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from repro.experiments.cache import (
    code_version_token,
    config_digest,
    default_cache_dir,
)
from repro.validate.engine import InvariantViolationError, Violation

#: Bump when the bundle layout changes incompatibly.
BUNDLE_FORMAT = 1

#: Event-log lines kept in a bundle (the tail leading to the failure).
LOG_TAIL_LINES = 400


def default_bundle_dir() -> Path:
    """Where violation bundles are written unless told otherwise."""
    env = os.environ.get("REPRO_BUNDLE_DIR")
    if env:
        return Path(env)
    return default_cache_dir() / "bundles"


# ---------------------------------------------------------------------------
# Reversible config encoding
# ---------------------------------------------------------------------------
#
# The cache's _canonical() form is digest-oriented (enums lose their
# module, floats become repr strings) and cannot be decoded.  Bundles
# need the round trip, so they use a tagged encoding: dataclasses,
# enums and classes carry their import path.


def _qualify(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve(path: str) -> Any:
    module_name, _, qualname = path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def encode_value(value: Any) -> Any:
    """Encode ``value`` to a JSON-serializable, decodable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": _qualify(type(value)),
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return {"__enum__": _qualify(type(value)), "name": value.name}
    if isinstance(value, type):
        return {"__class__": _qualify(value)}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__qualname__} for a bundle")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if "__dataclass__" in value:
            cls = _resolve(value["__dataclass__"])
            fields = {k: decode_value(v) for k, v in value["fields"].items()}
            return cls(**fields)
        if "__enum__" in value:
            return getattr(_resolve(value["__enum__"]), value["name"])
        if "__class__" in value:
            return _resolve(value["__class__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Bundle objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplayBundle:
    """One loaded replay bundle."""

    config: Any  # the reconstructed ScenarioConfig
    seed: int
    digest: str
    code_token: str
    violations: Tuple[Violation, ...]
    event_log_tail: Tuple[str, ...]
    path: Optional[Path] = None


def write_bundle(config, violations: Sequence[Violation], log, bundle_dir=None) -> Path:
    """Persist one violation as a replay bundle; returns its path.

    ``log`` is the :class:`~repro.metrics.eventlog.EventLog` the
    validated run recorded (may be ``None``); only the last
    ``LOG_TAIL_LINES`` lines are kept.
    """
    directory = Path(bundle_dir) if bundle_dir is not None else default_bundle_dir()
    directory.mkdir(parents=True, exist_ok=True)
    digest = config_digest(config)
    tail: List[str] = []
    if log is not None:
        tail = [event.to_line() for event in log.events[-LOG_TAIL_LINES:]]
    payload = {
        "format": BUNDLE_FORMAT,
        "kind": "repro-replay-bundle",
        "digest": digest,
        "code_token": code_version_token(),
        "seed": config.seed,
        "config": encode_value(config),
        "violations": [
            {"checker": v.checker, "time": v.time, "message": v.message}
            for v in violations
        ],
        "event_log_tail": tail,
    }
    path = directory / f"violation-{digest[:12]}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_bundle(path) -> ReplayBundle:
    """Load and decode one replay bundle."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if payload.get("kind") != "repro-replay-bundle":
        raise ValueError(f"{path} is not a replay bundle")
    if payload.get("format") != BUNDLE_FORMAT:
        raise ValueError(
            f"{path}: bundle format {payload.get('format')!r} is not "
            f"supported (expected {BUNDLE_FORMAT})"
        )
    return ReplayBundle(
        config=decode_value(payload["config"]),
        seed=payload["seed"],
        digest=payload["digest"],
        code_token=payload["code_token"],
        violations=tuple(
            Violation(v["checker"], v["time"], v["message"])
            for v in payload["violations"]
        ),
        event_log_tail=tuple(payload["event_log_tail"]),
        path=path,
    )


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of re-running a bundle under the validator."""

    bundle: ReplayBundle
    #: Violations the replay produced (empty = did not reproduce).
    violations: Tuple[Violation, ...]
    #: True when the replay hit the same first violation (checker and
    #: message identical — runs are deterministic, so a real bug
    #: reproduces exactly).
    reproduced: bool
    #: Whether the code version still matches the recording.
    code_matches: bool


def replay_bundle(path) -> ReplayOutcome:
    """Re-run a bundle's scenario under validation and compare."""
    from repro.experiments.topology import run_scenario

    bundle = load_bundle(path)
    code_matches = bundle.code_token == code_version_token()
    violations: Tuple[Violation, ...] = ()
    try:
        # bundle_dir=False: reproducing a failure must not mint a new
        # bundle for the same failure.
        run_scenario(bundle.config, validate=True, bundle_dir=False)
    except InvariantViolationError as err:
        violations = err.violations
    reproduced = bool(
        violations
        and bundle.violations
        and violations[0].checker == bundle.violations[0].checker
        and violations[0].message == bundle.violations[0].message
    )
    return ReplayOutcome(
        bundle=bundle,
        violations=violations,
        reproduced=reproduced,
        code_matches=code_matches,
    )
