"""Differential oracles: two computations that must agree exactly.

Where a single run has no ground truth, two independent paths to the
same answer do.  These oracles are usable both as test fixtures (the
property suite calls them directly) and as standalone invariants
(``repro``'s claim validation can fold them in):

* :func:`assert_variants_agree_on_clean_channel` — on an error-free
  channel, Tahoe, Reno and NewReno are *the same protocol*: all three
  differ only in their loss responses, and with zero loss none of
  those paths executes.  Any divergence means a variant leaks
  behaviour into the common path.
* :func:`assert_serial_parallel_identical` — the parallel experiment
  engine must be a pure performance optimization: fanning seeds over
  a process pool may never change a single aggregate bit.

Both raise :class:`OracleDisagreement` with a field-by-field account
on failure and return the compared results on success.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.experiments.config import wan_scenario
from repro.experiments.runner import ReplicatedResult, run_replicated
from repro.experiments.topology import (
    ChannelConfig,
    ScenarioConfig,
    Scheme,
    run_scenario,
)

#: The TCP variants that must be indistinguishable without loss.
TCP_VARIANTS = ("tahoe", "reno", "newreno")


class OracleDisagreement(AssertionError):
    """Two computations that must agree, did not."""


def clean_channel_config(
    tcp_variant: str, transfer_bytes: int = 16 * 1024, seed: int = 1
) -> ScenarioConfig:
    """A WAN scenario whose channel never corrupts a frame."""
    config = wan_scenario(
        scheme=Scheme.BASIC,
        transfer_bytes=transfer_bytes,
        tcp_variant=tcp_variant,
        seed=seed,
        record_trace=False,
    )
    return replace(config, channel=ChannelConfig(ber_good=0.0, ber_bad=0.0))


def assert_variants_agree_on_clean_channel(
    transfer_bytes: int = 16 * 1024, seed: int = 1
) -> Dict[str, object]:
    """Run all variants losslessly; their metrics must be identical."""
    results = {
        variant: run_scenario(clean_channel_config(variant, transfer_bytes, seed))
        for variant in TCP_VARIANTS
    }
    reference = TCP_VARIANTS[0]
    fingerprints = {
        variant: (
            result.metrics.duration,
            result.metrics.segments_sent,
            result.metrics.retransmissions,
            result.metrics.timeouts,
            result.metrics.throughput_bps,
        )
        for variant, result in results.items()
    }
    for variant, fingerprint in fingerprints.items():
        if fingerprint != fingerprints[reference]:
            raise OracleDisagreement(
                f"TCP variants diverged on an error-free channel: "
                f"{reference}={fingerprints[reference]} but "
                f"{variant}={fingerprint} "
                f"(duration, segments, retx, timeouts, throughput)"
            )
    for variant, result in results.items():
        if result.metrics.retransmissions or result.metrics.timeouts:
            raise OracleDisagreement(
                f"{variant} retransmitted on an error-free channel: "
                f"{result.metrics.retransmissions} retx, "
                f"{result.metrics.timeouts} timeouts"
            )
    return results


#: Aggregate fields that must match bit-for-bit between engines.
_AGGREGATE_FIELDS = (
    "replications",
    "throughput_bps_mean",
    "throughput_bps_std",
    "goodput_mean",
    "retransmitted_kbytes_mean",
    "timeouts_mean",
    "duration_mean",
    "tput_th_bps",
)


def assert_serial_parallel_identical(
    config: Optional[ScenarioConfig] = None,
    replications: int = 4,
    base_seed: int = 1,
    workers: int = 2,
) -> Tuple[ReplicatedResult, ReplicatedResult]:
    """Serial vs. process-pool replication must agree on every bit."""
    if config is None:
        config = wan_scenario(transfer_bytes=8 * 1024, record_trace=False)
    serial = run_replicated(config, replications, base_seed, workers=1)
    pooled = run_replicated(config, replications, base_seed, workers=workers)
    for field_name in _AGGREGATE_FIELDS:
        serial_value = getattr(serial, field_name)
        pooled_value = getattr(pooled, field_name)
        if serial_value != pooled_value:
            raise OracleDisagreement(
                f"serial and parallel engines disagree on {field_name}: "
                f"{serial_value!r} != {pooled_value!r}"
            )
    return serial, pooled
