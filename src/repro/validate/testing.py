"""Fault-injection doubles for validator self-tests.

A validator that has never seen a violation is untested.  These
senders misbehave in precisely the ways the checkers guard against,
and — crucially — they are *importable and configurable through*
:class:`~repro.experiments.topology.ScenarioConfig.sender_factory`,
so a violation they cause can be captured in a replay bundle and
reproduced by ``repro replay`` from the config alone.
"""

from __future__ import annotations

from repro.tcp.tahoe import TahoeSender


class CwndMutatingEbsnSender(TahoeSender):
    """Violates EBSN's no-window-action contract.

    The paper's EBSN response is exactly "re-arm the retransmission
    timer"; this double also grows cwnd on every re-arm, which the
    ``ebsn-no-window-action`` checker must catch on the first EBSN
    that arrives.
    """

    def rearm_rtx_timer(self) -> None:
        """Re-arm the timer, then illegally inflate the window."""
        super().rearm_rtx_timer()
        self.cwnd += 5.0


class BackwardsAckSender(TahoeSender):
    """Violates sequence monotonicity: snd_una jumps backwards.

    Processing any ACK beyond segment 2 rewinds ``snd_una``, which the
    ``tcp-state`` checker must flag on the spot.
    """

    def _handle_new_ack(self, ack_seq: int) -> None:
        """Process the ACK, then illegally rewind ``snd_una``."""
        super()._handle_new_ack(ack_seq)
        if self.snd_una > 2:
            self.snd_una -= 2
