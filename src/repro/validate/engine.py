"""Runtime invariant-validation engine.

The paper's claims are protocol invariants: EBSN never touches the
congestion window, link-layer ARQ never exceeds its RTmax attempt
budget, every transferred byte is delivered exactly once.  Fixed-
parameter scenario tests assert these at a handful of points; this
engine checks them *online*, on any run, by attaching observers to the
existing hook surfaces (simulator event dispatch, TCP source
callbacks, the wireless ports' ARQ machinery, the sink's delivery
path).

A :class:`Validator` wires a set of :class:`InvariantChecker` objects
into a built-but-not-yet-run
:class:`~repro.experiments.topology.Scenario`.  Checkers observe only
— they never consume randomness or change timing, so a validated run
is bit-identical to an unvalidated one.  On the first violation the
run aborts with :class:`InvariantViolationError`;
:func:`run_validated` then emits a *replay bundle* (see
:mod:`repro.validate.bundle`) from which ``repro replay`` reproduces
the failure deterministically.

Validation is opt-in.  ``run_scenario(config, validate=True)`` turns
it on for one run; :func:`set_default_validation` (used by the test
suite's conftest) or ``REPRO_VALIDATE=1`` flips the process default.
Benchmarks leave it off so perf numbers are unaffected.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation (picklable, primitive fields)."""

    checker: str
    time: float
    message: str

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"[{self.checker}] t={self.time:.6f}: {self.message}"


class InvariantViolationError(AssertionError):
    """Raised when a checker detects an invariant violation.

    Carries the violation records and (when :func:`run_validated`
    wrote one) the path of the replay bundle that reproduces the
    failure.  Defined with an explicit ``__reduce__`` so the error
    survives pickling across the parallel engine's process pool.
    """

    def __init__(
        self,
        message: str,
        violations: Sequence[Violation] = (),
        bundle_path: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.violations = tuple(violations)
        self.bundle_path = bundle_path

    def __reduce__(self):
        return (type(self), (self.message, self.violations, self.bundle_path))

    def __str__(self) -> str:
        if self.bundle_path:
            return f"{self.message}\nreplay bundle: {self.bundle_path}"
        return self.message


# ---------------------------------------------------------------------------
# Process-wide default (opt-in switch)
# ---------------------------------------------------------------------------

_default_validation: Optional[bool] = None


def set_default_validation(enabled: Optional[bool]) -> None:
    """Set the process-wide validation default.

    ``True``/``False`` override the environment; ``None`` restores
    "consult ``$REPRO_VALIDATE``".  The test suite's conftest turns
    this on so every ``run_scenario`` in tier-1 runs validated.
    """
    global _default_validation
    _default_validation = enabled


def validation_default() -> bool:
    """Whether runs validate when the caller does not say."""
    if _default_validation is not None:
        return _default_validation
    return os.environ.get("REPRO_VALIDATE", "").lower() not in ("", "0", "false", "no")


# ---------------------------------------------------------------------------
# Checker base and validator
# ---------------------------------------------------------------------------


class InvariantChecker:
    """Base class for pluggable invariant checkers.

    ``attach`` wires the checker's observers into a built scenario
    before it runs; ``finalize`` runs end-of-run checks over the
    result.  Both receive a ``report(message)`` callable that records
    the violation (and, in fail-fast mode, aborts the run by raising).
    Checkers must be pure observers: no RNG draws, no scheduling, no
    state mutation visible to the system under test.
    """

    #: Stable identifier used in violation records and replay bundles.
    name = "checker"

    def attach(self, scenario, report) -> None:
        """Install observers on a built, not-yet-run scenario."""

    def finalize(self, scenario, result, report) -> None:
        """Check end-of-run invariants over the completed result."""


class Validator:
    """Attaches checkers to one scenario and collects violations."""

    def __init__(
        self, checkers: Sequence[InvariantChecker], fail_fast: bool = True
    ) -> None:
        self.checkers = list(checkers)
        self.fail_fast = fail_fast
        self.violations: List[Violation] = []
        self._scenario = None

    def attach(self, scenario) -> "Validator":
        """Wire every checker into ``scenario``; returns self."""
        self._scenario = scenario
        for checker in self.checkers:
            checker.attach(scenario, self._reporter(checker))
        return self

    def finalize(self, result) -> None:
        """Run every checker's end-of-run pass over ``result``."""
        for checker in self.checkers:
            checker.finalize(self._scenario, result, self._reporter(checker))

    def _reporter(self, checker: InvariantChecker):
        def report(message: str) -> None:
            now = self._scenario.sim.now if self._scenario is not None else 0.0
            violation = Violation(checker=checker.name, time=now, message=message)
            self.violations.append(violation)
            if self.fail_fast:
                raise InvariantViolationError(
                    f"invariant violated {violation.describe()}",
                    violations=tuple(self.violations),
                )

        return report


def run_validated(scenario, bundle_dir=None, checkers=None, wall_timeout=None):
    """Run a built scenario under the invariant engine.

    On violation, writes a replay bundle (canonical config + seed +
    event-log tail) and re-raises :class:`InvariantViolationError`
    with ``bundle_path`` set.  ``bundle_dir`` chooses where bundles
    land (``None`` = the default directory, ``False`` = don't write
    one — the replay path uses this to avoid bundling the bundle).
    ``wall_timeout`` arms the engine's wall-clock watchdog, exactly as
    in the unvalidated path.
    """
    from repro.metrics.eventlog import attach_to_scenario
    from repro.validate.bundle import write_bundle
    from repro.validate.checkers import default_checkers

    validator = Validator(
        checkers if checkers is not None else default_checkers(scenario)
    )
    log = attach_to_scenario(scenario)
    validator.attach(scenario)
    try:
        result = scenario.run(wall_timeout=wall_timeout)
        validator.finalize(result)
    except InvariantViolationError as err:
        if bundle_dir is not False:
            err.bundle_path = str(
                write_bundle(scenario.config, err.violations, log, bundle_dir)
            )
        raise
    return result
