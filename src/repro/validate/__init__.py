"""Runtime invariant validation with deterministic failure replay.

See :mod:`repro.validate.engine` for the architecture.  The usual
entry points:

* ``run_scenario(config, validate=True)`` — one validated run.
* ``run_replicated(..., validate=True)`` / ``sweep(..., validate=True)``
  — validated replication (also behind the CLI's ``--validate``).
* :func:`set_default_validation` — flip the process default (the test
  suite turns it on; benchmarks leave it off).
* :func:`replay_bundle` / ``repro replay <bundle>`` — reproduce a
  recorded violation deterministically.

:mod:`repro.validate.oracles` is imported explicitly by its users (it
depends on the experiment layer, which itself imports this package).
"""

from repro.validate.bundle import (
    ReplayBundle,
    ReplayOutcome,
    default_bundle_dir,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from repro.validate.checkers import (
    ArqBoundChecker,
    ConservationChecker,
    DeliveryChecker,
    EbsnWindowChecker,
    TcpStateChecker,
    TimerSanityChecker,
    default_checkers,
)
from repro.validate.engine import (
    InvariantChecker,
    InvariantViolationError,
    Validator,
    Violation,
    run_validated,
    set_default_validation,
    validation_default,
)

__all__ = [
    "ArqBoundChecker",
    "ConservationChecker",
    "DeliveryChecker",
    "EbsnWindowChecker",
    "InvariantChecker",
    "InvariantViolationError",
    "ReplayBundle",
    "ReplayOutcome",
    "TcpStateChecker",
    "TimerSanityChecker",
    "Validator",
    "Violation",
    "default_bundle_dir",
    "default_checkers",
    "load_bundle",
    "replay_bundle",
    "run_validated",
    "set_default_validation",
    "validation_default",
    "write_bundle",
]
