"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``    — one transfer under a chosen scheme; print metrics.
* ``trace``  — render the paper's Fig 3/4/5 trace plots.
* ``sweep``  — packet-size (WAN) or bad-period (LAN) sweep.
* ``figure`` — regenerate a paper figure's data series (7-11).
* ``csdp``   — the multi-connection scheduling study.
* ``handoff``— the two-cell handoff study.
* ``congestion`` — the wired-congestion / ECN / EBSN interaction.
* ``validate`` — run every claim check and print a ✓/✗ report.
* ``replay`` — re-run a recorded invariant-violation bundle.
* ``profile`` — cProfile one run; hot functions + perf counters.
* ``report`` — assemble benchmarks/out/*.txt into one REPORT.md.

Simulation commands accept ``--validate`` to attach the runtime
invariant engine (:mod:`repro.validate`); a violation aborts the
command with exit code 3 and prints the replay-bundle path.

The multi-run commands (``sweep``, ``figure``) are fault-tolerant:
``--timeout`` bounds each unit's wall-clock time, ``--retries`` bounds
how often a timed-out or crashed unit is re-run, ``--resume JOURNAL``
checkpoints completed units to a journal file (and skips them when
re-invoked after a crash or Ctrl-C), and ``--fail-fast`` aborts on the
first quarantined unit instead of degrading to partial aggregates.
Partial aggregates print an explicit completeness report and exit 1;
an aborted campaign exits 4; SIGINT/SIGTERM exits 130 after flushing
the journal.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.csdp import CsdpStudyConfig, run_csdp_study
from repro.experiments.ascii_plot import format_table
from repro.experiments.config import (
    LAN_BAD_PERIODS,
    WAN_BAD_PERIODS,
    WAN_PACKET_SIZES,
    lan_scenario,
    trace_example_scenario,
    wan_scenario,
)
from repro.experiments.figures import (
    SweepSeries,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
    figure_11,
    lan_theoretical_mbps,
    trace_figure,
    wan_theoretical_kbps,
)
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.faults import (
    CampaignError,
    CampaignInterrupted,
    CompletenessReport,
    merge_reports,
)
from repro.experiments.journal import CampaignJournal
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme, run_scenario

SCHEMES = {s.value: s for s in Scheme}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1, help="master RNG seed")
    parser.add_argument(
        "--scheme",
        choices=sorted(SCHEMES),
        default="ebsn",
        help="recovery scheme (default: ebsn)",
    )


def _add_engine(parser: argparse.ArgumentParser) -> None:
    """Parallel-engine knobs shared by the multi-run commands."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for seed fan-out (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"disable the on-disk result cache ({default_cache_dir()})",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per simulation unit; a unit past it is "
        "killed, retried, and eventually quarantined",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-runs allowed per timed-out/crashed unit "
        "(default: the engine's retry policy)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="checkpoint journal path: completed units are appended as "
        "they finish and skipped on re-invocation (created if missing)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the whole campaign on the first quarantined unit "
        "(default: degrade to partial aggregates and report what's missing)",
    )


def _engine_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """The result cache to use, honoring ``--no-cache``."""
    return None if args.no_cache else ResultCache()


def _engine_journal(args: argparse.Namespace) -> Optional[CampaignJournal]:
    """The checkpoint journal to use, honoring ``--resume``."""
    return CampaignJournal(args.resume) if args.resume else None


def _engine_kwargs(args: argparse.Namespace, journal) -> dict:
    """The fault-tolerant engine knobs shared by sweep/figure."""
    return dict(
        workers=args.workers,
        cache=_engine_cache(args),
        validate=args.validate,
        timeout=args.timeout,
        retries=args.retries,
        fail_fast=args.fail_fast,
        journal=journal,
    )


def _finish_campaign(report: CompletenessReport) -> int:
    """Print the completeness report; exit 1 when aggregates are partial."""
    print()
    print(report.describe())
    return 0 if report.complete else 1


def _add_validate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--validate",
        action="store_true",
        help="attach the runtime invariant engine to every simulated run",
    )


def _single_run_validate(args: argparse.Namespace) -> Optional[bool]:
    """``run_scenario``'s validate arg: explicit on, else process default."""
    return True if args.validate else None


def _cmd_run(args: argparse.Namespace) -> int:
    scheme = SCHEMES[args.scheme]
    if args.lan:
        config = lan_scenario(
            scheme=scheme,
            bad_period_mean=args.bad_period,
            transfer_bytes=args.transfer_kb * 1024,
            seed=args.seed,
        )
    else:
        config = wan_scenario(
            scheme=scheme,
            packet_size=args.packet_size,
            bad_period_mean=args.bad_period,
            transfer_bytes=args.transfer_kb * 1024,
            seed=args.seed,
        )
    result = run_scenario(config, validate=_single_run_validate(args))
    m = result.metrics
    unit = "Mbps" if args.lan else "kbps"
    tput = m.throughput_bps / (1e6 if args.lan else 1e3)
    tput_th = result.tput_th_bps / (1e6 if args.lan else 1e3)
    print(f"scheme            : {scheme.value}")
    print(f"completed         : {result.completed}")
    print(f"duration          : {m.duration:.2f} s")
    print(f"throughput        : {tput:.3f} {unit}  (theoretical max {tput_th:.3f})")
    print(f"goodput           : {m.goodput * 100:.1f} %")
    print(f"timeouts          : {m.timeouts}")
    print(f"fast retransmits  : {m.fast_retransmits}")
    print(f"retransmitted     : {m.retransmitted_kbytes:.1f} KB")
    return 0 if result.completed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    result = run_scenario(
        trace_example_scenario(SCHEMES[args.scheme]),
        validate=_single_run_validate(args),
    )
    m = result.metrics
    print(
        f"{args.scheme}: {m.throughput_kbps:.2f} kbps, goodput "
        f"{m.goodput * 100:.1f}%, {m.timeouts} timeouts, "
        f"{m.retransmissions} source retransmissions"
    )
    print(result.trace.render(width=args.width, t_max=args.t_max))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    journal = _engine_journal(args)
    try:
        return _run_sweep(args, journal)
    finally:
        if journal is not None:
            journal.close()


def _run_sweep(args: argparse.Namespace, journal) -> int:
    scheme = SCHEMES[args.scheme]
    engine = _engine_kwargs(args, journal)
    reports: List[CompletenessReport] = []
    rows = []
    if args.lan:
        for bad in LAN_BAD_PERIODS:
            r = run_replicated(
                lan_scenario(
                    scheme=scheme,
                    bad_period_mean=bad,
                    transfer_bytes=args.transfer_kb * 1024,
                ),
                replications=args.replications,
                base_seed=args.seed,
                **engine,
            )
            reports.append(r.report)
            rows.append(
                [
                    f"{bad:g}",
                    f"{r.throughput_mbps:.3f}",
                    f"{lan_theoretical_mbps(bad):.3f}",
                    f"{r.goodput_mean:.3f}",
                    f"{r.timeouts_mean:.1f}",
                ]
            )
        print(
            format_table(
                ["bad(s)", "tput(Mbps)", "tput_th", "goodput", "timeouts/run"],
                rows,
                title=f"LAN sweep, scheme={scheme.value}:",
            )
        )
    else:
        for size in WAN_PACKET_SIZES:
            r = run_replicated(
                wan_scenario(
                    scheme=scheme,
                    packet_size=size,
                    bad_period_mean=args.bad_period,
                    transfer_bytes=args.transfer_kb * 1024,
                    record_trace=False,
                ),
                replications=args.replications,
                base_seed=args.seed,
                **engine,
            )
            reports.append(r.report)
            rows.append(
                [
                    f"{size}",
                    f"{r.throughput_kbps:.2f}",
                    f"{r.goodput_mean:.3f}",
                    f"{r.timeouts_mean:.1f}",
                ]
            )
        print(
            format_table(
                ["size(B)", "tput(kbps)", "goodput", "timeouts/run"],
                rows,
                title=(
                    f"WAN packet-size sweep, scheme={scheme.value}, "
                    f"bad={args.bad_period:g}s "
                    f"(tput_th={wan_theoretical_kbps(args.bad_period):.2f} kbps):"
                ),
            )
        )
    return _finish_campaign(merge_reports(reports))


def _figure_reports(data) -> List[CompletenessReport]:
    """Every completeness report buried in a figure's nested series."""
    reports: List[CompletenessReport] = []

    def walk(obj) -> None:
        if isinstance(obj, dict):
            for value in obj.values():
                walk(value)
        elif isinstance(obj, SweepSeries):
            for result in obj.points.values():
                if result.report is not None:
                    reports.append(result.report)

    walk(data)
    return reports


def _cmd_figure(args: argparse.Namespace) -> int:
    n = args.number
    if n in (3, 4, 5):
        result = trace_figure(n, validate=_single_run_validate(args))
        print(result.trace.render(width=100, t_max=60.0, title=f"Figure {n}"))
        return 0
    journal = _engine_journal(args)
    try:
        return _run_figure(args, journal)
    finally:
        if journal is not None:
            journal.close()


def _run_figure(args: argparse.Namespace, journal) -> int:
    n = args.number
    reps = args.replications
    engine = _engine_kwargs(args, journal)
    if n == 7 or n == 8:
        series = (figure_7 if n == 7 else figure_8)(replications=reps, **engine)
        header = ["size(B)"] + [f"bad={b:g}s" for b in WAN_BAD_PERIODS]
        rows = [
            [str(size)]
            + [f"{series[b].points[size].throughput_kbps:.2f}" for b in WAN_BAD_PERIODS]
            for size in WAN_PACKET_SIZES
        ]
        rows.append(["tput_th"] + [f"{wan_theoretical_kbps(b):.2f}" for b in WAN_BAD_PERIODS])
        print(format_table(header, rows, title=f"Figure {n} (throughput, kbps):"))
        return _finish_campaign(merge_reports(_figure_reports(series)))
    if n == 9:
        data = figure_9(replications=reps, **engine)
        for label, series in data.items():
            header = ["size(B)"] + [f"bad={b:g}s" for b in WAN_BAD_PERIODS]
            rows = [
                [str(size)]
                + [
                    f"{series[b].points[size].retransmitted_kbytes_mean:.1f}"
                    for b in WAN_BAD_PERIODS
                ]
                for size in WAN_PACKET_SIZES
            ]
            print(format_table(header, rows, title=f"Figure 9, {label} (KB retransmitted):"))
        return _finish_campaign(merge_reports(_figure_reports(data)))
    if n in (10, 11):
        data = (
            figure_10(replications=reps, **engine)
            if n == 10
            else figure_11(replications=reps, **engine)
        )
        if n == 10:
            rows = [
                [
                    f"{bad:g}",
                    f"{lan_theoretical_mbps(bad):.3f}",
                    f"{data['basic'].points[bad].throughput_mbps:.3f}",
                    f"{data['ebsn'].points[bad].throughput_mbps:.3f}",
                ]
                for bad in LAN_BAD_PERIODS
            ]
            print(
                format_table(
                    ["bad(s)", "tput_th", "basic(Mbps)", "ebsn(Mbps)"],
                    rows,
                    title="Figure 10:",
                )
            )
        else:
            rows = [
                [
                    f"{bad:g}",
                    f"{data['basic'].points[bad].retransmitted_kbytes_mean:.1f}",
                    f"{data['ebsn'].points[bad].retransmitted_kbytes_mean:.1f}",
                ]
                for bad in LAN_BAD_PERIODS
            ]
            print(
                format_table(
                    ["bad(s)", "basic(KB)", "ebsn(KB)"], rows, title="Figure 11:"
                )
            )
        return _finish_campaign(merge_reports(_figure_reports(data)))
    print(f"unknown figure {n}; know 3, 4, 5, 7, 8, 9, 10, 11", file=sys.stderr)
    return 2


def _cmd_csdp(args: argparse.Namespace) -> int:
    rows = []
    for sched in ("fifo", "rr", "csdp"):
        result = run_csdp_study(
            CsdpStudyConfig(
                scheduler=sched,
                n_connections=args.connections,
                transfer_bytes=args.transfer_kb * 1024,
                seed=args.seed,
            )
        )
        rows.append(
            [
                sched,
                f"{result.aggregate_throughput_bps / 1000:.2f}",
                f"{result.radio.idle_blocked_time:.1f}",
                f"{result.total_timeouts}",
                f"{result.fairness_index:.3f}",
            ]
        )
    print(
        format_table(
            ["scheduler", "aggregate(kbps)", "HOL idle(s)", "timeouts", "fairness"],
            rows,
            title=f"{args.connections} connections, independent fading:",
        )
    )
    return 0


def _cmd_handoff(args: argparse.Namespace) -> int:
    from repro.handoff import HandoffConfig, HandoffScheme, run_handoff_scenario

    rows = []
    for scheme in HandoffScheme:
        tput = timeouts = 0.0
        for seed in range(1, args.seeds + 1):
            result = run_handoff_scenario(
                HandoffConfig(
                    scheme=scheme,
                    handoff_interval=args.interval,
                    disconnect_time=args.disconnect,
                    transfer_bytes=args.transfer_kb * 1024,
                    seed=seed,
                )
            )
            tput += result.metrics.throughput_kbps / args.seeds
            timeouts += result.timeouts / args.seeds
        rows.append([scheme.value, f"{tput:.2f}", f"{timeouts:.1f}"])
    print(
        format_table(
            ["scheme", "tput(kbps)", "timeouts/run"],
            rows,
            title=(
                f"Handoff every {args.interval:g} s, "
                f"{args.disconnect * 1000:.0f} ms outage:"
            ),
        )
    )
    return 0


def _cmd_congestion(args: argparse.Namespace) -> int:
    from repro.experiments.congestion import (
        CongestedScenarioConfig,
        run_congested_scenario,
    )

    rows = []
    for scheme in (Scheme.BASIC, Scheme.EBSN):
        for ecn in (False, True):
            tput = drops = timeouts = 0.0
            for seed in range(1, args.seeds + 1):
                result = run_congested_scenario(
                    CongestedScenarioConfig(
                        scheme=scheme, ecn=ecn, cross_load=args.load, seed=seed
                    )
                )
                tput += result.metrics.throughput_kbps / args.seeds
                drops += result.bottleneck_drops / args.seeds
                timeouts += result.timeouts / args.seeds
            rows.append(
                [
                    scheme.value,
                    "on" if ecn else "off",
                    f"{tput:.2f}",
                    f"{drops:.1f}",
                    f"{timeouts:.1f}",
                ]
            )
    print(
        format_table(
            ["scheme", "ECN", "tput(kbps)", "drops", "timeouts"],
            rows,
            title=f"Bottleneck at {args.load:.0%} cross load:",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.claims import validate_all

    results = validate_all(scale=args.scale, seeds=args.seeds)
    width = max(len(c.statement) for c, _ in results)
    failures = 0
    for claim, result in results:
        mark = "\u2713" if result.passed else "\u2717"
        if not result.passed:
            failures += 1
        print(f"[{mark}] {claim.source:8s} {claim.statement:<{width}}  {result.detail}")
    total = len(results)
    print(f"\n{total - failures}/{total} claims validated "
          f"(scale {args.scale:g}, {args.seeds} seeds)")
    return 0 if failures == 0 else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.validate.bundle import load_bundle, replay_bundle

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, ValueError) as err:
        print(f"cannot load bundle {args.bundle}: {err}", file=sys.stderr)
        return 2
    print(f"bundle    : {args.bundle}")
    print(f"captured  : {len(bundle.violations)} violation(s), "
          f"seed {bundle.config.seed}, scheme {bundle.config.scheme.value}")
    for violation in bundle.violations:
        print(f"  - {violation.describe()}")
    outcome = replay_bundle(args.bundle)
    if not outcome.code_matches:
        print("note      : code has changed since capture "
              "(digest mismatch); replay may diverge")
    if outcome.reproduced:
        print(f"replayed  : REPRODUCED — {len(outcome.violations)} violation(s)")
        for violation in outcome.violations:
            print(f"  - {violation.describe()}")
        return 0
    if outcome.violations:
        print(f"replayed  : DIFFERENT violations ({len(outcome.violations)}):")
        for violation in outcome.violations:
            print(f"  - {violation.describe()}")
    else:
        print("replayed  : no violation reproduced (run was clean)")
    return 1


#: Display order for the assembled report: paper figures first, then
#: the negative results, then the extension studies and ablations.
_REPORT_ORDER = [
    "fig3_5_summary",
    "fig3_trace_basic",
    "fig4_trace_local_recovery",
    "fig5_trace_ebsn",
    "fig7_wan_basic",
    "fig8_wan_ebsn",
    "fig9_wan_retx",
    "fig10_lan_tput",
    "fig11_lan_retx",
    "quench_negative",
    "snoop_vs_ebsn",
    "csdp_scheduling",
    "congestion_ecn_ebsn",
    "handoff_schemes",
    "ablation_granularity",
    "ablation_rtmax",
    "ablation_robust_timer",
    "ablation_tcp_variant",
    "ablation_arq_window",
    "ablation_window",
    "snoop_loss_regime",
    "interactive_latency",
    "energy_per_scheme",
]


def _profile_config(args: argparse.Namespace):
    scheme = SCHEMES[args.scheme]
    if args.lan:
        return lan_scenario(
            scheme=scheme,
            bad_period_mean=args.bad_period,
            transfer_bytes=args.transfer_kb * 1024,
            seed=args.seed,
        )
    return wan_scenario(
        scheme=scheme,
        packet_size=args.packet_size,
        bad_period_mean=args.bad_period,
        transfer_bytes=args.transfer_kb * 1024,
        seed=args.seed,
        record_trace=False,
    )


def _print_perf_summary(scenario) -> None:
    sim = scenario.sim
    channel = scenario.channel
    counters = sim.perf_counters()
    hits = channel.fast_path_hits
    misses = channel.fast_path_misses
    total = hits + misses
    print(f"events executed   : {counters['events_executed']}")
    print(f"wall time         : {counters['run_wall_seconds']:.4f} s")
    print(f"events/sec        : {counters['events_per_sec']:,.0f}")
    print(f"heap pushes       : {counters['heap_pushes']}")
    print(f"heap compactions  : {counters['heap_compactions']}")
    print(f"frames tested     : {channel.frames_tested}")
    if total:
        print(
            f"channel fast path : {hits}/{total} hits ({hits / total:.1%})"
        )


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one uninstrumented run and report the hot functions."""
    import cProfile
    import pstats

    from repro.experiments.topology import Scenario

    scenario = Scenario(_profile_config(args))
    if args.events_per_sec:
        scenario.run()
        _print_perf_summary(scenario)
        return 0
    profiler = cProfile.Profile()
    profiler.enable()
    scenario.run()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    _print_perf_summary(scenario)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    out_dir = Path(args.out_dir)
    if not out_dir.is_dir():
        print(
            f"{out_dir} not found — run `pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    available = {p.stem: p for p in sorted(out_dir.glob("*.txt"))}
    ordered = [n for n in _REPORT_ORDER if n in available]
    ordered += [n for n in sorted(available) if n not in _REPORT_ORDER]
    if not ordered:
        print(f"no .txt outputs in {out_dir}", file=sys.stderr)
        return 2
    sections = ["# Benchmark report", "",
                "Assembled from the figure benchmarks' saved outputs.", ""]
    for name in ordered:
        sections.append(f"## {name}")
        sections.append("")
        sections.append("```")
        sections.append(available[name].read_text().rstrip())
        sections.append("```")
        sections.append("")
    report_path = Path(args.output)
    report_path.write_text("\n".join(sections))
    print(f"wrote {report_path} ({len(ordered)} sections)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TCP-over-wireless reproduction (ICDCS '97): run the "
        "paper's experiments from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one transfer and print metrics")
    _add_common(p)
    p.add_argument("--lan", action="store_true", help="LAN config instead of WAN")
    p.add_argument("--packet-size", type=int, default=576)
    p.add_argument("--bad-period", type=float, default=1.0)
    p.add_argument("--transfer-kb", type=int, default=100)
    _add_validate(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("trace", help="render a Figs 3-5 style trace")
    _add_common(p)
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--t-max", type=float, default=60.0)
    _add_validate(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("sweep", help="packet-size (WAN) or bad-period (LAN) sweep")
    _add_common(p)
    p.add_argument("--lan", action="store_true")
    p.add_argument("--bad-period", type=float, default=1.0)
    p.add_argument("--transfer-kb", type=int, default=100)
    p.add_argument("--replications", type=int, default=5)
    _add_engine(p)
    _add_validate(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("figure", help="regenerate a paper figure's series")
    p.add_argument("number", type=int, help="figure number (3-5, 7-11)")
    p.add_argument("--replications", type=int, default=5)
    _add_engine(p)
    _add_validate(p)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("csdp", help="multi-connection scheduling study")
    p.add_argument("--connections", type=int, default=4)
    p.add_argument("--transfer-kb", type=int, default=50)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_csdp)

    p = sub.add_parser("handoff", help="two-cell handoff study")
    p.add_argument("--interval", type=float, default=8.0)
    p.add_argument("--disconnect", type=float, default=0.3)
    p.add_argument("--transfer-kb", type=int, default=60)
    p.add_argument("--seeds", type=int, default=3)
    p.set_defaults(func=_cmd_handoff)

    p = sub.add_parser("congestion", help="congestion / ECN / EBSN interaction")
    p.add_argument("--load", type=float, default=0.9)
    p.add_argument("--seeds", type=int, default=3)
    p.set_defaults(func=_cmd_congestion)

    p = sub.add_parser("validate", help="run every claim check (\u2713/\u2717 report)")
    p.add_argument("--scale", type=float, default=0.3, help="transfer scale factor")
    p.add_argument("--seeds", type=int, default=3)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "replay", help="re-run a recorded invariant-violation bundle"
    )
    p.add_argument("bundle", help="path to a violation-*.json replay bundle")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "profile",
        help="cProfile one run; print hot functions and perf counters",
    )
    _add_common(p)
    p.add_argument("--lan", action="store_true", help="LAN config instead of WAN")
    p.add_argument("--packet-size", type=int, default=576)
    p.add_argument("--bad-period", type=float, default=1.0)
    p.add_argument("--transfer-kb", type=int, default=100)
    p.add_argument("--top", type=int, default=15, help="functions to print")
    p.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "ncalls"],
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    p.add_argument(
        "--events-per-sec",
        action="store_true",
        help="skip the profiler; print only the throughput summary",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("report", help="assemble benchmark outputs into REPORT.md")
    p.add_argument("--out-dir", default="benchmarks/out")
    p.add_argument("--output", default="REPORT.md")
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    from repro.validate.engine import InvariantViolationError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except InvariantViolationError as err:
        print(f"invariant violation: {err}", file=sys.stderr)
        for violation in err.violations:
            print(f"  - {violation.describe()}", file=sys.stderr)
        if err.bundle_path:
            print(
                f"replay bundle written: {err.bundle_path}\n"
                f"reproduce with: python -m repro replay {err.bundle_path}",
                file=sys.stderr,
            )
        return 3
    except CampaignInterrupted as err:
        print(str(err), file=sys.stderr)
        if err.journal_path:
            print(
                f"journal flushed: {err.journal_path} "
                f"({err.completed}/{err.total} units checkpointed)",
                file=sys.stderr,
            )
        return 130
    except CampaignError as err:
        print(f"campaign aborted: {err}", file=sys.stderr)
        if err.failure.bundle_path:
            print(
                f"reproduce with: python -m repro replay "
                f"{err.failure.bundle_path}",
                file=sys.stderr,
            )
        return 4


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
