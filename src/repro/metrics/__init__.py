"""Performance metrics and trace instrumentation.

The paper's two metrics (§1):

* **goodput** — useful data received at the destination over total
  data transmitted by the source (efficiency of network use);
* **throughput** — total data received by the end user over connection
  time (including the 40 B header per delivered packet, as in §5).

Plus the theoretical maxima of §5 and the "packet number mod 90 vs
time" trace plots of Figs 3–5.
"""

from repro.metrics.stats import ConnectionMetrics, compute_metrics
from repro.metrics.theoretical import theoretical_throughput_bps
from repro.metrics.trace import PacketTrace, TraceEntry

__all__ = [
    "ConnectionMetrics",
    "compute_metrics",
    "theoretical_throughput_bps",
    "PacketTrace",
    "TraceEntry",
]

# EventLog/EnergyModel live in submodules to avoid import cycles with
# repro.experiments (import them as repro.metrics.eventlog / .energy).
