"""Congestion-window trace analysis.

``TahoeSender(record_cwnd=True)`` appends ``(time, cwnd)`` samples on
every window change.  These helpers quantify the dynamics the paper's
prose describes — how often the window collapses, how much capacity
the collapsed window forgoes — and render the sawtooth for terminals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

Sample = Tuple[float, float]


@dataclass(frozen=True, slots=True)
class CwndSummary:
    """Aggregates over one connection's cwnd trace."""

    samples: int
    collapses: int
    mean_cwnd: float
    min_cwnd: float
    max_cwnd: float
    #: Fraction of connection time spent with cwnd strictly below the
    #: given threshold (computed by time-weighting the samples).
    time_below_threshold: float
    threshold: float


def summarize_cwnd(
    trace: Sequence[Sample],
    end_time: float,
    threshold: float = 2.0,
) -> CwndSummary:
    """Time-weighted summary of a cwnd trace.

    ``end_time`` closes the final segment (normally the connection's
    completion time).  A *collapse* is any sample that drops the
    window to 1 (Tahoe's loss response).
    """
    if not trace:
        raise ValueError("empty cwnd trace")
    if end_time < trace[-1][0]:
        raise ValueError("end_time precedes the last sample")

    collapses = sum(1 for _, w in trace if w == 1.0)
    values = [w for _, w in trace]

    weighted = 0.0
    below = 0.0
    total = 0.0
    for (t0, w), (t1, _) in zip(trace, list(trace[1:]) + [(end_time, 0.0)]):
        span = t1 - t0
        if span < 0:
            raise ValueError("cwnd trace is not time-ordered")
        weighted += w * span
        total += span
        if w < threshold:
            below += span
    mean = weighted / total if total > 0 else values[0]
    return CwndSummary(
        samples=len(trace),
        collapses=collapses,
        mean_cwnd=mean,
        min_cwnd=min(values),
        max_cwnd=max(values),
        time_below_threshold=below / total if total > 0 else 0.0,
        threshold=threshold,
    )


def render_cwnd(
    trace: Sequence[Sample],
    end_time: float,
    width: int = 80,
    height: int = 12,
    title: str = "",
) -> str:
    """ASCII sawtooth of the congestion window over time."""
    if not trace:
        return f"{title}\n(empty cwnd trace)\n"
    w_max = max(w for _, w in trace)
    w_max = max(w_max, 1.0)
    grid = [[" "] * width for _ in range(height)]
    # Sample-and-hold: each column shows the window in force then.
    samples: List[Sample] = list(trace)
    index = 0
    for col in range(width):
        t = col / max(width - 1, 1) * end_time
        while index + 1 < len(samples) and samples[index + 1][0] <= t:
            index += 1
        w = samples[index][1]
        row = int((w / w_max) * (height - 1))
        grid[height - 1 - row][col] = "#"
    lines = [title] if title else []
    lines.append(f"{w_max:6.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("       |" + "".join(row))
    lines.append(f"{0.0:6.1f} +" + "".join(grid[-1]))
    lines.append("        " + "-" * width)
    lines.append(f"        0{'time (s)':^{max(width - 12, 0)}}{end_time:>10.1f}")
    return "\n".join(lines) + "\n"
