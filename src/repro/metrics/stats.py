"""Connection-level performance metrics.

Derived from the sender's and sink's raw counters after a run.  All
byte quantities are "on-wire at the wired-network packet level"
(payload + 40 B header), matching how the paper reports throughput;
pure-payload variants are also provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp.sink import TcpSink
from repro.tcp.tahoe import TahoeSender


@dataclass(frozen=True, slots=True)
class ConnectionMetrics:
    """Everything the paper's figures read off one connection."""

    #: Wall-clock (simulated) duration from start to final ACK, seconds.
    duration: float
    #: User data delivered over duration — bps.  This is the paper's
    #: throughput metric: "the ratio of the total data received by the
    #: end user and the connection time", with the 40 B/packet header
    #: taken into account as overhead (§5) — i.e. headers excluded.
    throughput_bps: float
    #: Delivered bytes *including* headers, over duration — bps; this
    #: is what approaches the link's effective bandwidth when the link
    #: is fully utilized.
    wire_throughput_bps: float
    #: Useful wire bytes delivered / wire bytes sent by the source.
    goodput: float
    #: Total source transmissions that were retransmissions, bytes.
    retransmitted_bytes: int
    #: The same in KB, the unit of Figs 9 and 11.
    retransmitted_kbytes: float
    segments_sent: int
    retransmissions: int
    timeouts: int
    fast_retransmits: int
    bytes_sent_wire: int
    useful_wire_bytes: int

    @property
    def throughput_kbps(self) -> float:
        """Throughput in kbit/s (the unit of Figs 7–8)."""
        return self.throughput_bps / 1000.0

    @property
    def throughput_mbps(self) -> float:
        """Throughput in Mbit/s (the unit of Fig 10)."""
        return self.throughput_bps / 1e6


def compute_metrics(
    sender: TahoeSender, sink: TcpSink, end_at: "float | None" = None
) -> ConnectionMetrics:
    """Summarize a completed (or aborted) transfer.

    ``end_at`` overrides the connection end time — split-connection
    runs pass the sink's last delivery, because the fixed-host sender
    "completes" as soon as the base station has buffered everything.
    For an incomplete transfer the duration runs to the last sink
    activity.
    """
    stats = sender.stats
    if stats.started_at is None:
        raise ValueError("sender never started")
    end = end_at if end_at is not None else stats.completed_at
    if end is None:
        # Fall back to the last time data reached the sink.
        end = sink.stats.last_data_at if sink.stats.last_data_at is not None else stats.started_at
    duration = max(end - stats.started_at, 0.0)

    useful_wire = sink.stats.useful_wire_bytes
    useful_payload = sink.stats.useful_payload_bytes
    sent_wire = stats.bytes_sent_wire

    if duration > 0:
        throughput = useful_payload * 8 / duration
        wire_throughput = useful_wire * 8 / duration
    else:
        throughput = 0.0
        wire_throughput = 0.0
    goodput = useful_wire / sent_wire if sent_wire else 0.0

    return ConnectionMetrics(
        duration=duration,
        throughput_bps=throughput,
        wire_throughput_bps=wire_throughput,
        goodput=goodput,
        retransmitted_bytes=stats.retransmitted_bytes_wire,
        retransmitted_kbytes=stats.retransmitted_bytes_wire / 1024.0,
        segments_sent=stats.segments_sent,
        retransmissions=stats.retransmissions,
        timeouts=stats.timeouts,
        fast_retransmits=stats.fast_retransmits,
        bytes_sent_wire=sent_wire,
        useful_wire_bytes=useful_wire,
    )
