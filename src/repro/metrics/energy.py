"""Mobile-host energy accounting.

Battery life was the other scarce resource of 1990s mobile computing;
redundant retransmissions cost the mobile host radio-on time both ways
(receiving duplicate data, transmitting duplicate ACKs), and a longer
transfer costs idle listening.  The model uses WaveLAN-class radio
powers and the links' measured busy times:

    E = P_rx · (downlink airtime) + P_tx · (uplink airtime)
        + P_idle · (remaining connection time)

The receiver is charged for *all* downlink airtime (its radio decodes
corrupted frames too before the CRC rejects them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.topology import ScenarioResult


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """Radio power draw in watts (defaults: WaveLAN-class PCMCIA)."""

    tx_power_w: float = 1.7
    rx_power_w: float = 1.4
    idle_power_w: float = 1.1

    def __post_init__(self) -> None:
        if min(self.tx_power_w, self.rx_power_w, self.idle_power_w) < 0:
            raise ValueError("power draws must be >= 0")


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Energy breakdown for one connection at the mobile host."""

    tx_joules: float
    rx_joules: float
    idle_joules: float
    duration: float
    useful_bytes: int

    @property
    def total_joules(self) -> float:
        return self.tx_joules + self.rx_joules + self.idle_joules

    @property
    def joules_per_useful_kb(self) -> float:
        """The figure of merit: energy per KB of user data delivered."""
        if self.useful_bytes == 0:
            return float("inf")
        return self.total_joules / (self.useful_bytes / 1024)


def mobile_host_energy(
    result: ScenarioResult, model: EnergyModel = EnergyModel()
) -> EnergyReport:
    """Compute the MH's energy for a completed scenario run."""
    duration = result.metrics.duration
    rx_time = min(result.downlink.stats.busy_time, duration)
    tx_time = min(result.uplink.stats.busy_time, duration)
    idle_time = max(duration - rx_time - tx_time, 0.0)
    return EnergyReport(
        tx_joules=model.tx_power_w * tx_time,
        rx_joules=model.rx_power_w * rx_time,
        idle_joules=model.idle_power_w * idle_time,
        duration=duration,
        useful_bytes=result.sink.stats.useful_payload_bytes,
    )
