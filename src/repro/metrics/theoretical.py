"""Theoretical throughput bounds (§5).

The paper marks on every throughput figure the theoretical maximum in
the presence of errors:

    tput_th = lambda_bg / (lambda_bg + lambda_gb) · tput_max

where ``lambda_bg = 1/bad_mean`` and ``lambda_gb = 1/good_mean`` are
the Markov transition rates — i.e. tput_th is the effective bandwidth
scaled by the steady-state fraction of time the link is good.
``tput_max`` is the error-free effective bandwidth (12.8 kbps WAN
after FEC overhead, 2 Mbps LAN).
"""

from __future__ import annotations


def good_state_fraction(good_period_mean: float, bad_period_mean: float) -> float:
    """Steady-state fraction of time the channel spends in the good state."""
    if good_period_mean <= 0 or bad_period_mean <= 0:
        raise ValueError("period means must be positive")
    return good_period_mean / (good_period_mean + bad_period_mean)


def theoretical_throughput_bps(
    tput_max_bps: float,
    good_period_mean: float,
    bad_period_mean: float,
) -> float:
    """The paper's tput_th: error-free throughput × good-state fraction.

    >>> round(theoretical_throughput_bps(12_800, 10.0, 1.0))  # Fig 7 top line
    11636
    """
    if tput_max_bps <= 0:
        raise ValueError("tput_max must be positive")
    return tput_max_bps * good_state_fraction(good_period_mean, bad_period_mean)


def predicted_ebsn_throughput_bps(
    tput_max_bps: float,
    good_period_mean: float,
    bad_period_mean: float,
    packet_size: int,
    header_bytes: int = 40,
) -> float:
    """First-order prediction of EBSN's *payload* throughput.

    With source timeouts eliminated and local recovery riding out the
    fades, the connection should deliver payload at

        tput_th x payload/packet

    — the capacity left by the fades, discounted by header overhead.
    Simulation lands a few percent below this (ARQ retries straddling
    fade edges, backoff tails, the rare RTmax discard); the validation
    test pins that gap to under 20%.
    """
    if packet_size <= header_bytes:
        raise ValueError("packet smaller than its header")
    payload_fraction = (packet_size - header_bytes) / packet_size
    return (
        theoretical_throughput_bps(tput_max_bps, good_period_mean, bad_period_mean)
        * payload_fraction
    )
