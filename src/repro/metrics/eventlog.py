"""ns-style event logs: record, serialize, parse, analyze.

The original ns produced flat text traces (one line per network event)
that its users post-processed; the paper's Figs 3-5 came from such
traces.  :class:`EventLog` is this library's equivalent: components
are instrumented by wrapping their public callbacks
(:func:`attach_to_scenario`), every event becomes one record, and the
log round-trips through the classic whitespace format::

    <time> <event> <place> <kind> <size> <uid>

e.g. ``12.345678 corrupt BS->MH data 128 1042``.

:class:`EventLogAnalyzer` computes the usual post-processing products:
per-event counts, a delivered-bytes time series, and the distribution
of consecutive-loss run lengths (the burstiness fingerprint of the
two-state channel).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, TextIO, Tuple


class TraceParseError(ValueError):
    """A line that does not parse as the whitespace trace format.

    Raised instead of the bare ``ValueError`` that ``float()``/``int()``
    would produce, so callers (and humans reading a traceback) see the
    offending line and field rather than just ``could not convert
    string to float``.
    """


class EventType(enum.Enum):
    """What happened to a packet or frame."""

    WIRED_SEND = "wired_send"
    WIRED_RECV = "wired_recv"
    WIRED_DROP = "wired_drop"
    AIR_SEND = "air_send"
    AIR_RECV = "air_recv"
    CORRUPT = "corrupt"


@dataclass(frozen=True, slots=True)
class Event:
    """One trace record."""

    time: float
    event: EventType
    place: str
    kind: str
    size_bytes: int
    uid: int

    def to_line(self) -> str:
        """Serialize to the whitespace trace format."""
        return (
            f"{self.time:.6f} {self.event.value} {self.place} "
            f"{self.kind} {self.size_bytes} {self.uid}"
        )

    @classmethod
    def from_line(cls, line: str) -> "Event":
        parts = line.split()
        if len(parts) != 6:
            raise TraceParseError(
                f"malformed trace line (expected 6 whitespace-separated "
                f"fields, got {len(parts)}): {line!r}"
            )
        try:
            time = float(parts[0])
        except ValueError:
            raise TraceParseError(
                f"bad time field {parts[0]!r} in trace line: {line!r}"
            ) from None
        try:
            event = EventType(parts[1])
        except ValueError:
            raise TraceParseError(
                f"unknown event type {parts[1]!r} in trace line: {line!r} "
                f"(know {sorted(e.value for e in EventType)})"
            ) from None
        try:
            size_bytes = int(parts[4])
            uid = int(parts[5])
        except ValueError:
            raise TraceParseError(
                f"bad size/uid field in trace line: {line!r}"
            ) from None
        return cls(
            time=time,
            event=event,
            place=parts[2],
            kind=parts[3],
            size_bytes=size_bytes,
            uid=uid,
        )


class EventLog:
    """Collects events; writable to / readable from text."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def record(
        self,
        time: float,
        event: EventType,
        place: str,
        kind: str,
        size_bytes: int,
        uid: int,
    ) -> None:
        """Append one event."""
        self.events.append(Event(time, event, place, kind, size_bytes, uid))

    def __len__(self) -> int:
        return len(self.events)

    def lines(self) -> Iterable[str]:
        """Serialized trace lines, in recording order."""
        return (e.to_line() for e in self.events)

    def write(self, fp: TextIO) -> int:
        """Write all lines to a file; returns the count."""
        count = 0
        for line in self.lines():
            fp.write(line + "\n")
            count += 1
        return count

    @classmethod
    def read(cls, fp: TextIO) -> "EventLog":
        """Parse a whitespace-format trace; blank lines are skipped.

        Raises :class:`TraceParseError` (with the 1-based line number)
        on the first malformed line.
        """
        log = cls()
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                log.events.append(Event.from_line(line))
            except TraceParseError as err:
                raise TraceParseError(f"line {lineno}: {err}") from None
        return log


def attach_to_scenario(scenario) -> EventLog:
    """Instrument a built (not yet run) Scenario with an event log.

    Wraps the wired links' ``send``, the wireless links' ``send`` and
    delivery callbacks, and the channel's corruption test.  Must be
    called before :meth:`Scenario.run`.

    Instrumentation is strictly opt-in: the wrappers below exist only
    on scenarios this function was called on.  An uninstrumented run
    dispatches the original bound methods directly — no ``if log:``
    checks, no indirection, zero cost on the hot path.  That contract
    is what lets the validation layer afford full tracing while plain
    campaign runs pay nothing.
    """
    log = EventLog()
    sim = scenario.sim

    def wrap_wired(link):
        original_send = link.send

        def send(datagram):
            accepted = original_send(datagram)
            event = EventType.WIRED_SEND if accepted else EventType.WIRED_DROP
            log.record(
                sim.now, event, link.name, datagram.packet_type.value,
                datagram.size_bytes, datagram.uid,
            )
            return accepted

        link.send = send
        # Interfaces created before instrumentation captured the bound
        # method; rebind them to the wrapper.
        for node in (scenario.fh, scenario.bs, scenario.mh):
            for forward in node.routing._routes.values():
                if getattr(forward, "_send", None) == original_send:
                    forward._send = send
        original_receiver = link._receiver
        if original_receiver is not None:

            def receiver(datagram):
                log.record(
                    sim.now, EventType.WIRED_RECV, link.name,
                    datagram.packet_type.value, datagram.size_bytes, datagram.uid,
                )
                original_receiver(datagram)

            link.connect(receiver)

    def wrap_wireless(link):
        original_send = link.send

        def send(frame, on_tx_complete=None):
            log.record(
                sim.now, EventType.AIR_SEND, link.name, frame.kind.value,
                frame.size_bytes, frame.uid,
            )
            original_send(frame, on_tx_complete)

        link.send = send
        original_receiver = link._receiver
        if original_receiver is not None:

            def receiver(frame):
                log.record(
                    sim.now, EventType.AIR_RECV, link.name, frame.kind.value,
                    frame.size_bytes, frame.uid,
                )
                original_receiver(frame)

            link.connect(receiver)

    def wrap_channel(channel):
        original = channel.corrupts

        def corrupts(start, duration, nbits):
            corrupted = original(start, duration, nbits)
            if corrupted:
                log.record(
                    sim.now, EventType.CORRUPT, "channel", "frame",
                    nbits // 8, channel.frames_tested,
                )
            return corrupted

        channel.corrupts = corrupts

    wrap_wired(scenario.wired_down)
    wrap_wired(scenario.wired_up)
    wrap_wireless(scenario.downlink)
    wrap_wireless(scenario.uplink)
    wrap_channel(scenario.channel)
    return log


class EventLogAnalyzer:
    """Post-processing over an :class:`EventLog`."""

    def __init__(self, log: EventLog) -> None:
        self.log = log

    def counts(self) -> Dict[EventType, int]:
        """Events per type."""
        out: Dict[EventType, int] = {}
        for event in self.log.events:
            out[event.event] = out.get(event.event, 0) + 1
        return out

    def bytes_by_event(self, event: EventType) -> int:
        """Total bytes across events of one type."""
        return sum(e.size_bytes for e in self.log.events if e.event is event)

    def delivered_series(
        self, bin_width: float, place: Optional[str] = None
    ) -> List[Tuple[float, int]]:
        """(bin start, bytes received on the air) per time bin."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        bins: Dict[int, int] = {}
        for e in self.log.events:
            if e.event is not EventType.AIR_RECV:
                continue
            if place is not None and e.place != place:
                continue
            bins[int(e.time / bin_width)] = (
                bins.get(int(e.time / bin_width), 0) + e.size_bytes
            )
        return [(k * bin_width, v) for k, v in sorted(bins.items())]

    def loss_runs(self) -> List[int]:
        """Lengths of consecutive-corruption runs on the channel.

        A bursty (two-state) channel produces long runs; a uniform
        channel produces mostly 1s.  Computed over the interleaved
        air-send/corrupt sequence.
        """
        runs: List[int] = []
        current = 0
        for e in self.log.events:
            if e.event is EventType.CORRUPT:
                current += 1
            elif e.event is EventType.AIR_RECV:
                if current:
                    runs.append(current)
                current = 0
        if current:
            runs.append(current)
        return runs

    def mean_loss_run(self) -> float:
        """Average consecutive-loss run length (0.0 if lossless)."""
        runs = self.loss_runs()
        return sum(runs) / len(runs) if runs else 0.0
