"""Handoffs — the companion problem ([4], [17]).

The paper excludes handoffs from its study ("In a separate study [17],
we have proposed schemes to improve the performance of TCP in the
presence of handoffs") and summarizes Caceres & Iftode [4], who showed
that TCP stalls for close to a full (800 ms-ish) timeout after every
cell crossing and proposed forcing *fast retransmit* right after the
handoff completes.  This package builds that study:

* a two-base-station topology with a mobile host that periodically
  hands off between them, going deaf for a configurable disconnection
  interval;
* packets queued at the old base station are dropped (the baseline) or
  forwarded to the new one over the wired network;
* the mobile host can trigger the Caceres-Iftode recovery: re-send its
  current cumulative ACK three times on reattachment, forcing the
  source into fast retransmit instead of waiting out the timer.

Schemes compared by the benchmark: baseline, fast retransmit,
forwarding, and fast retransmit + forwarding.
"""

from repro.handoff.topology import (
    HandoffConfig,
    HandoffResult,
    HandoffScheme,
    run_handoff_scenario,
)

__all__ = [
    "HandoffConfig",
    "HandoffResult",
    "HandoffScheme",
    "run_handoff_scenario",
]
