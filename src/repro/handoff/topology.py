"""The two-cell handoff topology and scenario runner.

    FH ──wired──▶ R ──▶ BS1 ─┐
                 │           ├─ wireless ─ MH  (attached to one BS)
                 └──▶ BS2 ──┘

The mobile host alternates between the base stations every
``handoff_interval`` seconds; each crossing disconnects it for
``disconnect_time``.  The router learns the new location when the
mobile host reattaches (registration is piggybacked on reattachment,
as in Mobile-IP-style schemes with instantaneous binding updates — the
disconnection interval models the whole outage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.channel import markov_channel
from repro.engine import RandomStreams, Simulator
from repro.metrics import ConnectionMetrics, compute_metrics
from repro.net.ip import Fragmenter, Reassembler
from repro.net.link import WiredLink
from repro.net.node import Node
from repro.net.packet import Datagram, TcpAck, data_frame
from repro.net.queues import DropTailQueue
from repro.net.wireless import WirelessLink, WirelessLinkConfig
from repro.tcp import TahoeSender, TcpConfig, TcpSink


class HandoffScheme(enum.Enum):
    """Recovery schemes for cell crossings."""

    BASELINE = "baseline"  # old-BS queue dropped; timeout recovers
    FAST_RTX = "fast_rtx"  # MH forces fast retransmit on reattach [4]
    FORWARD = "forward"  # old BS forwards its queue to the new BS
    FAST_RTX_FORWARD = "fast_rtx_forward"  # both


@dataclass
class HandoffConfig:
    """Parameters of one handoff run."""

    scheme: HandoffScheme = HandoffScheme.BASELINE
    handoff_interval: float = 8.0
    disconnect_time: float = 0.3
    transfer_bytes: int = 100 * 1024
    packet_size: int = 576
    window_bytes: int = 4096
    wired_bandwidth_bps: float = 256_000.0
    wired_prop_delay: float = 0.005
    wireless: WirelessLinkConfig = field(default_factory=WirelessLinkConfig)
    #: Fading is kept mild by default to isolate the handoff effect.
    good_period_mean: float = 1000.0
    bad_period_mean: float = 0.01
    seed: int = 1
    max_sim_time: float = 50_000.0

    def __post_init__(self) -> None:
        if self.handoff_interval <= 0:
            raise ValueError("handoff_interval must be positive")
        if self.disconnect_time < 0:
            raise ValueError("disconnect_time must be >= 0")
        if self.disconnect_time >= self.handoff_interval:
            raise ValueError("disconnect_time must be shorter than the interval")


class CellPort:
    """A base station's simple (fire-and-forget) wireless port, with a
    holdable datagram queue so handoffs can drop or forward it."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        link: WirelessLink,
        mtu_bytes: int,
    ) -> None:
        self._sim = sim
        self.name = name
        self.link = link
        self.fragmenter = Fragmenter(mtu_bytes)
        self.queue: DropTailQueue[Datagram] = DropTailQueue(name=f"{name}.q")
        self.attached = False
        self._sending = False
        self.datagrams_dropped_in_handoff = 0
        self.datagrams_forwarded = 0

    def send_datagram(self, datagram: Datagram) -> None:
        """Queue a datagram for this cell's radio."""
        self.queue.offer(datagram, datagram.size_bytes)
        self._drain()

    def _drain(self) -> None:
        """Transmit one datagram at a time, so the backlog stays in the
        (handoff-manageable) datagram queue rather than being dumped
        into the radio's frame queue."""
        if not self.attached or self._sending:
            return
        datagram = self.queue.poll()
        if datagram is None:
            return
        self._sending = True
        fragments = self.fragmenter.fragment(datagram)
        for fragment in fragments[:-1]:
            self.link.send(data_frame(fragment))
        self.link.send(data_frame(fragments[-1]), on_tx_complete=self._datagram_done)

    def _datagram_done(self, frame) -> None:
        self._sending = False
        self._drain()

    def attach(self) -> None:
        """The mobile host entered this cell: resume transmission."""
        self.attached = True
        self._drain()

    def detach(self) -> None:
        """The mobile host left: hold the queue."""
        self.attached = False

    def take_queue(self) -> List[Datagram]:
        """Remove and return all held datagrams (for forwarding)."""
        datagrams = list(self.queue)
        self.queue.clear()
        return datagrams

    def drop_queue(self) -> int:
        """Discard all held datagrams; returns how many."""
        dropped = self.queue.clear()
        self.datagrams_dropped_in_handoff += dropped
        return dropped


@dataclass
class HandoffResult:
    metrics: ConnectionMetrics
    completed: bool
    handoffs: int
    timeouts: int
    fast_retransmits: int
    datagrams_dropped_in_handoffs: int
    datagrams_forwarded: int
    #: Source-silent gaps longer than half the disconnect time — the
    #: post-handoff stalls [4] measured.
    stall_time_total: float


def run_handoff_scenario(config: HandoffConfig) -> HandoffResult:
    """Run one transfer across periodic handoffs."""
    sim = Simulator()
    streams = RandomStreams(config.seed)

    fh, router, mh = Node("FH"), Node("R"), Node("MH")
    bs_nodes = {name: Node(name) for name in ("BS1", "BS2")}

    # Wired mesh.
    fh_r = WiredLink(sim, config.wired_bandwidth_bps, config.wired_prop_delay, name="FH->R")
    r_fh = WiredLink(sim, config.wired_bandwidth_bps, config.wired_prop_delay, name="R->FH")
    fh_r.connect(router.receive)
    r_fh.connect(fh.receive)
    fh.add_interface("wired", fh_r.send, "MH", "R")
    router.add_interface("up", r_fh.send, "FH")

    # Per-BS wired spurs and wireless cells (independent channels).
    ports: Dict[str, CellPort] = {}
    r_to_bs: Dict[str, WiredLink] = {}
    mh_uplinks: Dict[str, WirelessLink] = {}
    mh_reassembler = Reassembler(sim, timeout=30.0, name="mh")
    bs_reassemblers: Dict[str, Reassembler] = {}

    mh_attached_to: Dict[str, Optional[str]] = {"cell": None}

    def mh_receive_frame(frame, cell_name: str) -> None:
        if mh_attached_to["cell"] != cell_name:
            return  # out of range: the MH is not listening to this cell
        datagram = mh_reassembler.add(frame.fragment)
        if datagram is not None:
            mh.receive(datagram)

    for name in ("BS1", "BS2"):
        channel = markov_channel(
            config.good_period_mean,
            config.bad_period_mean,
            rng=streams.stream(f"errors-{name}"),
            sojourn_rng=streams.stream(f"sojourns-{name}"),
        )
        down = WirelessLink(sim, config.wireless, channel, name=f"{name}->MH")
        up = WirelessLink(sim, config.wireless, channel, name=f"MH->{name}")
        down.connect(lambda frame, cell=name: mh_receive_frame(frame, cell))
        bs_reasm = Reassembler(sim, timeout=30.0, name=f"{name}.up")
        bs_reassemblers[name] = bs_reasm

        def bs_uplink_frame(frame, node=bs_nodes[name], reasm=bs_reasm):
            datagram = reasm.add(frame.fragment)
            if datagram is not None:
                node.receive(datagram)

        up.connect(bs_uplink_frame)
        mh_uplinks[name] = up

        ports[name] = CellPort(sim, name, down, config.wireless.mtu_bytes)
        bs_nodes[name].add_interface("radio", ports[name].send_datagram, "MH")

        spur_down = WiredLink(
            sim, config.wired_bandwidth_bps, config.wired_prop_delay, name=f"R->{name}"
        )
        spur_up = WiredLink(
            sim, config.wired_bandwidth_bps, config.wired_prop_delay, name=f"{name}->R"
        )
        spur_down.connect(bs_nodes[name].receive)
        spur_up.connect(router.receive)
        bs_nodes[name].add_interface("wired", spur_up.send, "FH", "R", "BS1", "BS2")
        r_to_bs[name] = spur_down

    # The router forwards MH traffic toward the serving cell; during a
    # disconnection it keeps pointing at the *old* cell (binding
    # updates arrive only on reattachment), so packets sent during the
    # outage pile up at the old base station.
    route_state = {"target": "BS1"}
    router.routing.add_route("MH", lambda dg: r_to_bs[route_state["target"]].send(dg))
    router.routing.add_route("BS1", r_to_bs["BS1"].send)
    router.routing.add_route("BS2", r_to_bs["BS2"].send)

    # MH's uplink follows its attachment.
    mh_fragmenter = Fragmenter(config.wireless.mtu_bytes)

    def mh_send(datagram: Datagram) -> None:
        cell = mh_attached_to["cell"]
        if cell is None:
            return  # disconnected: ack lost
        for fragment in mh_fragmenter.fragment(datagram):
            mh_uplinks[cell].send(data_frame(fragment))

    mh.add_interface("uplink", mh_send, "FH", "R")

    # Transport.
    from repro.metrics import PacketTrace

    trace = PacketTrace()
    sender = TahoeSender(
        sim,
        fh,
        "MH",
        config=TcpConfig(
            packet_size=config.packet_size,
            window_bytes=config.window_bytes,
            transfer_bytes=config.transfer_bytes,
        ),
        on_complete=sim.stop,
        trace=trace,
    )
    fh.attach_agent(sender)
    sink = TcpSink(sim, mh, "FH")
    mh.attach_agent(sink)

    # Handoff machinery.
    counters = {"handoffs": 0}
    forward_queue = config.scheme in (
        HandoffScheme.FORWARD,
        HandoffScheme.FAST_RTX_FORWARD,
    )
    force_fast_rtx = config.scheme in (
        HandoffScheme.FAST_RTX,
        HandoffScheme.FAST_RTX_FORWARD,
    )

    def flush_old_cell(old: str, new: str) -> None:
        """Dispose of datagrams stranded at the old base station."""
        if forward_queue:
            stranded = ports[old].take_queue()
            ports[old].datagrams_forwarded += len(stranded)
            # BS-to-BS forwarding crosses the wired mesh (two hops).
            for i, datagram in enumerate(stranded):
                delay = 2 * config.wired_prop_delay + (i + 1) * (
                    datagram.size_bytes * 8 / config.wired_bandwidth_bps
                )
                sim.schedule(delay, ports[new].send_datagram, datagram)
        else:
            ports[old].drop_queue()

    def attach(cell: str) -> None:
        old = route_state["target"]
        mh_attached_to["cell"] = cell
        route_state["target"] = cell  # binding update reaches the router
        ports[cell].attach()
        if old != cell:
            # Anything that arrived at the old cell during the outage.
            flush_old_cell(old, cell)
        if force_fast_rtx and counters["handoffs"] > 0:
            # Caceres-Iftode: the MH re-sends its current cumulative
            # ACK three times, forcing the source's fast retransmit.
            for _ in range(3):
                ack = Datagram(
                    "MH", "FH", TcpAck(ack_seq=sink.next_expected), 40
                )
                mh.send(ack)

    def handoff() -> None:
        if sender.completed:
            return
        old = mh_attached_to["cell"]
        new = "BS2" if old == "BS1" else "BS1"
        counters["handoffs"] += 1
        mh_attached_to["cell"] = None
        ports[old].detach()
        flush_old_cell(old, new)
        sim.schedule(config.disconnect_time, attach, new)
        sim.schedule(config.handoff_interval, handoff)

    attach("BS1")
    sim.schedule(config.handoff_interval, handoff)
    sender.start()
    sim.run(until=config.max_sim_time)

    metrics = compute_metrics(sender, sink)
    stall_threshold = max(0.5, 2 * config.disconnect_time)
    stalls = trace.idle_gaps(min_gap=stall_threshold)
    return HandoffResult(
        metrics=metrics,
        completed=sender.completed,
        handoffs=counters["handoffs"],
        timeouts=sender.stats.timeouts,
        fast_retransmits=sender.stats.fast_retransmits,
        datagrams_dropped_in_handoffs=sum(
            p.datagrams_dropped_in_handoff for p in ports.values()
        ),
        datagrams_forwarded=sum(p.datagrams_forwarded for p in ports.values()),
        stall_time_total=sum(b - a for a, b in stalls),
    )
