"""Integration tests: full FH—BS—MH transfers under every scheme.

These are scaled-down versions of the paper's experiments, asserting
the qualitative results the paper reports.  The full-size runs live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    lan_scenario,
    trace_example_scenario,
    wan_scenario,
)
from repro.experiments.topology import Scheme, run_scenario


SMALL = 30 * 1024  # 30 KB keeps WAN runs ~50 simulated seconds


class TestBasicTcpWan:
    def test_transfer_completes(self):
        result = run_scenario(wan_scenario(transfer_bytes=SMALL))
        assert result.completed
        assert result.metrics.duration > 0

    def test_all_data_delivered_exactly_once(self):
        result = run_scenario(wan_scenario(transfer_bytes=SMALL))
        assert result.sink.stats.useful_payload_bytes == SMALL

    def test_bursty_losses_cause_timeouts_and_retransmissions(self):
        result = run_scenario(
            wan_scenario(transfer_bytes=SMALL, bad_period_mean=4.0, seed=2)
        )
        assert result.metrics.timeouts > 0
        assert result.metrics.retransmissions > 0
        assert result.metrics.goodput < 1.0

    def test_error_free_channel_has_no_retransmissions(self):
        result = run_scenario(
            wan_scenario(
                transfer_bytes=SMALL, bad_period_mean=1e-3, good_period_mean=1e6
            )
        )
        assert result.metrics.retransmissions == 0
        assert result.metrics.goodput == pytest.approx(1.0)

    def test_throughput_below_theoretical(self):
        result = run_scenario(wan_scenario(transfer_bytes=SMALL, bad_period_mean=2.0))
        assert result.metrics.wire_throughput_bps < result.tput_th_bps * 1.05

    def test_determinism_same_seed(self):
        a = run_scenario(wan_scenario(transfer_bytes=SMALL, seed=5))
        b = run_scenario(wan_scenario(transfer_bytes=SMALL, seed=5))
        assert a.metrics.duration == b.metrics.duration
        assert a.metrics.segments_sent == b.metrics.segments_sent

    def test_different_seeds_differ(self):
        a = run_scenario(wan_scenario(transfer_bytes=SMALL, seed=5))
        b = run_scenario(wan_scenario(transfer_bytes=SMALL, seed=6))
        assert a.metrics.duration != b.metrics.duration


class TestLocalRecoveryWan:
    def test_improves_goodput_over_basic(self):
        def mean_goodput(scheme):
            return sum(
                run_scenario(
                    wan_scenario(
                        scheme, transfer_bytes=SMALL, bad_period_mean=2.0, seed=seed
                    )
                ).metrics.goodput
                for seed in range(1, 6)
            ) / 5

        assert mean_goodput(Scheme.LOCAL_RECOVERY) > mean_goodput(Scheme.BASIC)

    def test_source_can_still_time_out(self):
        """§4.2.1: local recovery does not eliminate source timeouts."""
        timeouts = 0
        for seed in range(1, 6):
            result = run_scenario(
                wan_scenario(
                    Scheme.LOCAL_RECOVERY,
                    transfer_bytes=SMALL,
                    bad_period_mean=4.0,
                    seed=seed,
                )
            )
            timeouts += result.metrics.timeouts
        assert timeouts > 0

    def test_link_layer_retransmissions_happen(self):
        result = run_scenario(
            wan_scenario(Scheme.LOCAL_RECOVERY, transfer_bytes=SMALL, bad_period_mean=2.0)
        )
        assert result.bs_port.stats.link_retransmissions > 0


class TestEbsnWan:
    def test_nearly_eliminates_timeouts(self):
        """The headline claim: EBSN removes source timeouts.

        One residual corner case exists (and is documented in
        EXPERIMENTS.md): when a fade outlasts the ARQ's whole RTmax
        budget, the base station discards everything and goes idle, so
        no further "failed attempts" generate EBSNs and the source can
        finally time out.  Across seeds this is rare; local recovery
        alone times out every run.
        """
        ebsn_timeouts = 0
        local_timeouts = 0
        for seed in range(1, 6):
            ebsn_timeouts += run_scenario(
                wan_scenario(
                    Scheme.EBSN, transfer_bytes=SMALL, bad_period_mean=4.0, seed=seed
                )
            ).metrics.timeouts
            local_timeouts += run_scenario(
                wan_scenario(
                    Scheme.LOCAL_RECOVERY,
                    transfer_bytes=SMALL,
                    bad_period_mean=4.0,
                    seed=seed,
                )
            ).metrics.timeouts
        assert ebsn_timeouts <= 5
        assert ebsn_timeouts < local_timeouts

    def test_beats_basic_tcp_throughput(self):
        basic = run_scenario(
            wan_scenario(
                Scheme.BASIC, transfer_bytes=SMALL, bad_period_mean=4.0,
                packet_size=1536,
            )
        )
        ebsn = run_scenario(
            wan_scenario(
                Scheme.EBSN, transfer_bytes=SMALL, bad_period_mean=4.0,
                packet_size=1536,
            )
        )
        assert ebsn.metrics.throughput_bps > 1.4 * basic.metrics.throughput_bps

    def test_ebsn_messages_flow_and_rearm(self):
        result = run_scenario(
            wan_scenario(Scheme.EBSN, transfer_bytes=SMALL, bad_period_mean=4.0)
        )
        assert result.ebsn is not None
        assert result.ebsn.ebsn_sent > 0
        assert result.sender.stats.ebsn_received > 0
        assert result.sender.stats.ebsn_timer_rearms == result.sender.stats.ebsn_received

    def test_no_state_kept_at_base_station(self):
        """EBSN's advantage over snoop: the generator holds no
        per-connection state — only counters."""
        result = run_scenario(
            wan_scenario(Scheme.EBSN, transfer_bytes=SMALL, bad_period_mean=2.0)
        )
        generator = result.ebsn
        state_attrs = {
            k: v
            for k, v in vars(generator).items()
            if not k.startswith("_") and not isinstance(v, (int, float, type(None)))
        }
        assert state_attrs == {}


class TestQuenchWan:
    def test_quench_does_not_eliminate_timeouts(self):
        """§4.2.2: source quench cannot save packets already in flight."""
        timeouts = 0
        for seed in range(1, 6):
            result = run_scenario(
                wan_scenario(
                    Scheme.QUENCH, transfer_bytes=SMALL, bad_period_mean=4.0, seed=seed
                )
            )
            timeouts += result.metrics.timeouts
            assert result.quench is not None and result.quench.quench_sent > 0
            assert result.sender.stats.quench_received > 0
        assert timeouts > 0

    def test_ebsn_beats_quench(self):
        """§4.2.2: quench leaves timeouts in place; EBSN removes them."""

        def totals(scheme):
            timeouts, tput = 0, 0.0
            for seed in range(1, 6):
                m = run_scenario(
                    wan_scenario(
                        scheme, transfer_bytes=SMALL, bad_period_mean=4.0, seed=seed
                    )
                ).metrics
                timeouts += m.timeouts
                tput += m.throughput_bps
            return timeouts, tput / 5

        quench_timeouts, quench_tput = totals(Scheme.QUENCH)
        ebsn_timeouts, ebsn_tput = totals(Scheme.EBSN)
        assert ebsn_timeouts < quench_timeouts
        assert ebsn_tput >= 0.9 * quench_tput


class TestSnoopWan:
    def test_snoop_recovers_locally(self):
        result = run_scenario(
            wan_scenario(Scheme.SNOOP, transfer_bytes=SMALL, bad_period_mean=2.0)
        )
        assert result.completed
        assert result.snoop is not None
        assert result.snoop.local_retransmissions > 0

    def test_snoop_suppresses_dupacks(self):
        result = run_scenario(
            wan_scenario(Scheme.SNOOP, transfer_bytes=SMALL, bad_period_mean=4.0, seed=3)
        )
        assert result.snoop.dupacks_suppressed >= 0  # counter wired up
        assert result.completed


class TestLan:
    LAN_SMALL = 512 * 1024

    def test_basic_lan_completes(self):
        result = run_scenario(
            lan_scenario(Scheme.BASIC, transfer_bytes=self.LAN_SMALL)
        )
        assert result.completed
        assert result.sink.stats.useful_payload_bytes == self.LAN_SMALL

    def test_ebsn_lan_zero_timeouts_and_full_goodput(self):
        for seed in (1, 2, 3):
            result = run_scenario(
                lan_scenario(
                    Scheme.EBSN,
                    transfer_bytes=self.LAN_SMALL,
                    bad_period_mean=0.8,
                    seed=seed,
                )
            )
            assert result.metrics.timeouts == 0
            assert result.metrics.goodput == pytest.approx(1.0, abs=0.02)

    def test_ebsn_lan_beats_basic_at_long_fades(self):
        def mean_tput(scheme):
            return sum(
                run_scenario(
                    lan_scenario(
                        scheme,
                        transfer_bytes=self.LAN_SMALL,
                        bad_period_mean=1.6,
                        seed=seed,
                    )
                ).metrics.throughput_bps
                for seed in range(1, 4)
            ) / 3

        assert mean_tput(Scheme.EBSN) > 1.1 * mean_tput(Scheme.BASIC)


class TestDeterministicTraces:
    def test_fig3_basic_has_many_timeouts(self):
        result = run_scenario(trace_example_scenario(Scheme.BASIC))
        assert result.metrics.timeouts >= 5
        assert result.trace.retransmissions > 10
        # Source goes silent during fades: visible stall gaps.
        assert result.trace.idle_gaps(min_gap=3.0)

    def test_fig5_ebsn_has_zero_timeouts(self):
        result = run_scenario(trace_example_scenario(Scheme.EBSN))
        assert result.metrics.timeouts == 0
        assert result.metrics.goodput == pytest.approx(1.0, abs=0.01)

    def test_scheme_ordering_matches_paper(self):
        """throughput: basic < quench <= local recovery <= EBSN."""
        tputs = {}
        for scheme in (Scheme.BASIC, Scheme.QUENCH, Scheme.LOCAL_RECOVERY, Scheme.EBSN):
            tputs[scheme] = run_scenario(
                trace_example_scenario(scheme)
            ).metrics.throughput_bps
        assert tputs[Scheme.BASIC] < tputs[Scheme.QUENCH]
        assert tputs[Scheme.QUENCH] <= tputs[Scheme.LOCAL_RECOVERY] * 1.02
        assert tputs[Scheme.LOCAL_RECOVERY] <= tputs[Scheme.EBSN] * 1.001

    def test_trace_reproducible(self):
        a = run_scenario(trace_example_scenario(Scheme.BASIC))
        b = run_scenario(trace_example_scenario(Scheme.BASIC))
        assert [e.time for e in a.trace.entries] == [e.time for e in b.trace.entries]


class TestRenoVariant:
    def test_reno_runs_end_to_end(self):
        result = run_scenario(
            wan_scenario(transfer_bytes=SMALL, bad_period_mean=2.0, tcp_variant="reno")
        )
        assert result.completed

    def test_reno_no_better_under_bursty_loss(self):
        """The extension ablation: fast recovery barely helps when
        whole windows die in a fade (no dupacks arrive at all)."""
        tahoe = run_scenario(
            wan_scenario(transfer_bytes=SMALL, bad_period_mean=4.0, seed=4)
        )
        reno = run_scenario(
            wan_scenario(
                transfer_bytes=SMALL, bad_period_mean=4.0, seed=4, tcp_variant="reno"
            )
        )
        # Allow either to win, but not by the margins EBSN delivers.
        ratio = reno.metrics.throughput_bps / tahoe.metrics.throughput_bps
        assert 0.5 < ratio < 1.5


class TestDelayedAcks:
    def test_lan_delayed_acks_halve_ack_traffic(self):
        """At LAN speeds segments arrive well inside the 200 ms delack
        timer, so most ACKs cover two segments."""
        from dataclasses import replace

        base = lan_scenario(transfer_bytes=512 * 1024, bad_period_mean=0.8)
        immediate = run_scenario(base)
        delayed = run_scenario(replace(base, delayed_acks=True))
        assert delayed.completed
        assert (
            delayed.sink.stats.acks_sent < 0.7 * immediate.sink.stats.acks_sent
        )

    def test_wan_delayed_acks_fall_back_to_the_timer(self):
        """At 12.8 kbps a segment takes ~0.45 s — longer than the
        delack timer — so delayed ACKs degenerate to timer-driven ACKs
        and mostly just add latency (the era advice against delack on
        slow links)."""
        from dataclasses import replace

        base = wan_scenario(transfer_bytes=SMALL, bad_period_mean=1.0)
        immediate = run_scenario(base)
        delayed = run_scenario(replace(base, delayed_acks=True))
        assert delayed.completed
        assert delayed.sink.stats.useful_payload_bytes == SMALL
        assert delayed.sink.stats.delayed_ack_timeouts > 10
        assert delayed.metrics.duration >= immediate.metrics.duration * 0.95
