"""Unit tests for the NewReno extension (partial-ACK recovery)."""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import Datagram, TcpAck, TcpSegment
from repro.tcp import NewRenoSender, TcpConfig


class Harness:
    def __init__(self, sim):
        self.node = Node("FH")
        self.sent = []
        self.node.add_interface("capture", self.sent.append, "MH")
        self.sender = NewRenoSender(
            sim,
            self.node,
            "MH",
            config=TcpConfig(
                packet_size=576, window_bytes=576 * 20, transfer_bytes=100 * 536
            ),
        )
        self.node.attach_agent(self.sender)
        self.sender.start()

    def ack(self, n):
        self.sender.receive(Datagram("MH", "FH", TcpAck(n), 40))

    def segments(self):
        return [d.payload.seq for d in self.sent if isinstance(d.payload, TcpSegment)]

    def enter_recovery(self, acks=8):
        for i in range(1, acks + 1):
            self.ack(i)
        for _ in range(3):
            self.ack(acks)  # three dupacks: hole at `acks`


class TestPartialAcks:
    def test_partial_ack_retransmits_next_hole(self, sim):
        h = Harness(sim)
        h.enter_recovery()
        assert h.sender.in_fast_recovery
        nxt = h.sender.snd_nxt
        # The retransmitted seq-8 arrives, but seq-9 is also lost:
        # partial ACK up to 9.
        h.ack(9)
        assert h.sender.in_fast_recovery  # stays in recovery
        assert h.segments().count(9) == 2  # hole 9 retransmitted at once
        assert h.sender.snd_una == 9

    def test_full_ack_exits_recovery(self, sim):
        h = Harness(sim)
        h.enter_recovery()
        recover = h.sender._recover_seq
        h.ack(recover)
        assert not h.sender.in_fast_recovery

    def test_multiple_holes_recovered_without_timeout(self, sim):
        """A burst that clips 3 segments is healed hole-by-hole."""
        h = Harness(sim)
        h.enter_recovery()  # hole at 8; suppose 9 and 10 also lost
        h.ack(9)
        h.ack(10)
        h.ack(h.sender._recover_seq)
        assert h.sender.stats.timeouts == 0
        assert h.segments().count(9) == 2
        assert h.segments().count(10) == 2

    def test_reno_vs_newreno_on_multi_loss(self, sim):
        """Reno needs another dupack episode per hole; NewReno does not."""
        from repro.tcp import RenoSender

        h = Harness(sim)
        h.enter_recovery()
        h.ack(9)  # partial
        # NewReno has already retransmitted 9; Reno at this point would
        # have deflated and would wait for three more dupacks.
        assert h.sender.in_fast_recovery

    def test_end_to_end_scenario(self):
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import run_scenario

        result = run_scenario(
            wan_scenario(
                transfer_bytes=20 * 1024, bad_period_mean=2.0, tcp_variant="newreno"
            )
        )
        assert result.completed
