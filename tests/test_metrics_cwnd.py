"""Tests for congestion-window trace analysis."""

from __future__ import annotations

import pytest

from repro.metrics.cwnd import render_cwnd, summarize_cwnd


class TestSummary:
    def test_time_weighted_mean(self):
        trace = [(0.0, 2.0), (10.0, 4.0)]  # 2 for 10 s, then 4 for 10 s
        summary = summarize_cwnd(trace, end_time=20.0)
        assert summary.mean_cwnd == pytest.approx(3.0)
        assert summary.min_cwnd == 2.0 and summary.max_cwnd == 4.0

    def test_collapse_count(self):
        trace = [(0.0, 4.0), (5.0, 1.0), (6.0, 2.0), (9.0, 1.0)]
        summary = summarize_cwnd(trace, end_time=10.0)
        assert summary.collapses == 2

    def test_time_below_threshold(self):
        trace = [(0.0, 1.0), (2.0, 8.0)]  # below 2.0 for 2 of 10 s
        summary = summarize_cwnd(trace, end_time=10.0, threshold=2.0)
        assert summary.time_below_threshold == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_cwnd([], end_time=1.0)
        with pytest.raises(ValueError):
            summarize_cwnd([(5.0, 1.0)], end_time=1.0)
        with pytest.raises(ValueError):
            summarize_cwnd([(1.0, 1.0), (0.5, 2.0)], end_time=2.0)


class TestRender:
    def test_render_contains_marks(self):
        out = render_cwnd([(0.0, 1.0), (5.0, 7.0)], end_time=10.0, width=40)
        assert "#" in out
        assert "7.0" in out

    def test_render_empty(self):
        assert "(empty" in render_cwnd([], end_time=1.0)


class TestEndToEnd:
    def test_scenario_cwnd_dynamics(self):
        """Basic TCP's window collapses every fade; EBSN's never does."""
        from dataclasses import replace

        from repro.experiments.config import trace_example_scenario
        from repro.experiments.topology import Scheme, run_scenario

        def run(scheme):
            config = replace(trace_example_scenario(scheme), record_cwnd=True)
            result = run_scenario(config)
            return summarize_cwnd(
                result.sender.stats.cwnd_trace, end_time=result.metrics.duration
            )

        basic = run(Scheme.BASIC)
        ebsn = run(Scheme.EBSN)
        assert basic.collapses >= 5
        assert ebsn.collapses == 0
        assert ebsn.mean_cwnd > basic.mean_cwnd
