"""Tests for the differential oracles.

The oracles themselves are assertions; these tests check both that
they pass on the healthy code (the actual differential guarantee) and
that they *fail loudly* when fed a genuine disagreement.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import wan_scenario
from repro.validate.oracles import (
    TCP_VARIANTS,
    OracleDisagreement,
    assert_serial_parallel_identical,
    assert_variants_agree_on_clean_channel,
    clean_channel_config,
)


class TestCleanChannelOracle:
    def test_variants_agree_without_loss(self):
        results = assert_variants_agree_on_clean_channel(
            transfer_bytes=12 * 1024
        )
        assert set(results) == set(TCP_VARIANTS)
        for result in results.values():
            assert result.completed
            assert result.metrics.retransmissions == 0
            assert result.metrics.timeouts == 0

    def test_clean_channel_config_is_lossless(self):
        config = clean_channel_config("tahoe")
        assert config.channel.ber_good == 0.0
        assert config.channel.ber_bad == 0.0

    def test_divergence_is_reported(self, monkeypatch):
        from repro.validate import oracles

        real = oracles.run_scenario
        # Sabotage: give newreno a different transfer size, which must
        # change its fingerprint and trip the oracle.
        def skewed(config, **kwargs):
            if config.tcp_variant == "newreno":
                config = replace(
                    config,
                    tcp=replace(config.tcp, transfer_bytes=4 * 1024),
                )
            return real(config, **kwargs)

        monkeypatch.setattr(oracles, "run_scenario", skewed)
        with pytest.raises(OracleDisagreement, match="diverged"):
            assert_variants_agree_on_clean_channel(transfer_bytes=12 * 1024)


class TestSerialParallelOracle:
    def test_engines_agree(self):
        config = wan_scenario(transfer_bytes=8 * 1024, record_trace=False)
        serial, pooled = assert_serial_parallel_identical(
            config, replications=3, workers=2
        )
        assert serial.replications == pooled.replications == 3
        assert serial.throughput_bps_mean == pooled.throughput_bps_mean

    def test_disagreement_is_reported(self, monkeypatch):
        from repro.validate import oracles

        real = oracles.run_replicated
        calls = {"n": 0}

        def skewed(config, replications, base_seed, workers):
            calls["n"] += 1
            result = real(config, replications, base_seed, workers=workers)
            if calls["n"] == 2:  # the "parallel" leg
                result = replace(
                    result, throughput_bps_mean=result.throughput_bps_mean + 1.0
                )
            return result

        monkeypatch.setattr(oracles, "run_replicated", skewed)
        with pytest.raises(OracleDisagreement, match="throughput_bps_mean"):
            assert_serial_parallel_identical(
                wan_scenario(transfer_bytes=8 * 1024, record_trace=False),
                replications=2,
                workers=2,
            )
