"""Tests for the replication runner and sweep helpers."""

from __future__ import annotations

import pytest

from repro.experiments.config import wan_scenario
from repro.experiments.runner import run_replicated, sweep
from repro.experiments.topology import Scheme


TINY = 5 * 1024


class TestRunReplicated:
    def test_aggregates_over_seeds(self):
        result = run_replicated(
            wan_scenario(transfer_bytes=TINY), replications=3, base_seed=10
        )
        assert result.replications == 3
        assert len(result.results) == 3
        assert result.throughput_bps_mean > 0
        seeds = {r.config.seed for r in result.results}
        assert seeds == {10, 11, 12}

    def test_single_replication_has_zero_std(self):
        result = run_replicated(wan_scenario(transfer_bytes=TINY), replications=1)
        assert result.throughput_bps_std == 0.0
        assert result.throughput_rel_std == 0.0

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError):
            run_replicated(wan_scenario(transfer_bytes=TINY), replications=0)

    def test_traces_disabled_in_replicated_runs(self):
        result = run_replicated(wan_scenario(transfer_bytes=TINY), replications=2)
        assert all(r.trace is None for r in result.results)

    def test_unit_conversions(self):
        result = run_replicated(wan_scenario(transfer_bytes=TINY), replications=1)
        assert result.throughput_kbps == pytest.approx(
            result.throughput_bps_mean / 1000
        )
        assert result.throughput_mbps == pytest.approx(
            result.throughput_bps_mean / 1e6
        )

    def test_incomplete_run_raises(self):
        config = wan_scenario(transfer_bytes=TINY)
        from dataclasses import replace

        config = replace(config, max_sim_time=0.01)  # cannot finish
        with pytest.raises(RuntimeError):
            run_replicated(config, replications=1)


class TestSweep:
    def test_one_point_per_value(self):
        points = sweep(
            [256, 576],
            lambda size: wan_scenario(packet_size=size, transfer_bytes=TINY),
            replications=1,
        )
        assert set(points) == {256, 576}
        assert all(p.replications == 1 for p in points.values())

    def test_paired_seeds_share_fade_timeline(self):
        """Same seed => same channel sojourns regardless of packet
        size (the variance-reduction design)."""
        from repro.experiments.topology import Scenario

        def sojourns(size):
            scenario = Scenario(
                wan_scenario(packet_size=size, transfer_bytes=TINY, seed=5)
            )
            channel = scenario.channel
            return [
                (round(a, 9), s.value) for a, _, s in channel.intervals(0, 50)
            ]

        assert sojourns(128) == sojourns(1536)


class TestConfidenceIntervals:
    def test_t_table(self):
        from repro.experiments.runner import t95

        assert t95(1) == pytest.approx(12.706)
        assert t95(9) == pytest.approx(2.262)
        assert t95(1000) == pytest.approx(1.96)
        with pytest.raises(ValueError):
            t95(0)

    def test_ci_zero_for_single_run(self):
        result = run_replicated(wan_scenario(transfer_bytes=TINY), replications=1)
        assert result.throughput_ci95_bps == 0.0

    def test_ci_positive_for_multiple_runs(self):
        result = run_replicated(wan_scenario(transfer_bytes=TINY), replications=3)
        assert result.throughput_ci95_bps > 0.0

    def test_significance_check(self):
        basic = run_replicated(
            wan_scenario(Scheme.BASIC, transfer_bytes=60 * 1024, bad_period_mean=4.0,
                         packet_size=1536),
            replications=12,
        )
        ebsn = run_replicated(
            wan_scenario(Scheme.EBSN, transfer_bytes=60 * 1024, bad_period_mean=4.0,
                         packet_size=1536),
            replications=12,
        )
        # The headline ~2x EBSN-vs-basic gap is statistically clean.
        assert ebsn.throughput_differs_from(basic)
        assert basic.throughput_differs_from(ebsn)
        # A distribution does not differ from itself.
        assert not basic.throughput_differs_from(basic)


class TestSweepOrderAndDuplicates:
    def test_preserves_input_order(self):
        points = sweep(
            [1536, 256, 576],
            lambda size: wan_scenario(packet_size=size, transfer_bytes=TINY),
            replications=1,
        )
        assert list(points) == [1536, 256, 576]

    def test_duplicate_value_raises(self):
        with pytest.raises(ValueError, match="duplicate sweep value"):
            sweep(
                [256, 576, 256],
                lambda size: wan_scenario(packet_size=size, transfer_bytes=TINY),
                replications=1,
            )

    def test_matches_individual_run_replicated(self):
        """The flattened batch must aggregate exactly like point-by-point."""
        make = lambda size: wan_scenario(packet_size=size, transfer_bytes=TINY)
        points = sweep([256, 576], make, replications=2, base_seed=4)
        for size in (256, 576):
            direct = run_replicated(make(size), replications=2, base_seed=4)
            assert (
                points[size].throughput_bps_mean == direct.throughput_bps_mean
            )
            assert points[size].throughput_bps_std == direct.throughput_bps_std
