"""End-to-end property tests: invariants over random configurations.

Whatever the scheme, seed, packet size or error condition, a completed
transfer must satisfy conservation and accounting invariants.  These
are the tests most likely to catch protocol-machinery bugs (duplicate
delivery, lost bytes, mis-counted retransmissions) that scenario tests
with fixed parameters would miss.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scheme, run_scenario

TRANSFER = 8 * 1024  # small transfers keep each example fast

SCHEMES = st.sampled_from(
    [Scheme.BASIC, Scheme.LOCAL_RECOVERY, Scheme.EBSN, Scheme.QUENCH, Scheme.SNOOP]
)

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scenario_configs(draw):
    scheme = draw(SCHEMES)
    seed = draw(st.integers(min_value=1, max_value=10_000))
    packet_size = draw(st.sampled_from([128, 256, 576, 1024, 1536]))
    bad = draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    return wan_scenario(
        scheme=scheme,
        packet_size=packet_size,
        bad_period_mean=bad,
        transfer_bytes=TRANSFER,
        seed=seed,
        record_trace=True,
    )


class TestConservation:
    @given(config=scenario_configs())
    @_slow
    def test_every_byte_delivered_exactly_once(self, config):
        result = run_scenario(config)
        assert result.completed
        assert result.sink.stats.useful_payload_bytes == TRANSFER

    @given(config=scenario_configs())
    @_slow
    def test_accounting_invariants(self, config):
        result = run_scenario(config)
        m = result.metrics
        s = result.sender.stats

        # Goodput can never exceed 1 (you cannot deliver more useful
        # bytes than you sent).
        assert 0.0 < m.goodput <= 1.0 + 1e-9
        # Useful wire bytes <= bytes the source put on the wire.
        assert m.useful_wire_bytes <= m.bytes_sent_wire
        # Retransmission counters are consistent.
        assert s.retransmissions == s.segments_sent - result.sender.total_segments
        assert s.retransmitted_bytes_wire <= s.bytes_sent_wire
        # Trace agrees with the sender's own counters.
        assert result.trace.retransmissions == s.retransmissions
        assert len(result.trace) == s.segments_sent

    @given(config=scenario_configs())
    @_slow
    def test_throughput_bounded_by_link_capacity(self, config):
        result = run_scenario(config)
        effective = config.wireless.effective_bandwidth_bps
        assert result.metrics.wire_throughput_bps <= effective * 1.05

    @given(config=scenario_configs())
    @_slow
    def test_determinism(self, config):
        a = run_scenario(config)
        b = run_scenario(config)
        assert a.metrics.duration == b.metrics.duration
        assert a.metrics.segments_sent == b.metrics.segments_sent
        assert a.metrics.timeouts == b.metrics.timeouts


class TestSchemeInvariants:
    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        bad=st.sampled_from([1.0, 2.0, 4.0]),
    )
    @_slow
    def test_ebsn_rearms_match_receipts(self, seed, bad):
        result = run_scenario(
            wan_scenario(
                Scheme.EBSN,
                transfer_bytes=TRANSFER,
                bad_period_mean=bad,
                seed=seed,
                record_trace=False,
            )
        )
        s = result.sender.stats
        # Every EBSN that arrives while data is outstanding re-arms the
        # timer; none may be silently dropped by the handler.
        assert s.ebsn_timer_rearms <= s.ebsn_received
        assert s.ebsn_received <= result.ebsn.ebsn_sent

    @given(seed=st.integers(min_value=1, max_value=10_000))
    @_slow
    def test_arq_frame_conservation(self, seed):
        result = run_scenario(
            wan_scenario(
                Scheme.LOCAL_RECOVERY,
                transfer_bytes=TRANSFER,
                bad_period_mean=2.0,
                seed=seed,
                record_trace=False,
            )
        )
        for port in (result.bs_port, result.mh_port):
            stats = port.stats
            # (The simulation stops the instant the final ACK lands, so
            # a port may legitimately still have a frame in flight —
            # "busy" is not asserted.)
            assert stats.frames_discarded + stats.siblings_dropped <= stats.frames_accepted
            # Link-level attempts >= accepted frames that got sent.
            assert (
                stats.first_transmissions + stats.link_retransmissions
                >= stats.link_acks_received
            )
