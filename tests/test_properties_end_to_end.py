"""End-to-end property tests: invariants over random configurations.

Whatever the scheme, seed, packet size or error condition, a completed
transfer must satisfy conservation and accounting invariants.  These
are the tests most likely to catch protocol-machinery bugs (duplicate
delivery, lost bytes, mis-counted retransmissions) that scenario tests
with fixed parameters would miss.

Example counts come from the Hypothesis profiles in ``conftest.py``:
the default ``tier1`` profile runs 25 examples per property; the
nightly CI job reruns everything with ``REPRO_HYPOTHESIS_PROFILE=nightly``
(200 examples).
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scheme, run_scenario
from repro.workloads.interactive import InteractiveConfig, run_interactive_session

TRANSFER = 8 * 1024  # small transfers keep each example fast

SCHEMES = st.sampled_from(
    [
        Scheme.BASIC,
        Scheme.LOCAL_RECOVERY,
        Scheme.EBSN,
        Scheme.QUENCH,
        Scheme.SNOOP,
        Scheme.SPLIT,
    ]
)


@st.composite
def scenario_configs(draw):
    scheme = draw(SCHEMES)
    seed = draw(st.integers(min_value=1, max_value=10_000))
    packet_size = draw(st.sampled_from([128, 256, 576, 1024, 1536]))
    bad = draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    return wan_scenario(
        scheme=scheme,
        packet_size=packet_size,
        bad_period_mean=bad,
        transfer_bytes=TRANSFER,
        seed=seed,
        record_trace=True,
    )


class TestConservation:
    @given(config=scenario_configs())
    def test_every_byte_delivered_exactly_once(self, config):
        result = run_scenario(config)
        assert result.completed
        assert result.sink.stats.useful_payload_bytes == TRANSFER

    @given(config=scenario_configs())
    def test_accounting_invariants(self, config):
        result = run_scenario(config)
        m = result.metrics
        s = result.sender.stats

        assert m.goodput > 0.0
        # Goodput can never exceed 1 (you cannot deliver more useful
        # bytes than you sent) and useful wire bytes are bounded by
        # what the source put on the wire — except under SPLIT, whose
        # relay re-segments onto the wireless hop with its own headers,
        # so the sink-side byte counts aren't bounded by the source's.
        if config.scheme is not Scheme.SPLIT:
            assert m.goodput <= 1.0 + 1e-9
            assert m.useful_wire_bytes <= m.bytes_sent_wire
        # Retransmission counters are consistent.
        assert s.retransmissions == s.segments_sent - result.sender.total_segments
        assert s.retransmitted_bytes_wire <= s.bytes_sent_wire
        # Trace agrees with the sender's own counters.
        assert result.trace.retransmissions == s.retransmissions
        assert len(result.trace) == s.segments_sent

    @given(config=scenario_configs())
    def test_throughput_bounded_by_link_capacity(self, config):
        result = run_scenario(config)
        effective = config.wireless.effective_bandwidth_bps
        assert result.metrics.wire_throughput_bps <= effective * 1.05

    @given(config=scenario_configs())
    def test_determinism(self, config):
        a = run_scenario(config)
        b = run_scenario(config)
        assert a.metrics.duration == b.metrics.duration
        assert a.metrics.segments_sent == b.metrics.segments_sent
        assert a.metrics.timeouts == b.metrics.timeouts


class TestSchemeInvariants:
    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        bad=st.sampled_from([1.0, 2.0, 4.0]),
    )
    def test_ebsn_rearms_match_receipts(self, seed, bad):
        result = run_scenario(
            wan_scenario(
                Scheme.EBSN,
                transfer_bytes=TRANSFER,
                bad_period_mean=bad,
                seed=seed,
                record_trace=False,
            )
        )
        s = result.sender.stats
        # Every EBSN that arrives while data is outstanding re-arms the
        # timer; none may be silently dropped by the handler.
        assert s.ebsn_timer_rearms <= s.ebsn_received
        assert s.ebsn_received <= result.ebsn.ebsn_sent

    @given(seed=st.integers(min_value=1, max_value=10_000))
    def test_arq_frame_conservation(self, seed):
        result = run_scenario(
            wan_scenario(
                Scheme.LOCAL_RECOVERY,
                transfer_bytes=TRANSFER,
                bad_period_mean=2.0,
                seed=seed,
                record_trace=False,
            )
        )
        for port in (result.bs_port, result.mh_port):
            stats = port.stats
            # (The simulation stops the instant the final ACK lands, so
            # a port may legitimately still have a frame in flight —
            # "busy" is not asserted.)
            assert stats.frames_discarded + stats.siblings_dropped <= stats.frames_accepted
            # Link-level attempts >= accepted frames that got sent.
            assert (
                stats.first_transmissions + stats.link_retransmissions
                >= stats.link_acks_received
            )


class TestInteractiveWorkload:
    """The stream-fed (telnet-style) workload generator's invariants."""

    @given(
        scheme=st.sampled_from([Scheme.BASIC, Scheme.LOCAL_RECOVERY, Scheme.EBSN]),
        seed=st.integers(min_value=1, max_value=10_000),
        keystrokes=st.integers(min_value=5, max_value=40),
        think=st.sampled_from([0.1, 0.5, 1.0]),
    )
    def test_every_keystroke_delivered_with_sane_latency(
        self, scheme, seed, keystrokes, think
    ):
        result = run_interactive_session(
            InteractiveConfig(
                scheme=scheme,
                keystrokes=keystrokes,
                think_time_mean=think,
                seed=seed,
            )
        )
        assert result.completed
        # One latency sample per keystroke — none lost, none duplicated.
        assert result.latency.count == keystrokes
        # The distribution summary must be ordered and causal.
        assert 0.0 < result.latency.p50 <= result.latency.p95 <= result.latency.worst
        assert result.latency.mean <= result.latency.worst
        assert result.duration >= result.latency.worst
        assert result.timeouts >= 0

    @given(seed=st.integers(min_value=1, max_value=10_000))
    def test_interactive_determinism(self, seed):
        config = InteractiveConfig(
            scheme=Scheme.EBSN, keystrokes=10, seed=seed
        )
        a = run_interactive_session(config)
        b = run_interactive_session(config)
        assert a.latency == b.latency
        assert a.duration == b.duration
        assert a.timeouts == b.timeouts
