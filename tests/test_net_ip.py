"""Unit tests for routing, fragmentation, reassembly."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine import Simulator
from repro.net.ip import Fragmenter, Reassembler, RoutingTable
from repro.net.packet import Datagram, TcpSegment


def make_datagram(size=576):
    seg = TcpSegment(seq=0, payload_bytes=size - 40, sent_at=0.0)
    return Datagram("FH", "MH", seg, size)


class TestRoutingTable:
    def test_route_lookup(self):
        table = RoutingTable("BS")
        sent = []
        table.add_route("MH", sent.append)
        table.forward(make_datagram())
        assert len(sent) == 1

    def test_unroutable_raises(self):
        with pytest.raises(KeyError):
            RoutingTable("BS").lookup("nowhere")

    def test_default_route(self):
        table = RoutingTable("FH")
        sent = []
        table.set_default(sent.append)
        table.forward(make_datagram())
        assert len(sent) == 1

    def test_specific_route_beats_default(self):
        table = RoutingTable("FH")
        specific, default = [], []
        table.add_route("MH", specific.append)
        table.set_default(default.append)
        table.forward(make_datagram())
        assert len(specific) == 1 and not default


class TestFragmenter:
    def test_fragment_count(self):
        f = Fragmenter(128)
        assert f.fragment_count(576) == 5
        assert f.fragment_count(128) == 1
        assert f.fragment_count(129) == 2

    def test_fragment_sizes(self):
        f = Fragmenter(128)
        frags = f.fragment(make_datagram(576))
        assert [x.size_bytes for x in frags] == [128, 128, 128, 128, 64]
        assert sum(x.size_bytes for x in frags) == 576

    def test_small_datagram_single_fragment(self):
        f = Fragmenter(128)
        frags = f.fragment(make_datagram(100))
        assert len(frags) == 1
        assert frags[0].is_last

    def test_indices_and_counts(self):
        f = Fragmenter(128)
        frags = f.fragment(make_datagram(300))
        assert [x.frag_index for x in frags] == [0, 1, 2]
        assert all(x.frag_count == 3 for x in frags)

    def test_stats(self):
        f = Fragmenter(128)
        f.fragment(make_datagram(576))
        f.fragment(make_datagram(100))
        assert f.datagrams_fragmented == 1
        assert f.fragments_produced == 6

    def test_invalid_mtu(self):
        with pytest.raises(ValueError):
            Fragmenter(0)

    @given(size=st.integers(min_value=41, max_value=4096), mtu=st.integers(min_value=1, max_value=512))
    def test_fragments_always_reassemble_to_size(self, size, mtu):
        f = Fragmenter(mtu)
        frags = f.fragment(make_datagram(size))
        assert sum(x.size_bytes for x in frags) == size
        assert all(x.size_bytes <= mtu for x in frags)
        assert len(frags) == f.fragment_count(size)


class TestReassembler:
    def test_complete_in_order(self, sim):
        r = Reassembler(sim)
        dg = make_datagram(300)
        frags = Fragmenter(128).fragment(dg)
        assert r.add(frags[0]) is None
        assert r.add(frags[1]) is None
        assert r.add(frags[2]) is dg
        assert r.completed == 1

    def test_complete_out_of_order(self, sim):
        r = Reassembler(sim)
        dg = make_datagram(300)
        frags = Fragmenter(128).fragment(dg)
        assert r.add(frags[2]) is None
        assert r.add(frags[0]) is None
        assert r.add(frags[1]) is dg

    def test_single_fragment_completes_immediately(self, sim):
        r = Reassembler(sim)
        dg = make_datagram(100)
        (frag,) = Fragmenter(128).fragment(dg)
        assert r.add(frag) is dg

    def test_duplicate_fragment_ignored(self, sim):
        r = Reassembler(sim)
        frags = Fragmenter(128).fragment(make_datagram(300))
        r.add(frags[0])
        assert r.add(frags[0]) is None
        assert r.duplicate_fragments == 1

    def test_fragment_of_completed_datagram_ignored(self, sim):
        """Late ARQ re-delivery must not resurrect a reassembly buffer."""
        r = Reassembler(sim)
        dg = make_datagram(300)
        frags = Fragmenter(128).fragment(dg)
        for frag in frags:
            r.add(frag)
        assert r.add(frags[1]) is None
        assert r.pending == 0
        assert r.duplicate_fragments == 1

    def test_interleaved_datagrams(self, sim):
        r = Reassembler(sim)
        dg_a, dg_b = make_datagram(300), make_datagram(300)
        frags_a = Fragmenter(128).fragment(dg_a)
        frags_b = Fragmenter(128).fragment(dg_b)
        r.add(frags_a[0])
        r.add(frags_b[0])
        r.add(frags_a[1])
        r.add(frags_b[1])
        r.add(frags_b[2])
        assert r.completed == 1
        assert r.add(frags_a[2]) is dg_a

    def test_timeout_discards_partial(self, sim):
        r = Reassembler(sim, timeout=5.0)
        frags = Fragmenter(128).fragment(make_datagram(300))
        r.add(frags[0])
        sim.run(until=11.0)
        assert r.pending == 0
        assert r.failed == 1

    def test_fresh_partial_survives_sweep(self, sim):
        r = Reassembler(sim, timeout=5.0)
        frags_old = Fragmenter(128).fragment(make_datagram(300))
        frags_new = Fragmenter(128).fragment(make_datagram(300))
        r.add(frags_old[0])
        sim.schedule(4.9, r.add, frags_new[0])
        sim.run(until=6.0)
        assert r.pending >= 1  # the new one must still be waiting

    def test_invalid_timeout(self, sim):
        with pytest.raises(ValueError):
            Reassembler(sim, timeout=0)
