"""Tests for the scripted channel test double."""

from __future__ import annotations

import pytest

from repro.channel import ScriptedChannel
from repro.net.packet import Datagram, Fragment, TcpSegment, data_frame
from repro.net.wireless import WirelessLink, WirelessLinkConfig


class TestRules:
    def test_lose_specific_frames(self):
        channel = ScriptedChannel(lose_frames=[2, 3])
        results = [channel.corrupts(0, 0.1, 100) for _ in range(4)]
        assert results == [False, True, True, False]

    def test_bad_window_overlap(self):
        channel = ScriptedChannel(bad_windows=[(1.0, 2.0)])
        assert not channel.corrupts(0.0, 0.5, 100)   # entirely before
        assert channel.corrupts(0.8, 0.5, 100)       # straddles the start
        assert channel.corrupts(1.2, 0.1, 100)       # inside
        assert not channel.corrupts(2.5, 0.5, 100)   # after

    def test_custom_decider(self):
        channel = ScriptedChannel(decide=lambda i, s, d, n: n > 1000)
        assert not channel.corrupts(0, 0.1, 999)
        assert channel.corrupts(0, 0.1, 1001)

    def test_rules_combine(self):
        channel = ScriptedChannel(
            lose_frames=[1], bad_windows=[(5.0, 6.0)]
        )
        assert channel.corrupts(0.0, 0.1, 10)   # frame rule
        assert channel.corrupts(5.5, 0.1, 10)   # window rule
        assert not channel.corrupts(10.0, 0.1, 10)

    def test_decision_log(self):
        channel = ScriptedChannel(lose_frames=[1])
        channel.corrupts(3.0, 0.2, 64)
        assert channel.decisions == [(1, 3.0, 0.2, True)]

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            ScriptedChannel(bad_windows=[(2.0, 1.0)])


class TestWithWirelessLink:
    def test_drives_link_losses_precisely(self, sim):
        channel = ScriptedChannel(lose_frames=[2])
        link = WirelessLink(sim, WirelessLinkConfig(), channel)
        got = []
        link.connect(lambda f: got.append(f.uid))
        frames = []
        for i in range(3):
            dg = Datagram("FH", "MH", TcpSegment(i, 88, 0.0), 128)
            frame = data_frame(Fragment(dg, 0, 1, 128))
            frames.append(frame)
            link.send(frame)
        sim.run()
        assert got == [frames[0].uid, frames[2].uid]
        assert link.stats.corrupted == 1
