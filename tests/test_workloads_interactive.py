"""Tests for MessageSender, the interactive workload, and the EBSN heartbeat."""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.experiments.topology import Scheme
from repro.net.node import Node
from repro.net.packet import Datagram, TcpAck
from repro.tcp import MessageSender, TcpConfig
from repro.workloads import InteractiveConfig, LatencyStats, run_interactive_session


class MessageHarness:
    def __init__(self, sim):
        self.node = Node("FH")
        self.sent = []
        self.node.add_interface("capture", self.sent.append, "MH")
        self.sender = MessageSender(
            sim,
            self.node,
            "MH",
            config=TcpConfig(packet_size=576, window_bytes=4096, transfer_bytes=1),
        )
        self.node.attach_agent(self.sender)
        self.sender.start()

    def ack(self, n):
        self.sender.receive(Datagram("MH", "FH", TcpAck(n), 40))


class TestMessageSender:
    def test_each_message_is_one_segment(self, sim):
        h = MessageHarness(sim)
        h.sender.send_message(8)
        assert len(h.sent) == 1
        assert h.sent[0].payload.payload_bytes == 8
        assert h.sent[0].size_bytes == 48  # 8 + 40 B header

    def test_message_sizes_vary_per_segment(self, sim):
        h = MessageHarness(sim)
        h.sender.send_message(8)
        h.ack(1)
        h.sender.send_message(100)
        assert [d.payload.payload_bytes for d in h.sent] == [8, 100]

    def test_window_still_applies(self, sim):
        h = MessageHarness(sim)
        for _ in range(10):
            h.sender.send_message(8)
        # cwnd starts at 1: only the first message may fly.
        assert len(h.sent) == 1

    def test_completion_requires_close(self, sim):
        h = MessageHarness(sim)
        h.sender.send_message(8)
        h.ack(1)
        assert not h.sender.completed
        h.sender.close()
        assert h.sender.completed

    def test_oversized_message_rejected(self, sim):
        h = MessageHarness(sim)
        with pytest.raises(ValueError):
            h.sender.send_message(537)
        with pytest.raises(ValueError):
            h.sender.send_message(0)

    def test_closed_conversation_rejects_messages(self, sim):
        h = MessageHarness(sim)
        h.sender.close()
        with pytest.raises(RuntimeError):
            h.sender.send_message(8)

    def test_retransmission_after_timeout(self, sim):
        h = MessageHarness(sim)
        h.sender.send_message(8)
        sim.run(until=5.0)  # initial RTO 3 s, no ACK
        assert h.sender.stats.timeouts >= 1
        assert len(h.sent) >= 2
        assert h.sent[1].payload.is_retransmission


class TestLatencyStats:
    def test_percentiles(self):
        stats = LatencyStats.from_samples([0.1 * i for i in range(1, 101)])
        assert stats.count == 100
        assert stats.p50 == pytest.approx(5.1)
        assert stats.p95 == pytest.approx(9.6)
        assert stats.worst == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])


class TestInteractiveSession:
    def test_session_completes_and_measures_everything(self):
        result = run_interactive_session(
            InteractiveConfig(scheme=Scheme.BASIC, keystrokes=50, seed=2)
        )
        assert result.completed
        assert result.latency.count == 50
        assert result.latency.mean > 0

    def test_ebsn_reduces_mean_latency_and_timeouts(self):
        def totals(**kwargs):
            timeouts, mean = 0, 0.0
            for seed in range(1, 4):
                r = run_interactive_session(
                    InteractiveConfig(keystrokes=150, seed=seed, **kwargs)
                )
                timeouts += r.timeouts
                mean += r.latency.mean / 3
            return timeouts, mean

        basic_to, basic_mean = totals(scheme=Scheme.BASIC)
        ebsn_to, ebsn_mean = totals(scheme=Scheme.EBSN)
        assert ebsn_to < basic_to
        assert ebsn_mean < basic_mean

    def test_heartbeat_removes_residual_timeouts(self):
        """Interactive RTOs sit at the clock floor, below the ARQ retry
        cycle; the per-attempt EBSN stream is too sparse and the
        heartbeat fixes it."""
        def timeouts(**kwargs):
            return sum(
                run_interactive_session(
                    InteractiveConfig(
                        scheme=Scheme.EBSN, keystrokes=150, seed=s, **kwargs
                    )
                ).timeouts
                for s in range(1, 4)
            )

        assert timeouts(ebsn_heartbeat=0.15) < 0.5 * max(timeouts(), 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            InteractiveConfig(keystrokes=0)
        with pytest.raises(ValueError):
            InteractiveConfig(think_time_mean=0)


class TestHeartbeatGenerator:
    def test_heartbeat_requires_sim(self):
        from repro.core.ebsn import EbsnGenerator

        with pytest.raises(ValueError):
            EbsnGenerator(Node("BS"), heartbeat_interval=0.1)

    def test_heartbeat_fires_between_attempts(self, sim):
        from repro.core.ebsn import EbsnGenerator
        from repro.net.packet import Fragment, TcpSegment

        node = Node("BS")
        sent = []
        node.add_interface("wired", sent.append, "FH")
        gen = EbsnGenerator(node, sim=sim, heartbeat_interval=0.1)
        seg = TcpSegment(3, 100, 0.0)
        frag = Fragment(Datagram("FH", "MH", seg, 140), 0, 1, 140)
        gen.on_attempt_failed(frag, 1)
        sim.run(until=0.55)
        # 1 per-attempt EBSN + 5 heartbeats.
        assert len(sent) == 6
        assert gen.heartbeats_sent == 5

    def test_recovery_stops_heartbeat(self, sim):
        from repro.core.ebsn import EbsnGenerator
        from repro.net.packet import Fragment, TcpSegment

        node = Node("BS")
        sent = []
        node.add_interface("wired", sent.append, "FH")
        gen = EbsnGenerator(node, sim=sim, heartbeat_interval=0.1)
        seg = TcpSegment(3, 100, 0.0)
        frag = Fragment(Datagram("FH", "MH", seg, 140), 0, 1, 140)
        gen.on_attempt_failed(frag, 1)
        sim.schedule(0.25, gen.on_recovered)
        sim.run(until=1.0)
        assert len(sent) == 3  # attempt EBSN + 2 heartbeats, then silence
