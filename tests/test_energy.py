"""Tests for the mobile-host energy model."""

from __future__ import annotations

import pytest

from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scheme, run_scenario
from repro.metrics.energy import EnergyModel, EnergyReport, mobile_host_energy


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_power_w=-1)

    def test_report_arithmetic(self):
        report = EnergyReport(
            tx_joules=2.0, rx_joules=3.0, idle_joules=5.0, duration=10.0,
            useful_bytes=2048,
        )
        assert report.total_joules == 10.0
        assert report.joules_per_useful_kb == pytest.approx(5.0)

    def test_zero_bytes_is_infinite_cost(self):
        report = EnergyReport(1.0, 1.0, 1.0, 1.0, useful_bytes=0)
        assert report.joules_per_useful_kb == float("inf")


class TestScenarioEnergy:
    def run(self, scheme, seed=1):
        return run_scenario(
            wan_scenario(
                scheme=scheme, bad_period_mean=4.0, transfer_bytes=30 * 1024,
                seed=seed, record_trace=False,
            )
        )

    def test_components_positive_and_bounded(self):
        result = self.run(Scheme.BASIC)
        report = mobile_host_energy(result)
        assert report.tx_joules > 0
        assert report.rx_joules > 0
        assert report.idle_joules >= 0
        # Total power never exceeds duration at the max draw.
        assert report.total_joules <= result.metrics.duration * 1.7 + 1e-9

    def test_ebsn_cheaper_per_byte_than_basic(self):
        """Fewer redundant retransmissions and a shorter connection
        mean less energy per delivered KB."""
        def mean_cost(scheme):
            return sum(
                mobile_host_energy(self.run(scheme, seed=s)).joules_per_useful_kb
                for s in range(1, 5)
            ) / 4

        assert mean_cost(Scheme.EBSN) < mean_cost(Scheme.BASIC)

    def test_idle_dominates_on_slow_links(self):
        """At 19.2 kbps the radio is mostly waiting — the era's
        motivation for radio power-down protocols."""
        report = mobile_host_energy(self.run(Scheme.EBSN))
        assert report.idle_joules > report.tx_joules
