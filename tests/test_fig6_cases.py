"""The four cases of the paper's Figure 6, as executable scenarios.

Figure 6 is the paper's mechanism diagram for EBSN:

* **Case 1** — wireless link good: data and ACKs flow, minimal
  queueing at the base station.
* **Case 2** — link going bad: no data gets through, packets queue at
  the base station, the ACK stream dries up.
* **Case 3a** — link bad, no EBSN: the source's retransmission timer
  expires while the base station is still performing local recovery.
* **Case 3b** — link bad, with EBSN: the base station's notifications
  re-arm the timer; the timeout is prevented.

Each case is reconstructed with a deterministic channel so the claims
can be asserted exactly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scenario, Scheme


def scenario_for(scheme, good, bad, transfer=40 * 1024):
    config = wan_scenario(
        scheme=scheme,
        packet_size=576,
        transfer_bytes=transfer,
        deterministic=True,
        good_period_mean=good,
        bad_period_mean=bad,
        record_trace=True,
    )
    return Scenario(config)


class TestCase1GoodLink:
    def test_minimal_queueing_and_steady_acks(self):
        scenario = scenario_for(Scheme.EBSN, good=1e6, bad=1e-3)
        result = scenario.run()
        assert result.completed
        assert result.metrics.timeouts == 0
        assert result.metrics.goodput == pytest.approx(1.0)
        # The BS transmit queue never builds beyond the ARQ window plus
        # one wired packet's worth of fragments.
        assert result.bs_port.stats.ack_timeouts == 0


class TestCase2LinkGoesBad:
    def test_packets_queue_at_base_station(self):
        scenario = scenario_for(Scheme.EBSN, good=10.0, bad=4.0)
        sim = scenario.sim
        scenario.sender.start()
        # Run into the middle of the first bad period (10 s..14 s).
        sim.run(until=12.5)
        # The source has sent packets the BS cannot deliver: they are
        # parked in the ARQ (pending + in flight), none delivered since
        # the fade began.
        assert scenario.bs_port.queue_depth > 0
        assert scenario.bs_port.stats.ack_timeouts > 0
        last_delivery = scenario.sink.stats.last_data_at
        assert last_delivery is not None and last_delivery < 10.5


class TestCase3aWithoutEbsn:
    def test_source_times_out_during_local_recovery(self):
        """Use a fade longer than any RTO so the race is not marginal."""
        scenario = scenario_for(Scheme.LOCAL_RECOVERY, good=10.0, bad=9.0)
        result = scenario.run()
        assert result.metrics.timeouts > 0
        # And the timeouts produce redundant end-to-end retransmissions
        # (the packet-27 story): the ARQ was already carrying the data.
        assert result.metrics.retransmissions > 0


class TestCase3bWithEbsn:
    def test_ebsn_prevents_the_same_timeouts(self):
        scenario = scenario_for(Scheme.EBSN, good=10.0, bad=9.0)
        result = scenario.run()
        assert result.metrics.timeouts == 0
        assert result.sender.stats.ebsn_timer_rearms > 0
        # 9 s fades exceed the ARQ's RTmax horizon, so a few frames are
        # discarded and recovered end-to-end — but by *fast retransmit*
        # (dupacks after the SKIP marker), never by a timeout.
        assert result.metrics.goodput > 0.9

    def test_like_for_like_comparison(self):
        """Same frozen channel: only the EBSN messages differ."""
        without = scenario_for(Scheme.LOCAL_RECOVERY, good=10.0, bad=9.0).run()
        with_ebsn = scenario_for(Scheme.EBSN, good=10.0, bad=9.0).run()
        assert with_ebsn.metrics.timeouts < without.metrics.timeouts
        assert with_ebsn.metrics.duration <= without.metrics.duration * 1.01
