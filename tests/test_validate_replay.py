"""The full failure-replay loop: violation → bundle → deterministic replay.

This is the subsystem's acceptance path: an intentionally-seeded
invariant violation must be caught, produce a replay bundle, and
``repro replay <bundle>`` must reproduce the identical violation from
the bundle alone.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scheme, run_scenario
from repro.validate.bundle import (
    decode_value,
    encode_value,
    load_bundle,
    replay_bundle,
)
from repro.validate.engine import InvariantViolationError
from repro.validate.testing import CwndMutatingEbsnSender

TRANSFER = 12 * 1024


@pytest.fixture
def violating_config():
    return replace(
        wan_scenario(
            scheme=Scheme.EBSN, transfer_bytes=TRANSFER, record_trace=False
        ),
        sender_factory=CwndMutatingEbsnSender,
    )


@pytest.fixture
def bundle_path(violating_config, tmp_path):
    with pytest.raises(InvariantViolationError) as excinfo:
        run_scenario(violating_config, validate=True, bundle_dir=tmp_path)
    path = excinfo.value.bundle_path
    assert path is not None
    return path


class TestBundleContents:
    def test_bundle_records_the_failure(self, bundle_path, violating_config):
        bundle = load_bundle(bundle_path)
        assert bundle.seed == violating_config.seed
        assert bundle.config == violating_config
        assert bundle.config.sender_factory is CwndMutatingEbsnSender
        assert bundle.violations
        assert bundle.violations[0].checker == "ebsn-no-window-action"
        # The event-log tail leading up to the violation came along.
        assert bundle.event_log_tail
        assert all(" " in line for line in bundle.event_log_tail)

    def test_bundle_is_plain_json(self, bundle_path):
        payload = json.loads(open(bundle_path).read())
        assert payload["kind"] == "repro-replay-bundle"
        assert payload["format"] == 1
        assert payload["digest"]
        assert payload["code_token"]

    def test_load_rejects_non_bundles(self, tmp_path):
        impostor = tmp_path / "not-a-bundle.json"
        impostor.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a replay bundle"):
            load_bundle(impostor)

    def test_load_rejects_future_formats(self, tmp_path):
        future = tmp_path / "future.json"
        future.write_text(
            json.dumps({"kind": "repro-replay-bundle", "format": 999})
        )
        with pytest.raises(ValueError, match="format 999"):
            load_bundle(future)


class TestReplay:
    def test_replay_reproduces_the_violation(self, bundle_path):
        outcome = replay_bundle(bundle_path)
        assert outcome.reproduced
        assert outcome.code_matches
        assert outcome.violations[0].checker == "ebsn-no-window-action"
        # Determinism: the replay hits the violation at the same time
        # with the same message.
        assert outcome.violations[0] == outcome.bundle.violations[0]

    def test_replay_does_not_mint_new_bundles(self, bundle_path, tmp_path):
        before = sorted(tmp_path.glob("violation-*.json"))
        replay_bundle(bundle_path)
        assert sorted(tmp_path.glob("violation-*.json")) == before

    def test_clean_config_does_not_reproduce(self, bundle_path, tmp_path):
        # Doctor the bundle to a healthy sender: the replay must come
        # back clean and reproduced=False.
        payload = json.loads(open(bundle_path).read())
        payload["config"]["fields"]["sender_factory"] = None
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(payload))
        outcome = replay_bundle(doctored)
        assert not outcome.reproduced
        assert outcome.violations == ()


class TestReplayCli:
    def test_cli_replay_reproduces(self, bundle_path, capsys):
        from repro.cli import main

        assert main(["replay", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
        assert "ebsn-no-window-action" in out

    def test_cli_replay_missing_bundle(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay", str(tmp_path / "nope.json")]) == 2

    def test_cli_replay_clean_run_exits_one(self, bundle_path, tmp_path, capsys):
        from repro.cli import main

        payload = json.loads(open(bundle_path).read())
        payload["config"]["fields"]["sender_factory"] = None
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(payload))
        assert main(["replay", str(doctored)]) == 1

    def test_cli_surfaces_violation_and_bundle(self, tmp_path, monkeypatch,
                                               capsys):
        """A validated CLI run that violates exits 3 and names the bundle."""
        from repro import cli

        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path))
        real = cli.run_scenario

        def sabotaged_run_scenario(config, **kwargs):
            config = replace(config, sender_factory=CwndMutatingEbsnSender)
            return real(config, **kwargs)

        monkeypatch.setattr(cli, "run_scenario", sabotaged_run_scenario)
        rc = cli.main(
            ["run", "--scheme", "ebsn", "--transfer-kb", "12", "--validate"]
        )
        assert rc == 3
        err = capsys.readouterr().err
        assert "invariant violation" in err
        assert "ebsn-no-window-action" in err
        assert "replay bundle written" in err
        assert list(tmp_path.glob("violation-*.json"))


class TestEncoding:
    def test_config_round_trips(self, violating_config):
        assert decode_value(encode_value(violating_config)) == violating_config

    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "text", [1, "a"], (2, 3)):
            encoded = encode_value(value)
            decoded = decode_value(encoded)
            if isinstance(value, tuple):
                assert decoded == list(value)
            else:
                assert decoded == value

    def test_enums_round_trip_with_module(self):
        encoded = encode_value(Scheme.EBSN)
        assert "repro.experiments.topology" in encoded["__enum__"]
        assert decode_value(encoded) is Scheme.EBSN

    def test_classes_round_trip(self):
        encoded = encode_value(CwndMutatingEbsnSender)
        assert decode_value(encoded) is CwndMutatingEbsnSender

    def test_unencodable_value_is_an_error(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_value(object())
