"""Unit tests for the shared downlink radio."""

from __future__ import annotations

import random

import pytest

from repro.channel import deterministic_channel
from repro.csdp import DownlinkRadio, FifoScheduler, RoundRobinScheduler
from repro.linklayer import ArqConfig
from repro.net.packet import Datagram, TcpSegment
from repro.net.wireless import WirelessLinkConfig


def datagram(dst="MH0", size=128):
    return Datagram("FH", dst, TcpSegment(0, max(size - 40, 1), 0.0), size)


class Harness:
    def __init__(self, sim, dests=("MH0", "MH1"), good=1000.0, bad=0.01, arq=None):
        self.channels = {d: deterministic_channel(good, bad) for d in dests}
        self.delivered = []
        self.radio = DownlinkRadio(
            sim,
            WirelessLinkConfig(),
            self.channels,
            RoundRobinScheduler(),
            rng=random.Random(5),
            deliver=self.delivered.append,
            arq=arq,
        )


class TestTiming:
    def test_airtime_and_turnaround(self, sim):
        h = Harness(sim)
        # 128 B -> 192 B air -> 80 ms at 19.2 kbps.
        assert h.radio.tx_time(128) == pytest.approx(0.08)
        # turnaround = 2 x 2 ms prop + 12 B air ACK (5 ms).
        assert h.radio.turnaround == pytest.approx(0.009)

    def test_single_delivery(self, sim):
        h = Harness(sim)
        h.radio.send_datagram(datagram())
        sim.run(until=1.0)
        assert len(h.delivered) == 1
        assert h.radio.stats.attempts == 1

    def test_one_frame_at_a_time(self, sim):
        h = Harness(sim)
        for _ in range(3):
            h.radio.send_datagram(datagram("MH0"))
        h.radio.send_datagram(datagram("MH1"))
        sim.run(until=0.01)  # less than one airtime
        assert h.radio.stats.attempts == 1

    def test_serves_both_destinations(self, sim):
        h = Harness(sim)
        h.radio.send_datagram(datagram("MH0"))
        h.radio.send_datagram(datagram("MH1"))
        sim.run(until=2.0)
        assert {d.dst for d in h.delivered} == {"MH0", "MH1"}


class TestRetriesAndDiscard:
    def test_failed_dest_retries_with_backoff(self, sim):
        # Good windows (0.3 s) comfortably fit one 80 ms frame, but the
        # first attempt at t=0.35 lands in a fade and must retry.
        h = Harness(sim, dests=("MH0",), good=0.3, bad=0.5)
        sim.schedule(0.35, h.radio.send_datagram, datagram("MH0"))
        sim.run(until=30.0)
        assert h.radio.stats.attempt_failures > 0
        assert len(h.delivered) == 1  # eventually crosses in a good window

    def test_rtmax_discard_and_sibling_drop(self, sim):
        arq = ArqConfig(ack_timeout=1.0, rtmax=2, backoff_min=0.01, backoff_max=0.02)
        h = Harness(sim, dests=("MH0",), good=0.05, bad=1e6, arq=arq)
        sim.schedule(0.1, h.radio.send_datagram, datagram("MH0", size=576))
        sim.run(until=60.0)
        assert h.radio.stats.frames_discarded >= 1
        assert h.radio.stats.siblings_dropped >= 1
        assert h.delivered == []

    def test_unknown_destination_rejected(self, sim):
        h = Harness(sim)
        with pytest.raises(KeyError):
            h.radio.send_datagram(datagram("MH9"))

    def test_needs_at_least_one_channel(self, sim):
        with pytest.raises(ValueError):
            DownlinkRadio(
                sim,
                WirelessLinkConfig(),
                {},
                RoundRobinScheduler(),
                rng=random.Random(1),
                deliver=lambda d: None,
            )


class TestFifoBlocking:
    def test_blocked_radio_idles_behind_faded_head(self, sim):
        channels = {
            "MH0": deterministic_channel(0.05, 1e6),  # fades out immediately
            "MH1": deterministic_channel(1e6, 0.01),  # always clean
        }
        delivered = []
        radio = DownlinkRadio(
            sim,
            WirelessLinkConfig(),
            channels,
            FifoScheduler(),
            rng=random.Random(2),
            deliver=delivered.append,
            arq=ArqConfig(ack_timeout=1.0, rtmax=13, backoff_min=0.05, backoff_max=0.1),
        )
        sim.schedule(0.1, radio.send_datagram, datagram("MH0"))
        sim.schedule(0.1, radio.send_datagram, datagram("MH1"))
        sim.run(until=2.0)
        # FIFO: MH1's clean packet is stuck behind MH0's doomed one.
        assert delivered == []
        assert radio.stats.idle_blocked_time > 0
        sim.run(until=60.0)
        # After MH0's frame exhausts rtmax, MH1 finally gets served.
        assert [d.dst for d in delivered] == ["MH1"]
