"""Unit tests for packet types."""

from __future__ import annotations

import pytest

from repro.net.packet import (
    ACK_PACKET_BYTES,
    LINK_ACK_BYTES,
    Datagram,
    Fragment,
    FrameKind,
    IcmpMessage,
    IcmpType,
    PacketType,
    TcpAck,
    TcpSegment,
    data_frame,
    link_ack_frame,
    skip_frame,
)


def make_segment(seq=0, payload=536):
    return TcpSegment(seq=seq, payload_bytes=payload, sent_at=0.0)


def make_datagram(size=576, payload=None):
    return Datagram("FH", "MH", payload or make_segment(), size)


class TestTcpSegment:
    def test_valid_segment(self):
        seg = make_segment(seq=5)
        assert seg.seq == 5 and not seg.is_retransmission

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            TcpSegment(seq=-1, payload_bytes=100, sent_at=0.0)

    def test_zero_payload_rejected(self):
        with pytest.raises(ValueError):
            TcpSegment(seq=0, payload_bytes=0, sent_at=0.0)


class TestTcpAck:
    def test_valid(self):
        assert TcpAck(ack_seq=3).ack_seq == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TcpAck(ack_seq=-1)


class TestDatagram:
    def test_packet_type_data(self):
        assert make_datagram().packet_type is PacketType.DATA

    def test_packet_type_ack(self):
        dg = Datagram("MH", "FH", TcpAck(1), ACK_PACKET_BYTES)
        assert dg.packet_type is PacketType.ACK

    def test_packet_type_icmp(self):
        dg = Datagram("BS", "FH", IcmpMessage(IcmpType.EBSN), 40)
        assert dg.packet_type is PacketType.ICMP

    def test_uids_are_unique(self):
        assert make_datagram().uid != make_datagram().uid

    def test_smaller_than_header_rejected(self):
        with pytest.raises(ValueError):
            Datagram("FH", "MH", make_segment(), 39)


class TestFragment:
    def test_valid_fragment(self):
        frag = Fragment(make_datagram(), frag_index=0, frag_count=5, size_bytes=128)
        assert not frag.is_last

    def test_last_fragment(self):
        frag = Fragment(make_datagram(), frag_index=4, frag_count=5, size_bytes=64)
        assert frag.is_last

    def test_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Fragment(make_datagram(), frag_index=5, frag_count=5, size_bytes=128)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Fragment(make_datagram(), frag_index=0, frag_count=1, size_bytes=0)


class TestLinkFrames:
    def test_data_frame_wraps_fragment(self):
        frag = Fragment(make_datagram(), 0, 1, 576)
        frame = data_frame(frag)
        assert frame.kind is FrameKind.DATA
        assert frame.size_bytes == 576
        assert frame.fragment is frag

    def test_link_ack_frame(self):
        frame = link_ack_frame(acked_frame_uid=17)
        assert frame.kind is FrameKind.LINK_ACK
        assert frame.size_bytes == LINK_ACK_BYTES
        assert frame.acked_frame_uid == 17

    def test_skip_frame(self):
        frame = skip_frame(link_seq=9)
        assert frame.kind is FrameKind.SKIP
        assert frame.link_seq == 9

    def test_skip_frame_requires_seq(self):
        from repro.net.packet import LinkFrame

        with pytest.raises(ValueError):
            LinkFrame(kind=FrameKind.SKIP, size_bytes=8)

    def test_frame_uids_unique(self):
        assert link_ack_frame(1).uid != link_ack_frame(1).uid
