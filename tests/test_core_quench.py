"""Unit tests for the source-quench baseline (§4.2.2 negative result)."""

from __future__ import annotations

import pytest

from repro.core.quench import QuenchGenerator, install_quench_handler
from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import (
    Datagram,
    Fragment,
    IcmpMessage,
    IcmpType,
    TcpAck,
    TcpSegment,
)
from repro.tcp import TahoeSender, TcpConfig


def data_fragment(seq=3):
    seg = TcpSegment(seq=seq, payload_bytes=536, sent_at=0.0)
    return Fragment(Datagram("FH", "MH", seg, 576), 0, 5, 128)


class TestQuenchGenerator:
    def make_bs(self, sim, **kwargs):
        node = Node("BS")
        sent = []
        node.add_interface("wired", sent.append, "FH")
        return QuenchGenerator(sim, node, **kwargs), sent

    def test_failed_attempt_sends_quench(self, sim):
        gen, sent = self.make_bs(sim)
        gen.on_attempt_failed(data_fragment(), attempt=1)
        assert len(sent) == 1
        assert sent[0].payload.icmp_type is IcmpType.SOURCE_QUENCH

    def test_rate_limited(self, sim):
        gen, sent = self.make_bs(sim, min_interval=0.5)
        frag = data_fragment()
        gen.on_attempt_failed(frag, 1)
        gen.on_attempt_failed(frag, 2)  # same instant: suppressed
        assert len(sent) == 1
        assert gen.quench_suppressed == 1

    def test_rate_limit_expires(self, sim):
        gen, sent = self.make_bs(sim, min_interval=0.5)
        frag = data_fragment()
        gen.on_attempt_failed(frag, 1)
        sim.schedule(1.0, gen.on_attempt_failed, frag, 2)
        sim.run()
        assert len(sent) == 2

    def test_queue_depth_trigger(self, sim):
        gen, sent = self.make_bs(sim, queue_threshold=4)
        gen.note_data_source("FH")
        gen.on_queue_depth(5)
        assert len(sent) == 1

    def test_depth_below_threshold_no_quench(self, sim):
        gen, sent = self.make_bs(sim, queue_threshold=4)
        gen.note_data_source("FH")
        gen.on_queue_depth(4)
        assert sent == []

    def test_depth_without_known_source_no_quench(self, sim):
        gen, sent = self.make_bs(sim, queue_threshold=4)
        gen.on_queue_depth(100)
        assert sent == []

    def test_validation(self, sim):
        node = Node("BS")
        with pytest.raises(ValueError):
            QuenchGenerator(sim, node, queue_threshold=0)
        with pytest.raises(ValueError):
            QuenchGenerator(sim, node, min_interval=-1)


class TestSourceResponse:
    def make_sender(self, sim):
        node = Node("FH")
        node.add_interface("capture", lambda d: None, "MH")
        sender = TahoeSender(
            sim,
            node,
            "MH",
            config=TcpConfig(packet_size=576, window_bytes=4096, transfer_bytes=50 * 536),
        )
        node.attach_agent(sender)
        install_quench_handler(sender)
        return sender

    def ack(self, sender, n):
        sender.receive(Datagram("MH", "FH", TcpAck(n), 40))

    def quench(self, sender):
        sender.receive(Datagram("BS", "FH", IcmpMessage(IcmpType.SOURCE_QUENCH), 40))

    def test_quench_shrinks_window(self, sim):
        sender = self.make_sender(sim)
        sender.start()
        for i in range(1, 5):
            self.ack(sender, i)
        flight = sender.outstanding
        self.quench(sender)
        assert sender.cwnd == 1.0
        assert sender.ssthresh == pytest.approx(max(2.0, flight / 2))
        assert sender.stats.quench_received == 1

    def test_quench_does_not_touch_timer(self, sim):
        """The §4.2.2 point: in-flight packets still time out."""
        sender = self.make_sender(sim)
        sender.start()
        expiry_before = sender.rtx_timer.expiry_time
        self.quench(sender)
        assert sender.rtx_timer.expiry_time == expiry_before

    def test_quench_does_not_retransmit(self, sim):
        sender = self.make_sender(sim)
        sender.start()
        sent_before = sender.stats.segments_sent
        self.quench(sender)
        assert sender.stats.segments_sent == sent_before

    def test_timeout_still_fires_despite_quench(self, sim):
        sender = self.make_sender(sim)
        sender.start()
        sim.schedule_at(1.0, self.quench, sender)
        sim.run(until=4.0)  # initial RTO 3 s
        assert sender.stats.timeouts >= 1
