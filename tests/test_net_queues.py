"""Unit tests for the drop-tail queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.queues import DropTailQueue


class TestBasics:
    def test_fifo_order(self):
        q = DropTailQueue()
        for i in range(5):
            q.offer(i)
        assert [q.poll() for _ in range(5)] == list(range(5))

    def test_poll_empty_returns_none(self):
        assert DropTailQueue().poll() is None

    def test_peek_does_not_remove(self):
        q = DropTailQueue()
        q.offer("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_peek_empty(self):
        assert DropTailQueue().peek() is None

    def test_requeue_front(self):
        q = DropTailQueue()
        q.offer(1)
        q.offer(2)
        head = q.poll()
        q.requeue_front(head)
        assert q.poll() == 1

    def test_clear(self):
        q = DropTailQueue()
        for i in range(3):
            q.offer(i)
        assert q.clear() == 3
        assert q.is_empty

    def test_iteration(self):
        q = DropTailQueue()
        for i in range(3):
            q.offer(i)
        assert list(q) == [0, 1, 2]


class TestCapacityAndDrops:
    def test_unbounded_by_default(self):
        q = DropTailQueue()
        for i in range(10_000):
            assert q.offer(i)
        assert not q.is_full

    def test_drop_when_full(self):
        q = DropTailQueue(capacity=2)
        assert q.offer(1)
        assert q.offer(2)
        assert not q.offer(3)
        assert list(q) == [1, 2]

    def test_drop_stats(self):
        q = DropTailQueue(capacity=1)
        q.offer("a", size_bytes=100)
        q.offer("b", size_bytes=200)
        assert q.stats.dropped == 1
        assert q.stats.dropped_bytes == 200
        assert q.stats.drop_rate() == pytest.approx(0.5)

    def test_space_frees_after_poll(self):
        q = DropTailQueue(capacity=1)
        q.offer(1)
        q.poll()
        assert q.offer(2)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)

    def test_peak_depth_tracked(self):
        q = DropTailQueue()
        for i in range(7):
            q.offer(i)
        q.poll()
        q.offer(99)
        assert q.stats.peak_depth == 7

    def test_drop_rate_empty_queue(self):
        assert DropTailQueue().stats.drop_rate() == 0.0


class TestPropertyBased:
    @given(st.lists(st.integers(), max_size=200), st.integers(min_value=1, max_value=50))
    def test_never_exceeds_capacity_and_preserves_order(self, items, capacity):
        q = DropTailQueue(capacity=capacity)
        accepted = []
        for item in items:
            if q.offer(item):
                accepted.append(item)
            assert len(q) <= capacity
        drained = []
        while (item := q.poll()) is not None:
            drained.append(item)
        assert drained == accepted[: len(drained)]
        assert q.stats.enqueued == len(accepted)
        assert q.stats.dropped == len(items) - len(accepted)
