"""Shared fixtures for the test suite.

Two suite-wide policies live here:

* **Hypothesis profiles** — ``tier1`` (25 examples, the default) keeps
  the property suite inside the fast tier-1 budget; ``nightly`` (200
  examples) is what the scheduled CI job runs.  Select with
  ``REPRO_HYPOTHESIS_PROFILE=nightly``.
* **Validation default** — every scenario the tests run goes through
  the runtime invariant engine (:mod:`repro.validate`) unless a test
  opts out explicitly, so the whole suite doubles as an invariant
  sweep.  Benchmarks force the default off (see
  ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.engine import RandomStreams, Simulator
from repro.validate.engine import set_default_validation, validation_default

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "tier1",
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "nightly",
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "tier1"))
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


@pytest.fixture(scope="session", autouse=True)
def _validate_by_default():
    """Run every test-suite scenario under the invariant engine."""
    previous = validation_default()
    set_default_validation(True)
    yield
    set_default_validation(previous)


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for components under test."""
    return random.Random(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic stream factory."""
    return RandomStreams(seed=42)
