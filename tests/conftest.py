"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.engine import RandomStreams, Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for components under test."""
    return random.Random(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic stream factory."""
    return RandomStreams(seed=42)
