"""Unit tests for metrics, traces, theoretical bounds."""

from __future__ import annotations

import pytest

from repro.metrics import PacketTrace, theoretical_throughput_bps
from repro.metrics.theoretical import good_state_fraction


class TestTheoretical:
    def test_paper_fig7_value(self):
        """tput_th for bad period 1 s is the 11.8 kbps line of Fig 7."""
        assert theoretical_throughput_bps(12_800, 10.0, 1.0) == pytest.approx(
            11_636, abs=1
        )

    def test_paper_fig8_value_bad4(self):
        """For bad period 4 s: 12.8 * 10/14 = 9.14 kbps (the EBSN target)."""
        assert theoretical_throughput_bps(12_800, 10.0, 4.0) == pytest.approx(
            9_143, abs=1
        )

    def test_lan_values(self):
        assert theoretical_throughput_bps(2e6, 4.0, 1.6) == pytest.approx(
            1.4286e6, rel=1e-3
        )

    def test_good_fraction(self):
        assert good_state_fraction(10, 4) == pytest.approx(10 / 14)

    def test_validation(self):
        with pytest.raises(ValueError):
            theoretical_throughput_bps(0, 10, 1)
        with pytest.raises(ValueError):
            good_state_fraction(-1, 1)


class TestPacketTrace:
    def make_trace(self):
        trace = PacketTrace()
        trace.record_send(1.0, 0, False)
        trace.record_send(2.0, 1, False)
        trace.record_send(5.0, 1, True)
        trace.record_send(5.5, 2, False)
        return trace

    def test_counts(self):
        trace = self.make_trace()
        assert len(trace) == 4
        assert trace.first_transmissions == 3
        assert trace.retransmissions == 1

    def test_transmissions_of(self):
        trace = self.make_trace()
        assert trace.transmissions_of(1) == [2.0, 5.0]
        assert trace.transmissions_of(99) == []

    def test_retransmitted_seqs(self):
        assert self.make_trace().retransmitted_seqs() == [1]

    def test_window_query(self):
        trace = self.make_trace()
        entries = trace.transmissions_between(1.5, 5.2)
        assert [e.seq for e in entries] == [1, 1]

    def test_idle_gaps(self):
        trace = self.make_trace()
        gaps = trace.idle_gaps(min_gap=2.0)
        assert gaps == [(2.0, 5.0)]

    def test_idle_gaps_none(self):
        assert self.make_trace().idle_gaps(min_gap=10.0) == []

    def test_render_contains_marks(self):
        out = self.make_trace().render(width=40, title="Basic TCP")
        assert "Basic TCP" in out
        assert "R" in out  # the retransmission of seq 1
        assert "." in out

    def test_render_empty(self):
        assert "(empty trace)" in PacketTrace().render(title="x")

    def test_vertical_axis_wraps_at_90(self):
        trace = PacketTrace()
        trace.record_send(1.0, 95, False)
        out = trace.render(width=20)
        assert "  5 |" in out  # 95 mod 90


class TestConnectionMetrics:
    def test_end_to_end_accounting(self, sim):
        """compute_metrics over a real (tiny, error-free) transfer."""
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import run_scenario

        config = wan_scenario(transfer_bytes=10 * 536, bad_period_mean=0.001,
                              good_period_mean=1e6, record_trace=True)
        result = run_scenario(config)
        m = result.metrics
        assert result.completed
        assert m.goodput == pytest.approx(1.0)
        assert m.retransmissions == 0
        assert m.segments_sent == 10
        assert m.bytes_sent_wire == 10 * 576
        assert m.useful_wire_bytes == 10 * 576
        # payload-based throughput < wire-based throughput
        assert m.throughput_bps < m.wire_throughput_bps
        assert m.throughput_kbps == pytest.approx(m.throughput_bps / 1000)

    def test_metrics_require_started_sender(self, sim):
        from repro.metrics.stats import compute_metrics
        from repro.net.node import Node
        from repro.tcp import TahoeSender, TcpConfig, TcpSink

        node = Node("FH")
        node.add_interface("x", lambda d: None, "MH")
        sender = TahoeSender(sim, node, "MH", config=TcpConfig())
        sink = TcpSink(sim, node, "FH")
        with pytest.raises(ValueError):
            compute_metrics(sender, sink)


class TestEbsnPrediction:
    def test_prediction_formula(self):
        from repro.metrics.theoretical import predicted_ebsn_throughput_bps

        predicted = predicted_ebsn_throughput_bps(12_800, 10.0, 4.0, 1536)
        assert predicted == pytest.approx(9143 * 1496 / 1536, rel=1e-3)

    def test_prediction_validates_against_simulation(self):
        """The analytic model brackets measured EBSN throughput."""
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scheme, run_scenario
        from repro.metrics.theoretical import predicted_ebsn_throughput_bps

        measured = 0.0
        seeds = 6
        for seed in range(1, seeds + 1):
            result = run_scenario(
                wan_scenario(
                    Scheme.EBSN,
                    packet_size=1536,
                    bad_period_mean=2.0,
                    transfer_bytes=50 * 1024,
                    seed=seed,
                    record_trace=False,
                )
            )
            measured += result.metrics.throughput_bps / seeds
        predicted = predicted_ebsn_throughput_bps(12_800, 10.0, 2.0, 1536)
        assert 0.8 * predicted < measured < 1.05 * predicted

    def test_validation_error(self):
        from repro.metrics.theoretical import predicted_ebsn_throughput_bps

        with pytest.raises(ValueError):
            predicted_ebsn_throughput_bps(12_800, 10, 1, packet_size=40)
