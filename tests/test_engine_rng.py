"""Unit tests for named deterministic random streams."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine import RandomStreams


class TestStreams:
    def test_same_name_returns_same_stream(self, streams):
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_give_different_sequences(self, streams):
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        first = [RandomStreams(7).stream("chan").random() for _ in range(3)]
        second = [RandomStreams(7).stream("chan").random() for _ in range(3)]
        assert first == second

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != RandomStreams(2).stream("x").random()

    def test_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        reference = RandomStreams(9)
        expected = [reference.stream("b").random() for _ in range(4)]

        perturbed = RandomStreams(9)
        for _ in range(100):
            perturbed.stream("a").random()  # heavy use of another stream
        actual = [perturbed.stream("b").random() for _ in range(4)]
        assert actual == expected

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("not-an-int")  # type: ignore[arg-type]


class TestFork:
    def test_fork_is_deterministic(self):
        a = RandomStreams(5).fork("rep1").stream("x").random()
        b = RandomStreams(5).fork("rep1").stream("x").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RandomStreams(5)
        child = parent.fork("rep1")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_distinct_forks_differ(self):
        base = RandomStreams(5)
        assert (
            base.fork("rep1").stream("x").random()
            != base.fork("rep2").stream("x").random()
        )

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_any_seed_and_name_work(self, seed, name):
        value = RandomStreams(seed).stream(name).random()
        assert 0.0 <= value < 1.0
