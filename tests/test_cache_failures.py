"""Failure-path tests for the content-addressed result cache.

The cache's contract under adversity: corruption is a miss (never an
exception, never a wrong answer), concurrent writers never tear an
entry, and *any* source edit under ``src/repro`` — including the
validation subsystem — changes the code token and so invalidates every
key.
"""

from __future__ import annotations

import pickle
import threading
from pathlib import Path

import pytest

from repro.experiments.cache import (
    CACHE_FORMAT,
    ResultCache,
    code_version_token,
    config_digest,
    source_files,
)
from repro.experiments.config import wan_scenario
from repro.experiments.parallel import RunSummary, summarize
from repro.experiments.topology import run_scenario


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path)


@pytest.fixture
def summary():
    result = run_scenario(
        wan_scenario(transfer_bytes=4 * 1024, record_trace=False),
        validate=False,
    )
    return summarize(result)


class TestCorruptEntries:
    def test_truncated_entry_reads_as_miss(self, cache, summary):
        key = cache.key(summary.config)
        cache.put(key, summary)
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_garbage_bytes_read_as_miss(self, cache, summary):
        key = cache.key(summary.config)
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)
        cache._path(key).write_bytes(b"this is not a pickle")
        assert cache.get(key) is None

    def test_wrong_payload_shape_reads_as_miss(self, cache, summary):
        key = cache.key(summary.config)
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)
        cache._path(key).write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert cache.get(key) is None

    def test_wrong_format_version_reads_as_miss(self, cache, summary):
        key = cache.key(summary.config)
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)
        cache._path(key).write_bytes(
            pickle.dumps({"format": CACHE_FORMAT + 1, "summary": summary})
        )
        assert cache.get(key) is None

    def test_unpicklable_class_reference_reads_as_miss(self, cache, summary):
        # Simulates a cache written by a code version whose classes no
        # longer exist: pickle raises AttributeError on load.
        key = cache.key(summary.config)
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps({"format": CACHE_FORMAT, "summary": summary})
        cache._path(key).write_bytes(
            payload.replace(b"RunSummary", b"GoneSummary")
        )
        assert cache.get(key) is None

    def test_overwrite_after_corruption_recovers(self, cache, summary):
        key = cache.key(summary.config)
        cache.put(key, summary)
        cache._path(key).write_bytes(b"torn")
        assert cache.get(key) is None
        cache.put(key, summary)
        assert cache.get(key) == summary


class TestConcurrentWriters:
    def test_parallel_puts_never_tear(self, cache, summary):
        """Many threads writing the same key: the entry is always whole."""
        key = cache.key(summary.config)
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    cache.put(key, summary)
                    loaded = cache.get(key)
                    if loaded is not None and loaded != summary:
                        errors.append("read a torn entry")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.get(key) == summary

    def test_no_tmp_droppings_left_behind(self, cache, summary):
        key = cache.key(summary.config)
        for _ in range(5):
            cache.put(key, summary)
        assert list(cache.root.rglob("*.tmp")) == []


class TestStaleTmpSweep:
    def _orphan(self, cache, summary, age: float) -> Path:
        """Plant a tmp file as a writer dying mid-put would leave it."""
        key = cache.key(summary.config)
        fanout = cache._path(key).parent
        fanout.mkdir(parents=True, exist_ok=True)
        orphan = fanout / "deadwriter.tmp"
        orphan.write_bytes(b"half a pickle")
        stamp = __import__("time").time() - age
        __import__("os").utime(orphan, (stamp, stamp))
        return orphan

    def test_stale_tmp_swept_on_open(self, cache, summary):
        orphan = self._orphan(cache, summary, age=7200.0)
        reopened = ResultCache(root=cache.root)
        assert not orphan.exists()
        assert reopened.get(cache.key(summary.config)) is None  # still a miss

    def test_fresh_tmp_survives_the_sweep(self, cache, summary):
        """A live concurrent writer's tmp file must not be deleted."""
        orphan = self._orphan(cache, summary, age=0.0)
        ResultCache(root=cache.root)
        assert orphan.exists()

    def test_sweep_reports_count_and_is_idempotent(self, cache, summary):
        self._orphan(cache, summary, age=7200.0)
        assert cache.sweep_stale_tmp() == 1
        assert cache.sweep_stale_tmp() == 0

    def test_put_after_crashed_writer_still_lands(self, cache, summary):
        """An orphaned tmp never blocks a later successful write."""
        self._orphan(cache, summary, age=7200.0)
        key = cache.key(summary.config)
        cache.put(key, summary)
        assert cache.get(key) == summary


class TestCodeVersionToken:
    def _scratch_package(self, tmp_path: Path) -> Path:
        root = tmp_path / "pkg"
        (root / "validate").mkdir(parents=True)
        (root / "__init__.py").write_text("")
        (root / "core.py").write_text("x = 1\n")
        (root / "validate" / "__init__.py").write_text("")
        (root / "validate" / "engine.py").write_text("CHECKS = []\n")
        return root

    def test_validate_edit_changes_the_token(self, tmp_path):
        root = self._scratch_package(tmp_path)
        before = code_version_token(root)
        (root / "validate" / "engine.py").write_text("CHECKS = ['new']\n")
        after = code_version_token(root)
        assert before != after

    def test_new_file_changes_the_token(self, tmp_path):
        root = self._scratch_package(tmp_path)
        before = code_version_token(root)
        (root / "validate" / "checkers.py").write_text("pass\n")
        assert code_version_token(root) != before

    def test_unchanged_tree_is_stable(self, tmp_path):
        root = self._scratch_package(tmp_path)
        assert code_version_token(root) == code_version_token(root)

    def test_token_change_invalidates_config_digests(self, tmp_path):
        root = self._scratch_package(tmp_path)
        config = wan_scenario(transfer_bytes=4 * 1024, record_trace=False)
        before = config_digest(config, code_version_token(root))
        (root / "validate" / "engine.py").write_text("CHECKS = ['edited']\n")
        after = config_digest(config, code_version_token(root))
        assert before != after

    def test_installed_package_includes_validate_sources(self):
        import repro

        package_root = Path(repro.__file__).resolve().parent
        names = {
            str(p.relative_to(package_root)) for p in source_files(package_root)
        }
        assert "validate/engine.py" in names
        assert "validate/checkers.py" in names
        assert "validate/bundle.py" in names
