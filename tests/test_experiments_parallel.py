"""Tests for the parallel experiment engine and the result cache."""

from __future__ import annotations

import dataclasses
import logging

import pytest

from repro.experiments import parallel as parallel_mod
from repro.experiments import topology
from repro.experiments.cache import ResultCache, config_digest
from repro.experiments.config import lan_scenario, wan_scenario
from repro.experiments.parallel import ParallelRunner, RunSummary, resolve_workers
from repro.experiments.runner import ReplicatedResult, run_replicated, sweep

TINY = 5 * 1024
LAN_TINY = 48 * 1024

AGGREGATE_FIELDS = [
    "replications",
    "throughput_bps_mean",
    "throughput_bps_std",
    "goodput_mean",
    "retransmitted_kbytes_mean",
    "timeouts_mean",
    "duration_mean",
    "tput_th_bps",
]


def assert_identical_aggregates(a: ReplicatedResult, b: ReplicatedResult) -> None:
    """Every aggregate field must match exactly — not approximately."""
    for field in AGGREGATE_FIELDS:
        assert getattr(a, field) == getattr(b, field), field


class TestParallelMatchesSerial:
    def test_wan_bit_identical(self):
        config = wan_scenario(transfer_bytes=TINY)
        serial = run_replicated(config, replications=4, base_seed=3, workers=1)
        pooled = run_replicated(config, replications=4, base_seed=3, workers=4)
        assert_identical_aggregates(serial, pooled)
        assert [r.config.seed for r in serial.results] == [
            r.config.seed for r in pooled.results
        ]
        assert [r.metrics for r in serial.results] == [
            r.metrics for r in pooled.results
        ]

    def test_lan_bit_identical(self):
        config = lan_scenario(transfer_bytes=LAN_TINY)
        serial = run_replicated(config, replications=4, base_seed=7, workers=1)
        pooled = run_replicated(config, replications=4, base_seed=7, workers=4)
        assert_identical_aggregates(serial, pooled)
        assert [r.metrics for r in serial.results] == [
            r.metrics for r in pooled.results
        ]

    def test_sweep_parallel_matches_serial(self):
        make = lambda size: wan_scenario(packet_size=size, transfer_bytes=TINY)
        serial = sweep([256, 576], make, replications=2, workers=1)
        pooled = sweep([256, 576], make, replications=2, workers=3)
        assert list(serial) == list(pooled)
        for size in serial:
            assert_identical_aggregates(serial[size], pooled[size])

    def test_results_are_summaries(self):
        result = run_replicated(
            wan_scenario(transfer_bytes=TINY), replications=2, workers=2
        )
        assert all(isinstance(r, RunSummary) for r in result.results)
        assert all(r.trace is None for r in result.results)

    def test_incomplete_run_raises_from_pool(self):
        config = dataclasses.replace(
            wan_scenario(transfer_bytes=TINY), max_sim_time=0.01
        )
        with pytest.raises(RuntimeError, match="did not complete"):
            run_replicated(config, replications=2, workers=2)

    def test_workers_one_never_builds_a_pool(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("serial path must not build a process pool")

        monkeypatch.setattr(parallel_mod, "_WorkerHandle", boom)
        result = run_replicated(
            wan_scenario(transfer_bytes=TINY), replications=2, workers=1
        )
        assert result.replications == 2

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5
        assert resolve_workers(0) >= 1


class TestForkFallback:
    def test_spawn_only_platform_warns_and_runs_serial(
        self, monkeypatch, caplog
    ):
        """No fork (e.g. Windows/macOS-spawn): degrade to serial, loudly."""
        monkeypatch.setattr(
            parallel_mod.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("spawn-only platform must not build a pool")

        monkeypatch.setattr(parallel_mod, "_WorkerHandle", boom)
        with caplog.at_level(
            logging.WARNING, logger="repro.experiments.parallel"
        ):
            result = run_replicated(
                wan_scenario(transfer_bytes=TINY), replications=2, workers=4
            )
        assert result.replications == 2
        messages = [r.getMessage() for r in caplog.records]
        assert any("fork start method unavailable" in m for m in messages)
        assert any("--workers 4" in m for m in messages)


class TestResultCache:
    def _counting(self, monkeypatch):
        """Patch run_scenario with a call-counting wrapper."""
        calls = []
        original = topology.run_scenario

        def counted(config):
            calls.append(config)
            return original(config)

        monkeypatch.setattr(topology, "run_scenario", counted)
        return calls

    def test_second_run_simulates_nothing(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        config = wan_scenario(transfer_bytes=TINY)
        calls = self._counting(monkeypatch)
        first = run_replicated(config, replications=3, cache=cache)
        assert len(calls) == 3
        second = run_replicated(config, replications=3, cache=cache)
        assert len(calls) == 3  # zero fresh run_scenario calls
        assert_identical_aggregates(first, second)
        assert cache.hits == 3 and cache.misses == 3

    def test_cached_sweep_simulates_nothing(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        make = lambda size: wan_scenario(packet_size=size, transfer_bytes=TINY)
        calls = self._counting(monkeypatch)
        first = sweep([256, 576], make, replications=2, cache=cache)
        assert len(calls) == 4
        second = sweep([256, 576], make, replications=2, cache=cache)
        assert len(calls) == 4  # zero fresh run_scenario calls
        for size in first:
            assert_identical_aggregates(first[size], second[size])

    def test_different_seed_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        config = wan_scenario(transfer_bytes=TINY)
        calls = self._counting(monkeypatch)
        run_replicated(config, replications=2, base_seed=1, cache=cache)
        run_replicated(config, replications=2, base_seed=100, cache=cache)
        assert len(calls) == 4

    def test_different_config_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        calls = self._counting(monkeypatch)
        run_replicated(
            wan_scenario(transfer_bytes=TINY), replications=1, cache=cache
        )
        run_replicated(
            wan_scenario(transfer_bytes=TINY, packet_size=1024),
            replications=1,
            cache=cache,
        )
        assert len(calls) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = wan_scenario(transfer_bytes=TINY)
        result = run_replicated(config, replications=1, cache=cache)
        for entry in tmp_path.glob("*/*.pkl"):
            entry.write_bytes(b"garbage")
        again = run_replicated(config, replications=1, cache=cache)
        assert_identical_aggregates(result, again)

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_replicated(
            wan_scenario(transfer_bytes=TINY), replications=2, cache=cache
        )
        assert cache.clear() == 2
        assert cache.clear() == 0

    def test_finished_units_cached_before_batch_completes(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-batch must not lose the work already finished.

        The third unit blows up; the first two summaries must already
        be on disk, so a rerun only simulates the remainder.
        """
        cache = ResultCache(tmp_path)
        config = wan_scenario(transfer_bytes=TINY)
        calls = []
        original = topology.run_scenario

        def flaky(cfg):
            calls.append(cfg)
            if len(calls) == 3:
                raise OSError("simulated crash mid-batch")
            return original(cfg)

        monkeypatch.setattr(topology, "run_scenario", flaky)
        with pytest.raises(OSError, match="mid-batch"):
            run_replicated(config, replications=4, cache=cache)
        assert len(list(tmp_path.glob("*/*.pkl"))) == 2
        # The rerun reuses the two cached seeds and simulates the rest.
        calls.clear()
        result = run_replicated(config, replications=4, cache=cache)
        assert result.replications == 4
        assert len(calls) == 2


class TestConfigDigest:
    def test_stable_for_equal_configs(self):
        a = wan_scenario(transfer_bytes=TINY, seed=5)
        b = wan_scenario(transfer_bytes=TINY, seed=5)
        assert config_digest(a, "tok") == config_digest(b, "tok")

    def test_sensitive_to_every_knob(self):
        base = wan_scenario(transfer_bytes=TINY)
        variants = [
            wan_scenario(transfer_bytes=TINY, seed=2),
            wan_scenario(transfer_bytes=TINY, packet_size=1024),
            wan_scenario(transfer_bytes=TINY, bad_period_mean=2.0),
            wan_scenario(transfer_bytes=TINY, tcp_variant="reno"),
            lan_scenario(transfer_bytes=TINY),
        ]
        digests = {config_digest(v, "tok") for v in variants}
        digests.add(config_digest(base, "tok"))
        assert len(digests) == len(variants) + 1

    def test_sensitive_to_code_version(self):
        config = wan_scenario(transfer_bytes=TINY)
        assert config_digest(config, "tok-a") != config_digest(config, "tok-b")


class TestSummaryPickling:
    def test_summary_round_trips(self):
        import pickle

        summary = parallel_mod._execute_unit(
            wan_scenario(transfer_bytes=TINY, record_trace=False)
        )
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.metrics == summary.metrics
        assert clone.config.seed == summary.config.seed
        assert clone.completed and clone.trace is None
