"""Unit tests for the snoop-style agent baseline."""

from __future__ import annotations

import pytest

from repro.core.snoop import SnoopAgent
from repro.engine import Simulator
from repro.net.packet import Datagram, TcpAck, TcpSegment


class Harness:
    def __init__(self, sim, **kwargs):
        self.wireless = []
        self.wired = []
        self.agent = SnoopAgent(
            sim,
            send_wireless=self.wireless.append,
            send_wired=self.wired.append,
            **kwargs,
        )

    def data(self, seq):
        seg = TcpSegment(seq=seq, payload_bytes=536, sent_at=0.0)
        dg = Datagram("FH", "MH", seg, 576)
        self.agent.on_wired_data(dg)
        return dg

    def ack(self, ack_seq):
        dg = Datagram("MH", "FH", TcpAck(ack_seq), 40)
        self.agent.on_wireless_ack(dg)
        return dg


class TestCaching:
    def test_data_cached_and_forwarded(self, sim):
        h = Harness(sim)
        dg = h.data(0)
        assert h.wireless == [dg]
        assert h.agent.cached_segments == 1

    def test_new_ack_cleans_cache_and_forwards(self, sim):
        h = Harness(sim)
        h.data(0)
        h.data(1)
        ack = h.ack(1)
        assert h.agent.cached_segments == 1  # seq 0 evicted
        assert ack in h.wired

    def test_non_tcp_traffic_passes_through(self, sim):
        h = Harness(sim)
        from repro.net.packet import IcmpMessage, IcmpType

        dg = Datagram("MH", "FH", IcmpMessage(IcmpType.EBSN), 40)
        h.agent.on_wireless_ack(dg)
        assert dg in h.wired


class TestLocalRetransmission:
    def test_dupack_triggers_local_retransmit_and_suppression(self, sim):
        h = Harness(sim, dupack_threshold=1)
        h.data(0)
        h.data(1)
        h.ack(1)          # new ack
        dup = h.ack(1)    # duplicate: segment 1 missing
        assert h.agent.local_retransmissions == 1
        assert dup not in h.wired  # suppressed
        assert h.agent.dupacks_suppressed == 1
        # The retransmitted datagram is the cached seq-1 packet.
        assert h.wireless[-1].payload.seq == 1

    def test_dupack_without_cached_segment_passes_through(self, sim):
        h = Harness(sim, dupack_threshold=1)
        h.data(0)
        h.ack(1)   # cache empty now
        dup = h.ack(1)
        assert dup in h.wired

    def test_local_timer_retransmits_lowest(self, sim):
        h = Harness(sim, local_timeout=0.5)
        h.data(0)
        h.data(1)
        sim.run(until=0.6)
        assert h.agent.local_retransmissions == 1
        assert h.wireless[-1].payload.seq == 0

    def test_timer_rearms_until_cache_empty(self, sim):
        h = Harness(sim, local_timeout=0.5)
        h.data(0)
        sim.run(until=2.6)
        assert h.agent.local_retransmissions >= 4  # 0.5, 1.0, 1.5, ...

    def test_ack_cancels_timer(self, sim):
        h = Harness(sim, local_timeout=0.5)
        h.data(0)
        h.ack(1)
        sim.run(until=2.0)
        assert h.agent.local_retransmissions == 0

    def test_max_local_retx_cap(self, sim):
        h = Harness(sim, local_timeout=0.1, max_local_retx=3)
        h.data(0)
        sim.run(until=5.0)
        assert h.agent.local_retransmissions == 3

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            SnoopAgent(sim, lambda d: None, lambda d: None, local_timeout=0)
        with pytest.raises(ValueError):
            SnoopAgent(sim, lambda d: None, lambda d: None, dupack_threshold=0)
