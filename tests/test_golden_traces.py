"""Golden-file regression tests for the deterministic trace figures.

The frozen-channel example (Figs 3-5) is fully deterministic, so its
rendered traces are stable artifacts: any behavioral drift in the
engine, TCP, fragmentation, channel, or ARQ shows up as a diff here.
Regenerate the goldens deliberately (see the module body) when a
behavior change is intended, and record why in the commit.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.figures import trace_figure

DATA = Path(__file__).parent / "data"


def rendered(figure_number: int) -> str:
    return trace_figure(figure_number).trace.render(width=80, t_max=60.0)


class TestGoldenTraces:
    def test_fig3_trace_unchanged(self):
        assert rendered(3) == (DATA / "golden_fig3_trace.txt").read_text()

    def test_fig5_trace_unchanged(self):
        assert rendered(5) == (DATA / "golden_fig5_trace.txt").read_text()

    def test_goldens_differ_from_each_other(self):
        """Sanity: the two schemes really do produce different traces."""
        assert (DATA / "golden_fig3_trace.txt").read_text() != (
            DATA / "golden_fig5_trace.txt"
        ).read_text()
