"""Unit tests for the Tahoe sender against a hand-driven network."""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import Datagram, IcmpMessage, IcmpType, TcpAck, TcpSegment
from repro.tcp import TahoeSender, TcpConfig


class Harness:
    """A sender wired to a capture interface; ACKs are injected by hand."""

    def __init__(self, sim, **config_kwargs):
        defaults = dict(packet_size=576, window_bytes=4096, transfer_bytes=100 * 536)
        defaults.update(config_kwargs)
        self.sim = sim
        self.node = Node("FH")
        self.sent = []
        self.node.add_interface("capture", self.sent.append, "MH")
        self.sender = TahoeSender(sim, self.node, "MH", config=TcpConfig(**defaults))
        self.node.attach_agent(self.sender)

    def start(self):
        self.sender.start()
        self.sim.run(until=self.sim.now)

    def ack(self, ack_seq, at=None):
        dg = Datagram("MH", "FH", TcpAck(ack_seq), 40)
        if at is None:
            self.sender.receive(dg)
        else:
            self.sim.schedule_at(at, self.sender.receive, dg)

    def segments(self):
        return [d.payload.seq for d in self.sent if isinstance(d.payload, TcpSegment)]


class TestSlowStart:
    def test_starts_with_one_segment(self, sim):
        h = Harness(sim)
        h.start()
        assert h.segments() == [0]

    def test_window_doubles_per_rtt(self, sim):
        h = Harness(sim)
        h.start()
        h.ack(1)
        assert h.segments() == [0, 1, 2]  # cwnd 2 after first new ACK
        h.ack(2)
        h.ack(3)
        # cwnd grew to 4: segments 3,4 then 5,6 were released.
        assert h.segments() == [0, 1, 2, 3, 4, 5, 6]

    def test_cwnd_capped_by_advertised_window(self, sim):
        h = Harness(sim, window_bytes=576 * 2)  # 2 packets
        h.start()
        for i in range(1, 10):
            h.ack(i)
        assert h.sender.effective_window() == 2

    def test_congestion_avoidance_after_ssthresh(self, sim):
        h = Harness(sim, window_bytes=576 * 50)
        h.sender.ssthresh = 2.0
        h.start()
        h.ack(1)  # slow start: cwnd 1 -> 2
        assert h.sender.cwnd == pytest.approx(2.0)
        h.ack(2)  # at/above ssthresh: +1/cwnd
        assert h.sender.cwnd == pytest.approx(2.5)


class TestAckProcessing:
    def test_cumulative_ack_advances_una(self, sim):
        h = Harness(sim)
        h.start()
        h.ack(1)
        h.ack(3)
        assert h.sender.snd_una == 3

    def test_old_ack_ignored(self, sim):
        h = Harness(sim)
        h.start()
        h.ack(1)
        before = h.sender.cwnd
        h.ack(1)  # dupack (data outstanding), not a new ack
        h.ack(0)  # stale
        assert h.sender.snd_una == 1
        assert h.sender.cwnd == before

    def test_completion(self, sim):
        h = Harness(sim, transfer_bytes=3 * 536)
        done = []
        h.sender.on_complete = lambda: done.append(sim.now)
        h.start()
        h.ack(1)
        h.ack(2)
        h.ack(3)
        assert h.sender.completed
        assert done
        assert not h.sender.rtx_timer.pending

    def test_last_segment_payload_is_partial(self, sim):
        h = Harness(sim, transfer_bytes=536 + 100)
        h.start()
        h.ack(1)
        sizes = [d.payload.payload_bytes for d in h.sent]
        assert sizes == [536, 100]

    def test_bytes_accounting(self, sim):
        h = Harness(sim, transfer_bytes=2 * 536)
        h.start()
        h.ack(1)
        assert h.sender.stats.bytes_sent_wire == 2 * 576


class TestFastRetransmit:
    def test_third_dupack_triggers_retransmit(self, sim):
        h = Harness(sim)
        h.start()
        h.ack(1)
        h.ack(2)  # window now 3: segments up to 4 outstanding
        sent_before = len(h.sent)
        for _ in range(3):
            h.ack(2)
        assert h.sender.stats.fast_retransmits == 1
        assert h.segments()[sent_before] == 2  # hole retransmitted
        assert h.sender.cwnd == 1.0

    def test_fewer_dupacks_do_not_trigger(self, sim):
        h = Harness(sim)
        h.start()
        h.ack(1)
        h.ack(2)
        h.ack(2)
        h.ack(2)
        assert h.sender.stats.fast_retransmits == 0

    def test_ssthresh_halves_flight(self, sim):
        h = Harness(sim, window_bytes=576 * 20)
        h.start()
        for i in range(1, 9):
            h.ack(i)
        flight = h.sender.outstanding
        for _ in range(3):
            h.ack(8)
        assert h.sender.ssthresh == pytest.approx(max(2.0, flight / 2))

    def test_no_fast_retransmit_without_outstanding_data(self, sim):
        h = Harness(sim, transfer_bytes=536)
        h.start()
        h.ack(1)  # transfer complete
        for _ in range(5):
            h.ack(1)
        assert h.sender.stats.fast_retransmits == 0


class TestTimeout:
    def test_timeout_retransmits_first_unacked(self, sim):
        h = Harness(sim)
        h.start()
        sim.run(until=10.0)  # initial RTO 3 s, backoff doubles
        assert h.sender.stats.timeouts >= 1
        assert h.segments().count(0) >= 2

    def test_timeout_collapses_window(self, sim):
        h = Harness(sim)
        h.start()
        h.ack(1)
        h.ack(2)
        sim.run(until=20.0)
        assert h.sender.stats.timeouts >= 1
        assert h.sender.cwnd == 1.0 or h.sender.cwnd < 3

    def test_backoff_doubles_interval(self, sim):
        h = Harness(sim, initial_rto=1.0)
        h.start()
        sim.run(until=16.0)
        times = [t for t, *_ in []]  # placeholder, use stats below
        # With initial RTO 1 and doublings: expiries at 1, 3, 7, 15 s.
        assert h.sender.stats.timeouts == 4

    def test_backoff_cleared_by_fresh_ack(self, sim):
        h = Harness(sim, initial_rto=1.0)
        h.start()
        sim.run(until=1.5)  # one timeout, backoff_exp = 1
        assert h.sender.backoff_exp == 1
        # ACK covering a *retransmitted* segment does not clear backoff.
        h.ack(1, at=1.6)
        sim.run(until=1.7)
        assert h.sender.backoff_exp == 1
        # ACK for a fresh (never-retransmitted) segment clears it.
        h.ack(2, at=1.8)
        sim.run(until=1.9)
        assert h.sender.backoff_exp == 0

    def test_karn_no_sample_from_retransmitted(self, sim):
        h = Harness(sim, initial_rto=1.0)
        h.start()
        sim.run(until=1.5)  # segment 0 retransmitted
        h.ack(1, at=2.0)  # huge apparent RTT, must not be sampled
        sim.run(until=2.1)
        assert h.sender.estimator.samples_taken == 0

    def test_rtt_sampled_from_clean_exchange(self, sim):
        h = Harness(sim)
        h.start()
        h.ack(1, at=0.5)
        sim.run(until=0.6)
        assert h.sender.estimator.samples_taken == 1


class TestEbsnHook:
    def test_rearm_pushes_timeout_out(self, sim):
        h = Harness(sim, initial_rto=2.0)
        h.start()
        # Re-arm just before each expiry; no timeout should ever fire.
        for at in (1.9, 3.8, 5.7):
            sim.schedule_at(at, h.sender.rearm_rtx_timer)
        sim.run(until=7.0)
        assert h.sender.stats.timeouts == 0
        assert h.sender.stats.ebsn_timer_rearms == 3

    def test_rearm_without_outstanding_is_noop(self, sim):
        h = Harness(sim, transfer_bytes=536)
        h.start()
        h.ack(1)
        h.sender.rearm_rtx_timer()
        assert h.sender.stats.ebsn_timer_rearms == 0
        assert not h.sender.rtx_timer.pending

    def test_icmp_ignored_without_handler(self, sim):
        h = Harness(sim)
        h.start()
        msg = Datagram("BS", "FH", IcmpMessage(IcmpType.EBSN), 40)
        h.sender.receive(msg)  # must not raise or change anything
        assert h.sender.stats.ebsn_received == 0


class TestConfigValidation:
    def test_packet_smaller_than_header_rejected(self):
        with pytest.raises(ValueError):
            TcpConfig(packet_size=40)

    def test_window_smaller_than_packet_rejected(self):
        with pytest.raises(ValueError):
            TcpConfig(packet_size=576, window_bytes=500)

    def test_total_segments(self):
        cfg = TcpConfig(packet_size=576, transfer_bytes=100 * 1024, window_bytes=4096)
        assert cfg.total_segments == -(-100 * 1024 // 536)
        assert cfg.window_segments == 7

    def test_double_start_rejected(self, sim):
        h = Harness(sim)
        h.start()
        with pytest.raises(RuntimeError):
            h.sender.start()

    def test_sender_rejects_data_segment(self, sim):
        h = Harness(sim)
        h.start()
        with pytest.raises(TypeError):
            h.sender.receive(Datagram("MH", "FH", TcpSegment(0, 10, 0.0), 50))
