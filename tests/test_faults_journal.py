"""Tests for the fault taxonomy, retry policy, and checkpoint journal."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.experiments import journal as journal_mod
from repro.experiments.cache import ResultCache
from repro.experiments.config import wan_scenario
from repro.experiments.faults import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_TIMEOUT,
    CampaignInterrupted,
    CompletenessReport,
    RetryPolicy,
    UnitFailure,
    UnitQuarantined,
    UnitTimeout,
    WorkerCrashed,
    merge_reports,
)
from repro.experiments.journal import CampaignJournal
from repro.experiments.parallel import _execute_unit
from repro.experiments.runner import run_replicated

TINY = 5 * 1024


def _failure(kind: str, **overrides) -> UnitFailure:
    fields = dict(
        index=3,
        key="abc123",
        seed=7,
        scheme="ebsn",
        kind=kind,
        message="boom",
        attempts=3,
    )
    fields.update(overrides)
    return UnitFailure(**fields)


class TestRetryPolicy:
    def test_deterministic_given_key_and_attempt(self):
        policy = RetryPolicy()
        assert policy.delay(0, "k") == policy.delay(0, "k")
        assert policy.delay(1, "k") == policy.delay(1, "k")

    def test_jitter_decorrelates_keys(self):
        policy = RetryPolicy()
        assert policy.delay(0, "unit-a") != policy.delay(0, "unit-b")

    def test_bounded_by_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=2.0)
        for attempt in range(10):
            assert 0.0 <= policy.delay(attempt, "k") <= 2.0

    def test_exponential_ceiling_grows(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=1e9)
        # The ceiling doubles per attempt; sampled delays can't prove
        # it directly, but a zero base must always give zero delay.
        assert RetryPolicy(backoff_base=0.0).delay(5, "k") == 0.0
        assert policy.delay(0, "k") <= 1.0

    def test_max_retries_default(self):
        assert RetryPolicy().max_retries == 2


class TestTaxonomy:
    def test_timeout_maps_to_unit_timeout(self):
        exc = _failure(FAULT_TIMEOUT).to_exception()
        assert isinstance(exc, UnitTimeout)

    def test_crash_maps_to_worker_crashed(self):
        exc = _failure(FAULT_CRASH).to_exception()
        assert isinstance(exc, WorkerCrashed)

    def test_error_maps_to_quarantined(self):
        exc = _failure(FAULT_ERROR).to_exception()
        assert isinstance(exc, UnitQuarantined)

    def test_exceptions_carry_the_failure(self):
        failure = _failure(FAULT_TIMEOUT, bundle_path="/tmp/b.json")
        exc = failure.to_exception()
        assert exc.failure == failure
        assert "seed 7" in str(exc)
        assert "/tmp/b.json" in str(exc)

    def test_taxonomy_exceptions_pickle(self):
        for kind in (FAULT_TIMEOUT, FAULT_CRASH, FAULT_ERROR):
            exc = _failure(kind).to_exception()
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert clone.failure == exc.failure

    def test_interrupted_pickles_and_names_signal(self):
        exc = CampaignInterrupted(2, 3, 10, "camp.journal")
        assert "SIGINT" in str(exc)
        assert "--resume camp.journal" in str(exc)
        clone = pickle.loads(pickle.dumps(exc))
        assert (clone.signum, clone.completed, clone.total) == (2, 3, 10)


class TestCompletenessReport:
    def test_complete_report(self):
        report = CompletenessReport(total=4, completed=4, from_cache=1)
        assert report.complete
        assert report.simulated == 3
        assert "4/4" in report.describe()
        assert "PARTIAL" not in report.describe()

    def test_partial_report_enumerates_quarantine(self):
        report = CompletenessReport(
            total=4, completed=3, quarantined=(_failure(FAULT_TIMEOUT),)
        )
        assert not report.complete
        text = report.describe()
        assert "3/4" in text
        assert "PARTIAL" in text
        assert "seed 7" in text

    def test_write_back_timings_in_describe(self):
        report = CompletenessReport(
            total=1,
            completed=1,
            cache_write_seconds=0.25,
            journal_write_seconds=0.5,
        )
        text = report.describe()
        assert "write-back: cache 250.0 ms, journal 500.0 ms" in text

    def test_write_back_line_absent_when_unmeasured(self):
        assert "write-back" not in CompletenessReport(total=1, completed=1).describe()

    def test_merge_reports_sums_write_back_timings(self):
        merged = merge_reports(
            [
                CompletenessReport(
                    total=1,
                    completed=1,
                    cache_write_seconds=0.1,
                    journal_write_seconds=0.2,
                ),
                CompletenessReport(total=1, completed=1, cache_write_seconds=0.3),
            ]
        )
        assert merged.cache_write_seconds == pytest.approx(0.4)
        assert merged.journal_write_seconds == pytest.approx(0.2)

    def test_merge_reports_sums_everything(self):
        merged = merge_reports(
            [
                CompletenessReport(total=2, completed=2, from_cache=1),
                CompletenessReport(
                    total=3,
                    completed=2,
                    from_journal=1,
                    quarantined=(_failure(FAULT_CRASH),),
                ),
            ]
        )
        assert merged.total == 5
        assert merged.completed == 4
        assert merged.from_cache == 1
        assert merged.from_journal == 1
        assert len(merged.quarantined) == 1


class TestCampaignJournal:
    def _summary(self, seed: int = 1):
        return _execute_unit(
            wan_scenario(transfer_bytes=TINY, seed=seed, record_trace=False)
        )

    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "camp.journal"
        with CampaignJournal(path):
            pass
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "header"
        assert first["format"] == journal_mod.JOURNAL_FORMAT

    def test_round_trip_across_reopen(self, tmp_path):
        path = tmp_path / "camp.journal"
        config = wan_scenario(transfer_bytes=TINY, record_trace=False)
        summary = self._summary()
        with CampaignJournal(path) as journal:
            key = journal.key(config)
            journal.record(key, summary)
        with CampaignJournal(path) as resumed:
            assert len(resumed) == 1
            assert resumed.get(resumed.key(config)).metrics == summary.metrics

    def test_key_matches_result_cache_key(self, tmp_path):
        config = wan_scenario(transfer_bytes=TINY, record_trace=False)
        journal = CampaignJournal(tmp_path / "camp.journal")
        cache = ResultCache(tmp_path / "cache")
        assert journal.key(config) == cache.key(config)
        journal.close()

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "camp.journal"
        with CampaignJournal(path) as journal:
            journal.record("k1", self._summary())
        with path.open("a") as fh:
            fh.write('{"kind": "unit", "key": "k2", "summ')  # torn write
        resumed = CampaignJournal(path)
        assert resumed.torn_lines == 1
        assert len(resumed) == 1 and resumed.get("k1") is not None
        resumed.close()

    def test_failure_records_are_not_completed_units(self, tmp_path):
        path = tmp_path / "camp.journal"
        with CampaignJournal(path) as journal:
            journal.record_failure(_failure(FAULT_TIMEOUT, key="k-failed"))
        resumed = CampaignJournal(path)
        assert resumed.get("k-failed") is None
        assert len(resumed) == 0
        resumed.close()

    def test_stale_code_token_ignored_with_warning(self, tmp_path, monkeypatch, caplog):
        path = tmp_path / "camp.journal"
        with CampaignJournal(path) as journal:
            journal.record("k1", self._summary())
        monkeypatch.setattr(
            journal_mod, "code_version_token", lambda: "different-code"
        )
        with caplog.at_level("WARNING", logger="repro.experiments.journal"):
            resumed = CampaignJournal(path)
        assert resumed.stale_entries == 1
        assert any("different code version" in r.message for r in caplog.records)
        resumed.close()

    def test_unknown_format_ignores_entries(self, tmp_path, caplog):
        path = tmp_path / "camp.journal"
        path.write_text(
            json.dumps({"kind": "header", "format": 999, "code": "x"}) + "\n"
            + json.dumps({"kind": "unit", "key": "k", "summary": "AA=="}) + "\n"
        )
        with caplog.at_level("WARNING", logger="repro.experiments.journal"):
            journal = CampaignJournal(path)
        assert len(journal) == 0
        journal.close()


class TestWriteBackTimings:
    """The durability cost of a campaign is measured, not hidden."""

    def test_campaign_records_cache_and_journal_write_cost(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = wan_scenario(transfer_bytes=TINY, record_trace=False)
        with CampaignJournal(tmp_path / "camp.journal") as journal:
            result = run_replicated(
                config, replications=2, cache=cache, journal=journal
            )
        report = result.report
        assert report.cache_write_seconds > 0.0
        assert report.journal_write_seconds > 0.0
        assert "write-back" in report.describe()

    def test_cacheless_campaign_reports_zero_cost(self):
        config = wan_scenario(transfer_bytes=TINY, record_trace=False)
        report = run_replicated(config, replications=1).report
        assert report.cache_write_seconds == 0.0
        assert report.journal_write_seconds == 0.0
