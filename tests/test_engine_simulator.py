"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine import Simulator, SimulationError


class TestScheduling:
    def test_initial_time_is_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "latest")
        sim.run()
        assert fired == ["early", "late", "latest"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_same_time_events_run_in_scheduling_order(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(5.0, fired.append, "x")
        sim.run()
        assert sim.now == 5.0 and fired == ["x"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_events_scheduled_during_execution(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "no")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancel_from_within_earlier_event(self, sim):
        fired = []
        later = sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_pending_count_excludes_cancelled(self, sim):
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.pending_count() == 1

    def test_peek_skips_cancelled_events(self, sim):
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.peek() == 2.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=3.0)
        assert fired == ["a"]
        assert sim.now == 3.0

    def test_run_until_is_inclusive(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "edge")
        sim.run(until=3.0)
        assert fired == ["edge"]

    def test_run_until_advances_clock_when_heap_drains(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_resume_after_until(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=3.0)
        sim.run()
        assert fired == ["b"]

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_max_events_bounds_execution(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_executes_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "only")
        assert sim.step() is True
        assert fired == ["only"]
        assert sim.step() is False

    def test_events_executed_counter(self, sim):
        for i in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_execution_order_is_sorted_by_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda t=d: fired.append(t))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    def test_cancelled_events_never_fire(self, spec):
        sim = Simulator()
        fired = []
        events = []
        for delay, cancel in spec:
            events.append((sim.schedule(delay, fired.append, delay), cancel))
        for event, cancel in events:
            if cancel:
                event.cancel()
        sim.run()
        expected = sorted(d for (d, c) in spec if not c)
        assert fired == expected


class TestHeapCompaction:
    def test_pending_count_is_live_count(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for event in events[:4]:
            event.cancel()
        assert sim.pending_count() == 6

    def test_mass_cancellation_compacts_heap(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
        for event in events[:900]:
            event.cancel()
        # Dead entries outnumbered live ones at some point, so the heap
        # was rebuilt and holds only survivors (plus whatever was
        # cancelled after the last rebuild).
        assert sim.heap_compactions >= 1
        assert len(sim._heap) < 250
        assert sim.pending_count() == 100

    def test_compaction_preserves_execution_order(self, sim):
        fired = []
        events = [
            sim.schedule(float(i % 13) + 1.0, fired.append, i) for i in range(500)
        ]
        cancelled = set()
        for i, event in enumerate(events):
            if i % 3 != 0:
                event.cancel()
                cancelled.add(i)
        sim.run()
        expected = sorted(
            (i for i in range(500) if i not in cancelled),
            key=lambda i: (float(i % 13) + 1.0, i),
        )
        assert fired == expected

    def test_cancel_after_execution_keeps_count_exact(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()  # executed; must not corrupt the live count
        assert sim.pending_count() == 0
        survivor = sim.schedule(1.0, lambda: None)
        assert sim.pending_count() == 1
        survivor.cancel()
        assert sim.pending_count() == 0

    def test_peek_keeps_count_exact(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0  # pops the cancelled head
        assert sim.pending_count() == 1

    def test_below_min_heap_no_compaction(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        assert sim.heap_compactions == 0
        sim.run()
        assert sim.events_executed == 0


class TestWallClockWatchdog:
    """The countdown watchdog, exercised without any real waiting.

    The stride countdown must check the wall clock exactly when the
    executed-event count reaches a positive multiple of
    ``WATCHDOG_STRIDE`` — the same abort points as a per-event modulo
    check — and must not perturb an unwatched run.  No SIGALRM, no
    sleeping: a fake monotonic clock drives the abort.
    """

    def test_abort_fires_exactly_at_the_stride_boundary(self, monkeypatch):
        import repro.engine.simulator as simulator_mod
        from repro.engine.simulator import WallClockExceeded

        class FakeTime:
            """monotonic() that advances one second per call."""

            def __init__(self):
                self.calls = 0

            def monotonic(self):
                self.calls += 1
                return float(self.calls)

        monkeypatch.setattr(simulator_mod, "time", FakeTime())
        sim = Simulator()

        def forever():
            sim.schedule(1e-9, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(WallClockExceeded) as info:
            sim.run(wall_timeout=0.0)
        # A zero budget is expired by the first clock check, which the
        # countdown schedules after exactly WATCHDOG_STRIDE events.
        assert info.value.events == Simulator.WATCHDOG_STRIDE
        assert sim.events_executed == Simulator.WATCHDOG_STRIDE

    def test_generous_budget_is_behaviour_identical(self):
        def run_chain(**kwargs):
            sim = Simulator()
            fired = []

            def chain(n):
                fired.append(n)
                if n:
                    sim.schedule(0.001, chain, n - 1)

            sim.schedule(0.0, chain, 3 * Simulator.WATCHDOG_STRIDE)
            sim.run(**kwargs)
            return fired, sim.events_executed, sim.now

        unwatched = run_chain()
        watched = run_chain(wall_timeout=1e9)
        assert watched == unwatched
