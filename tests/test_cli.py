"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import topology
from repro.experiments.faults import (
    FAULT_TIMEOUT,
    CampaignInterrupted,
    UnitFailure,
    UnitTimeout,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "magic"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "ebsn"
        assert args.packet_size == 576
        assert not args.lan


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--scheme", "basic", "--transfer-kb", "10", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out
        assert "goodput" in out

    def test_run_lan(self, capsys):
        code = main(
            ["run", "--lan", "--scheme", "ebsn", "--transfer-kb", "256",
             "--bad-period", "0.8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Mbps" in out


class TestTrace:
    def test_trace_renders(self, capsys):
        code = main(["trace", "--scheme", "basic", "--width", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "timeouts" in out
        assert "|" in out  # the plot body


class TestSweep:
    def test_wan_sweep(self, capsys):
        code = main(
            ["sweep", "--scheme", "basic", "--transfer-kb", "10",
             "--replications", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "size(B)" in out
        assert "1536" in out
        assert "campaign:" in out  # completeness report

    def test_fault_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.timeout is None
        assert args.retries is None
        assert args.resume is None
        assert args.fail_fast is False
        args = build_parser().parse_args(
            ["figure", "7", "--timeout", "30", "--retries", "1",
             "--resume", "camp.journal", "--fail-fast"]
        )
        assert args.timeout == 30.0
        assert args.retries == 1
        assert args.resume == "camp.journal"
        assert args.fail_fast is True

    def test_resume_journals_then_skips(self, capsys, tmp_path):
        journal = tmp_path / "camp.journal"
        argv = ["sweep", "--scheme", "basic", "--transfer-kb", "10",
                "--replications", "1", "--no-cache", "--resume", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "9 simulated" in first
        assert journal.is_file()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 simulated" in second
        assert "9 from journal" in second

    def test_partial_campaign_reports_and_exits_one(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "bundles"))
        original = topology.run_scenario

        def broken_seed(cfg, **kwargs):
            if cfg.seed == 2:
                raise ValueError("chaos")
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", broken_seed)
        code = main(
            ["sweep", "--scheme", "basic", "--transfer-kb", "10",
             "--replications", "2", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "PARTIAL" in out

    def test_interrupt_exits_130_with_resume_hint(self, capsys, monkeypatch):
        def interrupted(*args, **kwargs):
            raise CampaignInterrupted(2, 3, 18, "camp.journal")

        monkeypatch.setattr("repro.cli.run_replicated", interrupted)
        code = main(["sweep", "--replications", "2", "--no-cache"])
        err = capsys.readouterr().err
        assert code == 130
        assert "SIGINT" in err
        assert "--resume camp.journal" in err

    def test_fail_fast_abort_exits_four(self, capsys, monkeypatch):
        failure = UnitFailure(
            index=0, key=None, seed=1, scheme="basic", kind=FAULT_TIMEOUT,
            message="wall-clock budget exceeded", attempts=3,
        )

        def aborted(*args, **kwargs):
            raise UnitTimeout(failure)

        monkeypatch.setattr("repro.cli.run_replicated", aborted)
        code = main(
            ["sweep", "--replications", "2", "--no-cache", "--fail-fast"]
        )
        err = capsys.readouterr().err
        assert code == 4
        assert "campaign aborted" in err
        assert "timeout" in err


class TestFigure:
    def test_trace_figure(self, capsys):
        code = main(["figure", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out

    def test_unknown_figure(self, capsys):
        code = main(["figure", "99"])
        assert code == 2


class TestCsdp:
    def test_csdp_table(self, capsys):
        code = main(["csdp", "--connections", "2", "--transfer-kb", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fifo" in out and "csdp" in out


class TestHandoffCommand:
    def test_handoff_table(self, capsys):
        code = main(["handoff", "--transfer-kb", "20", "--seeds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fast_rtx" in out


class TestCongestionCommand:
    def test_congestion_table(self, capsys):
        code = main(["congestion", "--seeds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ECN" in out and "ebsn" in out


class TestReportCommand:
    def test_report_assembles_sections(self, capsys, tmp_path):
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        (out_dir / "fig7_wan_basic.txt").write_text("fig7 data\n")
        (out_dir / "zz_custom.txt").write_text("extra\n")
        target = tmp_path / "REPORT.md"
        code = main(
            ["report", "--out-dir", str(out_dir), "--output", str(target)]
        )
        assert code == 0
        text = target.read_text()
        assert "## fig7_wan_basic" in text
        assert "## zz_custom" in text
        assert text.index("fig7_wan_basic") < text.index("zz_custom")

    def test_report_missing_dir(self, tmp_path):
        code = main(["report", "--out-dir", str(tmp_path / "nope")])
        assert code == 2
