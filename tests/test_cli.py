"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "magic"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "ebsn"
        assert args.packet_size == 576
        assert not args.lan


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--scheme", "basic", "--transfer-kb", "10", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out
        assert "goodput" in out

    def test_run_lan(self, capsys):
        code = main(
            ["run", "--lan", "--scheme", "ebsn", "--transfer-kb", "256",
             "--bad-period", "0.8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Mbps" in out


class TestTrace:
    def test_trace_renders(self, capsys):
        code = main(["trace", "--scheme", "basic", "--width", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "timeouts" in out
        assert "|" in out  # the plot body


class TestSweep:
    def test_wan_sweep(self, capsys):
        code = main(
            ["sweep", "--scheme", "basic", "--transfer-kb", "10",
             "--replications", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "size(B)" in out
        assert "1536" in out


class TestFigure:
    def test_trace_figure(self, capsys):
        code = main(["figure", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out

    def test_unknown_figure(self, capsys):
        code = main(["figure", "99"])
        assert code == 2


class TestCsdp:
    def test_csdp_table(self, capsys):
        code = main(["csdp", "--connections", "2", "--transfer-kb", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fifo" in out and "csdp" in out


class TestHandoffCommand:
    def test_handoff_table(self, capsys):
        code = main(["handoff", "--transfer-kb", "20", "--seeds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fast_rtx" in out


class TestCongestionCommand:
    def test_congestion_table(self, capsys):
        code = main(["congestion", "--seeds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ECN" in out and "ebsn" in out


class TestReportCommand:
    def test_report_assembles_sections(self, capsys, tmp_path):
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        (out_dir / "fig7_wan_basic.txt").write_text("fig7 data\n")
        (out_dir / "zz_custom.txt").write_text("extra\n")
        target = tmp_path / "REPORT.md"
        code = main(
            ["report", "--out-dir", str(out_dir), "--output", str(target)]
        )
        assert code == 0
        text = target.read_text()
        assert "## fig7_wan_basic" in text
        assert "## zz_custom" in text
        assert text.index("fig7_wan_basic") < text.index("zz_custom")

    def test_report_missing_dir(self, tmp_path):
        code = main(["report", "--out-dir", str(tmp_path / "nope")])
        assert code == 2
