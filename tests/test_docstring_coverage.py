"""Quality gate: every public item in the library is documented.

Deliverable (e) promises doc comments on every public item; this
meta-test enforces it so the promise survives future edits.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = {"repro.__main__"}


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [
            m.__name__ for m in _public_modules() if not (m.__doc__ or "").strip()
        ]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in _public_modules():
            for name, obj in _public_members(module):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in _public_modules():
            for name, obj in _public_members(module):
                if not inspect.isclass(obj):
                    continue
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not (attr.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}.{attr_name}")
        assert not missing, f"undocumented public methods: {missing}"
