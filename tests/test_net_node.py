"""Unit tests for nodes and interfaces."""

from __future__ import annotations

import pytest

from repro.net.node import Interface, Node
from repro.net.packet import Datagram, TcpSegment


def make_datagram(src="FH", dst="MH"):
    return Datagram(src, dst, TcpSegment(0, 536, 0.0), 576)


class RecordingAgent:
    def __init__(self):
        self.received = []

    def receive(self, datagram):
        self.received.append(datagram)


class TestInterface:
    def test_counts_traffic(self):
        sent = []
        iface = Interface("wired", sent.append)
        iface(make_datagram())
        iface(make_datagram())
        assert iface.datagrams_out == 2
        assert iface.bytes_out == 1152
        assert len(sent) == 2


class TestNode:
    def test_local_delivery_to_agent(self):
        node = Node("MH")
        agent = RecordingAgent()
        node.attach_agent(agent)
        node.receive(make_datagram(dst="MH"))
        assert len(agent.received) == 1
        assert node.datagrams_received == 1

    def test_local_delivery_without_agent_raises(self):
        with pytest.raises(RuntimeError):
            Node("MH").receive(make_datagram(dst="MH"))

    def test_forwarding(self):
        node = Node("BS")
        out = []
        node.add_interface("wireless", out.append, "MH")
        node.receive(make_datagram(dst="MH"))
        assert len(out) == 1
        assert node.datagrams_forwarded == 1

    def test_add_interface_installs_routes(self):
        node = Node("FH")
        out = []
        node.add_interface("wired", out.append, "BS", "MH")
        node.send(make_datagram(dst="BS"))
        node.send(make_datagram(dst="MH"))
        assert len(out) == 2

    def test_unroutable_forward_raises(self):
        node = Node("BS")
        with pytest.raises(KeyError):
            node.receive(make_datagram(dst="nowhere"))

    def test_send_originates_via_routing(self):
        node = Node("FH")
        out = []
        node.add_interface("wired", out.append, "MH")
        node.send(make_datagram())
        assert len(out) == 1
