"""Tests for the claim-validation harness."""

from __future__ import annotations

import pytest

from repro.experiments.claims import CLAIMS, ClaimResult, validate_all


class TestClaimRegistry:
    def test_ids_unique(self):
        ids = [c.id for c in CLAIMS]
        assert len(ids) == len(set(ids))

    def test_every_claim_has_source_and_statement(self):
        for claim in CLAIMS:
            assert claim.source
            assert len(claim.statement) > 10

    def test_core_figures_covered(self):
        sources = {c.source for c in CLAIMS}
        for figure in ("Fig 3", "Fig 5", "Fig 7", "Fig 8", "Fig 9", "Fig 10", "Fig 11"):
            assert figure in sources


class TestValidation:
    def test_all_claims_pass_at_reduced_scale(self):
        """The whole claim suite must hold even at 0.3x scale."""
        results = validate_all(scale=0.3, seeds=3)
        failures = [
            f"{c.id}: {r.detail}" for c, r in results if not r.passed
        ]
        assert not failures, failures

    def test_results_are_claim_result_objects(self):
        claim = CLAIMS[0]
        result = claim.evaluate(scale=0.2, seeds=1)
        assert isinstance(result, ClaimResult)
        assert result.detail


class TestCliValidate:
    def test_cli_reports(self, capsys):
        from repro.cli import main

        code = main(["validate", "--scale", "0.2", "--seeds", "2"])
        out = capsys.readouterr().out
        assert "claims validated" in out
        # The quick scale may miss a marginal claim; exit code reflects it.
        assert code in (0, 1)
