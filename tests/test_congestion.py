"""Tests for ECN machinery and the wired-congestion study (§6)."""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.experiments.congestion import (
    CbrSink,
    CbrSource,
    CongestedScenarioConfig,
    run_congested_scenario,
)
from repro.experiments.topology import Scheme
from repro.net.link import WiredLink
from repro.net.node import Node
from repro.net.packet import Datagram, TcpAck, TcpSegment
from repro.tcp import TahoeSender, TcpConfig, TcpSink


def data_datagram(seq=0, marked=False):
    dg = Datagram("FH", "MH", TcpSegment(seq, 536, 0.0), 576)
    dg.ecn_marked = marked
    return dg


class TestEcnMarking:
    def test_link_marks_above_threshold(self, sim):
        link = WiredLink(sim, 8_000, 0.0, ecn_threshold=2)
        link.connect(lambda d: None)
        datagrams = [data_datagram(i) for i in range(5)]
        for dg in datagrams:
            link.send(dg)
        # First goes straight to service; queue fills: arrivals seeing
        # depth >= 2 get marked.
        assert sum(d.ecn_marked for d in datagrams) == 2
        assert link.ecn_marks == 2

    def test_no_marking_when_disabled(self, sim):
        link = WiredLink(sim, 8_000, 0.0)
        link.connect(lambda d: None)
        datagrams = [data_datagram(i) for i in range(5)]
        for dg in datagrams:
            link.send(dg)
        assert not any(d.ecn_marked for d in datagrams)

    def test_invalid_threshold(self, sim):
        with pytest.raises(ValueError):
            WiredLink(sim, 8_000, 0.0, ecn_threshold=0)


class TestEcnEcho:
    def make_sink(self, sim):
        node = Node("MH")
        acks = []
        node.add_interface("cap", acks.append, "FH")
        sink = TcpSink(sim, node, "FH")
        node.attach_agent(sink)
        return sink, acks

    def test_marked_data_echoed_once(self, sim):
        sink, acks = self.make_sink(sim)
        sink.receive(data_datagram(0, marked=True))
        sink.receive(data_datagram(1, marked=False))
        assert [a.payload.ecn_echo for a in acks] == [True, False]
        assert sink.stats.ecn_marks_seen == 1

    def test_multiple_marks_echoed_on_successive_acks(self, sim):
        sink, acks = self.make_sink(sim)
        sink.receive(data_datagram(0, marked=True))
        sink.receive(data_datagram(1, marked=True))
        sink.receive(data_datagram(2, marked=False))
        assert [a.payload.ecn_echo for a in acks] == [True, True, False]


class TestEcnResponse:
    def make_sender(self, sim, ecn=True):
        node = Node("FH")
        node.add_interface("cap", lambda d: None, "MH")
        sender = TahoeSender(
            sim,
            node,
            "MH",
            config=TcpConfig(packet_size=576, window_bytes=576 * 20,
                             transfer_bytes=100 * 536),
        )
        sender.ecn_enabled = ecn
        node.attach_agent(sender)
        sender.start()
        return sender

    def ack(self, sender, n, echo=False):
        sender.receive(Datagram("MH", "FH", TcpAck(n, ecn_echo=echo), 40))

    def test_echo_halves_window(self, sim):
        sender = self.make_sender(sim)
        for i in range(1, 9):
            self.ack(sender, i)
        cwnd = sender.cwnd
        self.ack(sender, 9, echo=True)
        assert sender.cwnd < cwnd
        assert sender.stats.ecn_responses == 1

    def test_at_most_one_response_per_window(self, sim):
        sender = self.make_sender(sim)
        for i in range(1, 9):
            self.ack(sender, i)
        self.ack(sender, 9, echo=True)
        cwnd_after_first = sender.cwnd
        self.ack(sender, 10, echo=True)  # same window of data
        assert sender.stats.ecn_responses == 1
        assert sender.cwnd >= cwnd_after_first

    def test_no_retransmission_on_echo(self, sim):
        sender = self.make_sender(sim)
        for i in range(1, 5):
            self.ack(sender, i)
        sent = sender.stats.segments_sent
        retx = sender.stats.retransmissions
        self.ack(sender, 5, echo=True)
        assert sender.stats.retransmissions == retx
        assert sender.stats.segments_sent >= sent  # may still grow window

    def test_echo_ignored_when_disabled(self, sim):
        sender = self.make_sender(sim, ecn=False)
        for i in range(1, 5):
            self.ack(sender, i)
        cwnd = sender.cwnd
        self.ack(sender, 5, echo=True)
        assert sender.stats.ecn_responses == 0
        assert sender.cwnd >= cwnd


class TestCbr:
    def test_rate(self, sim):
        node = Node("XS")
        sent = []
        node.add_interface("x", sent.append, "BS")
        source = CbrSource(sim, node, "BS", rate_bps=57_600, packet_size=576)
        source.start()
        sim.run(until=10.0)
        # 57600 bps / (576*8 bits) = 12.5 pkt/s.
        assert len(sent) == pytest.approx(125, abs=2)

    def test_stop(self, sim):
        node = Node("XS")
        node.add_interface("x", lambda d: None, "BS")
        source = CbrSource(sim, node, "BS", rate_bps=57_600)
        source.start()
        sim.schedule(1.0, source.stop)
        sim.run(until=5.0)
        assert source.packets_sent <= 13

    def test_sink_counts(self):
        sink = CbrSink()
        sink.receive(data_datagram())
        assert sink.packets_received == 1
        assert sink.bytes_received == 576

    def test_invalid_rate(self, sim):
        with pytest.raises(ValueError):
            CbrSource(sim, Node("XS"), "BS", rate_bps=0)


class TestCongestedScenario:
    def run(self, scheme=Scheme.BASIC, ecn=False, load=0.9, seed=1, transfer=20 * 1024):
        config = CongestedScenarioConfig(
            scheme=scheme,
            ecn=ecn,
            cross_load=load,
            seed=seed,
            tcp=TcpConfig(transfer_bytes=transfer),
        )
        return run_congested_scenario(config)

    def test_completes_under_congestion(self):
        result = self.run()
        assert result.completed

    def test_congestion_produces_drops_without_ecn(self):
        drops = sum(self.run(seed=s).bottleneck_drops for s in range(1, 4))
        assert drops > 0

    def test_ecn_reduces_drops(self):
        plain = sum(self.run(ecn=False, seed=s).bottleneck_drops for s in range(1, 4))
        ecn = sum(self.run(ecn=True, seed=s).bottleneck_drops for s in range(1, 4))
        assert ecn < plain

    def test_ecn_produces_marks_and_responses(self):
        result = self.run(ecn=True)
        assert result.ecn_marks > 0
        assert result.ecn_responses > 0

    def test_ebsn_does_not_mask_congestion(self):
        """With EBSN active, congestion losses still trigger the
        source's normal recovery (dupacks/fast retransmit) — EBSN only
        suppresses *wireless-stall* timeouts."""
        recoveries = 0
        for seed in range(1, 4):
            result = self.run(scheme=Scheme.EBSN, seed=seed, transfer=40 * 1024)
            recoveries += result.fast_retransmits + result.timeouts
            assert result.ebsn_received > 0
        assert recoveries > 0

    def test_ebsn_still_helps_under_congestion(self):
        def mean_tput(scheme):
            return sum(
                self.run(scheme=scheme, seed=s, transfer=40 * 1024).metrics.throughput_bps
                for s in range(1, 4)
            ) / 3

        assert mean_tput(Scheme.EBSN) > mean_tput(Scheme.BASIC)

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestedScenarioConfig(cross_load=2.0)
        with pytest.raises(ValueError):
            CongestedScenarioConfig(scheme=Scheme.SNOOP)
