"""Chaos tests: the campaign layer under injected faults.

Each test injects a real fault — a SIGKILLed worker, a hung unit, a
Ctrl-C mid-campaign — and asserts the recovery contract: retried units
produce aggregates bit-identical to an undisturbed serial run, units
that fail for good are quarantined with a structured record, and a
journal makes an interrupted campaign resumable without re-simulating
completed work.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.engine.simulator import WallClockExceeded
from repro.experiments import topology
from repro.experiments.config import wan_scenario
from repro.experiments.faults import (
    FAULT_ERROR,
    FAULT_TIMEOUT,
    CampaignInterrupted,
)
from repro.experiments.journal import CampaignJournal
from repro.experiments.runner import run_replicated

from tests.test_experiments_parallel import assert_identical_aggregates

TINY = 5 * 1024

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervised pool requires the fork start method",
)


@pytest.fixture()
def bundle_dir(tmp_path, monkeypatch):
    """Keep replay bundles out of the repo's default bundle dir."""
    target = tmp_path / "bundles"
    monkeypatch.setenv("REPRO_BUNDLE_DIR", str(target))
    return target


class TestWorkerCrashRecovery:
    @needs_fork
    def test_sigkilled_worker_is_retried_bit_identical(
        self, tmp_path, monkeypatch, bundle_dir
    ):
        """SIGKILL one worker mid-campaign; aggregates must not change."""
        config = wan_scenario(transfer_bytes=TINY)
        baseline = run_replicated(config, replications=4, base_seed=3, workers=1)

        flag = tmp_path / "killed-once"
        parent_pid = os.getpid()
        original = topology.run_scenario

        def chaotic(cfg, **kwargs):
            # First worker to pick up a unit kills itself, exactly once.
            # The parent-pid guard keeps the test process alive.
            if os.getpid() != parent_pid:
                try:
                    fd = os.open(flag, os.O_CREAT | os.O_EXCL)
                except FileExistsError:
                    pass
                else:
                    os.close(fd)
                    os.kill(os.getpid(), signal.SIGKILL)
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", chaotic)
        recovered = run_replicated(config, replications=4, base_seed=3, workers=3)
        assert flag.exists(), "the chaos SIGKILL never fired"
        assert_identical_aggregates(baseline, recovered)
        assert [r.metrics for r in baseline.results] == [
            r.metrics for r in recovered.results
        ]

    @needs_fork
    def test_unresponsive_worker_is_hard_killed_and_retried(
        self, tmp_path, monkeypatch, bundle_dir
    ):
        """A worker stuck past the hard deadline is killed, not waited on."""
        config = wan_scenario(transfer_bytes=TINY)
        baseline = run_replicated(config, replications=3, base_seed=1, workers=1)

        flag = tmp_path / "hung-once"
        original = topology.run_scenario

        def hang_once(cfg, **kwargs):
            if cfg.seed == 2:
                try:
                    fd = os.open(flag, os.O_CREAT | os.O_EXCL)
                except FileExistsError:
                    pass
                else:
                    os.close(fd)
                    time.sleep(60)  # parent hard-kills long before this
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", hang_once)
        start = time.monotonic()
        recovered = run_replicated(
            config, replications=3, base_seed=1, workers=2, timeout=0.2
        )
        assert time.monotonic() - start < 30.0
        assert flag.exists(), "the chaos hang never fired"
        assert_identical_aggregates(baseline, recovered)


class TestTimeoutQuarantine:
    def test_engine_watchdog_aborts_a_runaway_simulation(self):
        from repro.engine.simulator import Simulator

        sim = Simulator()

        def forever():
            sim.schedule(1e-9, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(WallClockExceeded) as info:
            sim.run(wall_timeout=0.05)
        assert info.value.budget == 0.05
        assert info.value.events > 0

    def test_timed_out_unit_quarantined_with_partial_results(
        self, monkeypatch, bundle_dir
    ):
        """A persistently hung seed degrades the point, never the campaign."""
        config = wan_scenario(transfer_bytes=TINY)
        original = topology.run_scenario

        def hung_seed(cfg, **kwargs):
            if cfg.seed == 2:
                raise WallClockExceeded(0.2, 0.1, 1234)
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", hung_seed)
        result = run_replicated(
            config,
            replications=3,
            timeout=0.1,
            retries=1,
            fail_fast=False,
        )
        assert result.partial
        assert result.replications == 2 and result.attempted == 3
        (failure,) = result.failures
        assert failure.kind == FAULT_TIMEOUT
        assert failure.seed == 2
        assert failure.attempts == 2  # first try + one retry
        assert failure.bundle_path is not None
        assert os.path.isfile(failure.bundle_path)
        assert not result.report.complete
        assert "PARTIAL" in result.report.describe()

    def test_timeout_exhaustion_raises_in_fail_fast_mode(
        self, monkeypatch, bundle_dir
    ):
        from repro.experiments.faults import UnitTimeout

        monkeypatch.setattr(
            topology,
            "run_scenario",
            lambda cfg, **kwargs: (_ for _ in ()).throw(
                WallClockExceeded(0.2, 0.1, 99)
            ),
        )
        with pytest.raises(UnitTimeout):
            run_replicated(
                wan_scenario(transfer_bytes=TINY),
                replications=2,
                timeout=0.1,
                retries=0,
            )


class TestDeterministicErrors:
    def test_unit_error_is_never_retried(self, monkeypatch, bundle_dir):
        config = wan_scenario(transfer_bytes=TINY)
        calls = []
        original = topology.run_scenario

        def broken_seed(cfg, **kwargs):
            calls.append(cfg.seed)
            if cfg.seed == 2:
                raise ValueError("deterministically broken unit")
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", broken_seed)
        result = run_replicated(
            config, replications=3, retries=5, fail_fast=False
        )
        assert result.partial
        (failure,) = result.failures
        assert failure.kind == FAULT_ERROR
        assert failure.attempts == 1  # retrying cannot help
        assert calls.count(2) == 1

    @needs_fork
    def test_fail_fast_reraises_the_original_error_from_the_pool(
        self, monkeypatch, bundle_dir
    ):
        original = topology.run_scenario

        def broken_seed(cfg, **kwargs):
            if cfg.seed == 2:
                raise ValueError("deterministically broken unit")
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", broken_seed)
        with pytest.raises(ValueError, match="deterministically broken"):
            run_replicated(
                wan_scenario(transfer_bytes=TINY), replications=3, workers=2
            )


class TestInterruptAndResume:
    def test_sigint_flushes_journal_and_exits_cleanly(
        self, tmp_path, monkeypatch, bundle_dir
    ):
        """Ctrl-C mid-campaign: completed units are already durable."""
        journal_path = tmp_path / "camp.journal"
        config = wan_scenario(transfer_bytes=TINY)
        baseline = run_replicated(config, replications=4, workers=1)

        calls = []
        original = topology.run_scenario

        def interrupting(cfg, **kwargs):
            calls.append(cfg.seed)
            if len(calls) == 3:
                # Delivered to this process; the campaign's flag handler
                # lets the in-flight unit finish, then aborts cleanly.
                os.kill(os.getpid(), signal.SIGINT)
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", interrupting)
        journal = CampaignJournal(journal_path)
        with pytest.raises(CampaignInterrupted) as info:
            run_replicated(config, replications=4, workers=1, journal=journal)
        journal.close()
        assert info.value.completed == 3
        assert info.value.total == 4
        assert str(journal_path) in str(info.value)

        # Resume: only the un-journaled unit simulates.
        calls.clear()
        resumed_journal = CampaignJournal(journal_path)
        result = run_replicated(
            config, replications=4, workers=1, journal=resumed_journal
        )
        resumed_journal.close()
        assert calls == [4]  # seeds 1-3 came from the journal
        assert result.report.from_journal == 3
        assert_identical_aggregates(baseline, result)

    def test_resume_skips_every_journaled_unit(self, tmp_path, monkeypatch):
        journal_path = tmp_path / "camp.journal"
        config = wan_scenario(transfer_bytes=TINY)
        with CampaignJournal(journal_path) as journal:
            run_replicated(config, replications=2, journal=journal)

        calls = []
        original = topology.run_scenario

        def counting(cfg, **kwargs):
            calls.append(cfg.seed)
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", counting)
        with CampaignJournal(journal_path) as journal:
            result = run_replicated(config, replications=4, journal=journal)
        assert calls == [3, 4]  # the superset's new seeds only
        assert result.report.from_journal == 2
        assert result.report.simulated == 2
        assert result.replications == 4

    def test_quarantine_is_journaled_but_not_marked_done(
        self, tmp_path, monkeypatch, bundle_dir
    ):
        journal_path = tmp_path / "camp.journal"
        config = wan_scenario(transfer_bytes=TINY)
        original = topology.run_scenario

        def broken_seed(cfg, **kwargs):
            if cfg.seed == 2:
                raise ValueError("broken")
            return original(cfg, **kwargs)

        monkeypatch.setattr(topology, "run_scenario", broken_seed)
        with CampaignJournal(journal_path) as journal:
            result = run_replicated(
                config, replications=3, journal=journal, fail_fast=False
            )
        assert result.partial
        text = journal_path.read_text()
        assert '"kind": "failure"' in text
        # A failure record never satisfies a resume: the unit re-runs.
        monkeypatch.setattr(topology, "run_scenario", original)
        with CampaignJournal(journal_path) as journal:
            healed = run_replicated(config, replications=3, journal=journal)
        assert not healed.partial
        assert healed.report.from_journal == 2
