"""Tests for the ns-style event log and analyzer."""

from __future__ import annotations

import io

import pytest

from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scenario, Scheme
from repro.metrics.eventlog import (
    Event,
    EventLog,
    EventLogAnalyzer,
    EventType,
    TraceParseError,
    attach_to_scenario,
)


def instrumented_run(scheme=Scheme.BASIC, bad=1.0, seed=1, transfer=10 * 1024):
    scenario = Scenario(
        wan_scenario(
            scheme=scheme, bad_period_mean=bad, seed=seed, transfer_bytes=transfer
        )
    )
    log = attach_to_scenario(scenario)
    result = scenario.run()
    return log, result


class TestSerialization:
    def test_round_trip(self):
        log = EventLog()
        log.record(1.5, EventType.WIRED_SEND, "FH->BS", "data", 576, 42)
        log.record(2.0, EventType.CORRUPT, "channel", "frame", 128, 7)
        buffer = io.StringIO()
        assert log.write(buffer) == 2
        buffer.seek(0)
        parsed = EventLog.read(buffer)
        assert parsed.events == log.events

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            Event.from_line("not enough fields")

    def test_wrong_field_count_names_the_problem(self):
        with pytest.raises(TraceParseError, match="expected 6.*got 3"):
            Event.from_line("1.0 air_send BS->MH")

    def test_bad_time_field(self):
        with pytest.raises(TraceParseError, match="bad time field 'soon'"):
            Event.from_line("soon air_send BS->MH data 128 9")

    def test_unknown_event_type_lists_known_types(self):
        with pytest.raises(TraceParseError, match="unknown event type 'warp'"):
            Event.from_line("1.0 warp BS->MH data 128 9")

    def test_bad_size_or_uid_field(self):
        with pytest.raises(TraceParseError, match="bad size/uid field"):
            Event.from_line("1.0 air_send BS->MH data many 9")
        with pytest.raises(TraceParseError, match="bad size/uid field"):
            Event.from_line("1.0 air_send BS->MH data 128 nine")

    def test_parse_error_is_a_value_error(self):
        # Callers that caught the old bare ValueError keep working.
        assert issubclass(TraceParseError, ValueError)

    def test_read_reports_line_number(self):
        trace = "1.0 air_send BS->MH data 128 9\n\nbogus line here\n"
        with pytest.raises(TraceParseError, match="line 3:"):
            EventLog.read(io.StringIO(trace))

    def test_read_skips_blank_lines(self):
        trace = "\n1.0 air_send BS->MH data 128 9\n\n"
        log = EventLog.read(io.StringIO(trace))
        assert len(log) == 1

    def test_line_format(self):
        event = Event(12.345678, EventType.AIR_SEND, "BS->MH", "data", 128, 9)
        assert event.to_line() == "12.345678 air_send BS->MH data 128 9"


class TestInstrumentation:
    def test_records_all_layers(self):
        log, result = instrumented_run()
        assert result.completed
        counts = EventLogAnalyzer(log).counts()
        assert counts[EventType.WIRED_SEND] > 0
        assert counts[EventType.WIRED_RECV] > 0
        assert counts[EventType.AIR_SEND] > 0
        assert counts[EventType.AIR_RECV] > 0

    def test_air_recv_matches_link_stats(self):
        log, result = instrumented_run()
        counts = EventLogAnalyzer(log).counts()
        delivered = (
            result.downlink.stats.delivered + result.uplink.stats.delivered
        )
        assert counts[EventType.AIR_RECV] == delivered

    def test_corruption_events_match_channel(self):
        log, result = instrumented_run(bad=4.0, seed=2)
        counts = EventLogAnalyzer(log).counts()
        assert counts.get(EventType.CORRUPT, 0) == result.downlink.channel.frames_corrupted

    def test_events_time_ordered(self):
        log, _ = instrumented_run()
        times = [e.time for e in log.events]
        assert times == sorted(times)


class TestAnalyzer:
    def test_delivered_series_sums_to_total(self):
        log, result = instrumented_run()
        analyzer = EventLogAnalyzer(log)
        series = analyzer.delivered_series(bin_width=5.0)
        assert sum(v for _, v in series) == analyzer.bytes_by_event(EventType.AIR_RECV)

    def test_delivered_series_filters_by_place(self):
        log, _ = instrumented_run()
        analyzer = EventLogAnalyzer(log)
        down = analyzer.delivered_series(5.0, place="BS->MH")
        up = analyzer.delivered_series(5.0, place="MH->BS")
        assert sum(v for _, v in down) > sum(v for _, v in up)  # data vs ACKs

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            EventLogAnalyzer(EventLog()).delivered_series(0)

    def test_bursty_channel_has_long_loss_runs(self):
        """The two-state channel's fingerprint: multi-frame loss runs."""
        log, _ = instrumented_run(bad=4.0, seed=3, transfer=30 * 1024)
        analyzer = EventLogAnalyzer(log)
        runs = analyzer.loss_runs()
        assert runs, "expected losses under bad=4s"
        assert max(runs) >= 3
        assert analyzer.mean_loss_run() > 1.0

    def test_loss_runs_empty_without_corruption(self):
        log = EventLog()
        log.record(1.0, EventType.AIR_RECV, "BS->MH", "data", 128, 1)
        assert EventLogAnalyzer(log).loss_runs() == []
