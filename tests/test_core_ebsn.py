"""Unit tests for EBSN generation and the source-side response."""

from __future__ import annotations

import pytest

from repro.core.ebsn import EbsnGenerator, install_ebsn_handler
from repro.core.quench import install_quench_handler
from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import (
    Datagram,
    Fragment,
    IcmpMessage,
    IcmpType,
    TcpAck,
    TcpSegment,
)
from repro.tcp import TahoeSender, TcpConfig


def data_fragment(seq=7, src="FH"):
    seg = TcpSegment(seq=seq, payload_bytes=536, sent_at=0.0)
    dg = Datagram(src, "MH", seg, 576)
    return Fragment(dg, 0, 5, 128)


def ack_fragment():
    dg = Datagram("MH", "FH", TcpAck(3), 40)
    return Fragment(dg, 0, 1, 40)


class TestEbsnGenerator:
    def make_bs(self):
        node = Node("BS")
        sent = []
        node.add_interface("wired", sent.append, "FH")
        return node, sent

    def test_failed_data_attempt_sends_ebsn_to_source(self):
        node, sent = self.make_bs()
        gen = EbsnGenerator(node)
        gen.on_attempt_failed(data_fragment(seq=7), attempt=1)
        assert len(sent) == 1
        ebsn = sent[0]
        assert ebsn.dst == "FH"
        assert ebsn.payload.icmp_type is IcmpType.EBSN
        assert ebsn.payload.about_seq == 7

    def test_every_attempt_generates_one_ebsn(self):
        node, sent = self.make_bs()
        gen = EbsnGenerator(node)
        frag = data_fragment()
        for attempt in range(1, 6):
            gen.on_attempt_failed(frag, attempt)
        assert len(sent) == 5
        assert gen.ebsn_sent == 5

    def test_ack_traffic_does_not_trigger_ebsn(self):
        node, sent = self.make_bs()
        gen = EbsnGenerator(node)
        gen.on_attempt_failed(ack_fragment(), attempt=1)
        assert sent == []

    def test_notification_cap(self):
        node, sent = self.make_bs()
        gen = EbsnGenerator(node, max_notifications=2)
        frag = data_fragment()
        for attempt in range(1, 5):
            gen.on_attempt_failed(frag, attempt)
        assert len(sent) == 2
        assert gen.ebsn_suppressed == 2


class SenderHarness:
    def __init__(self, sim, **cfg):
        defaults = dict(packet_size=576, window_bytes=4096, transfer_bytes=50 * 536)
        defaults.update(cfg)
        self.node = Node("FH")
        self.sent = []
        self.node.add_interface("capture", self.sent.append, "MH")
        self.sender = TahoeSender(sim, self.node, "MH", config=TcpConfig(**defaults))
        self.node.attach_agent(self.sender)

    def deliver_icmp(self, icmp_type):
        self.sender.receive(Datagram("BS", "FH", IcmpMessage(icmp_type), 40))


class TestSourceSideResponse:
    def test_ebsn_rearms_timer(self, sim):
        h = SenderHarness(sim, initial_rto=2.0)
        install_ebsn_handler(h.sender)
        h.sender.start()
        sim.schedule_at(1.5, h.deliver_icmp, IcmpType.EBSN)
        sim.run(until=3.0)
        # Without EBSN the timer fires at 2.0; the 1.5 s re-arm pushes
        # it to 3.5.
        assert h.sender.stats.timeouts == 0
        assert h.sender.stats.ebsn_received == 1
        assert h.sender.rtx_timer.expiry_time == pytest.approx(3.5)

    def test_repeated_ebsn_prevents_timeout_indefinitely(self, sim):
        h = SenderHarness(sim, initial_rto=2.0)
        install_ebsn_handler(h.sender)
        h.sender.start()
        for i in range(20):
            sim.schedule_at(1.0 + i * 1.0, h.deliver_icmp, IcmpType.EBSN)
        sim.run(until=21.0)
        assert h.sender.stats.timeouts == 0

    def test_ebsn_does_not_change_window_or_estimator(self, sim):
        h = SenderHarness(sim)
        install_ebsn_handler(h.sender)
        h.sender.start()
        cwnd, ssthresh = h.sender.cwnd, h.sender.ssthresh
        h.deliver_icmp(IcmpType.EBSN)
        assert h.sender.cwnd == cwnd
        assert h.sender.ssthresh == ssthresh
        assert h.sender.estimator.samples_taken == 0

    def test_ebsn_preserves_backoff_multiplier(self, sim):
        """The re-armed timeout keeps the current (backed-off) value."""
        h = SenderHarness(sim, initial_rto=1.0)
        install_ebsn_handler(h.sender)
        h.sender.start()
        sim.run(until=1.2)  # one timeout -> backoff_exp 1, next RTO 2.0
        assert h.sender.backoff_exp == 1
        before = h.sender.current_timeout()
        h.deliver_icmp(IcmpType.EBSN)
        assert h.sender.rtx_timer.expiry_time == pytest.approx(sim.now + before)

    def test_handler_chains_to_previous(self, sim):
        h = SenderHarness(sim)
        install_quench_handler(h.sender)
        install_ebsn_handler(h.sender)
        h.sender.start()
        h.deliver_icmp(IcmpType.SOURCE_QUENCH)  # falls through EBSN handler
        assert h.sender.stats.quench_received == 1
        h.deliver_icmp(IcmpType.EBSN)
        assert h.sender.stats.ebsn_received == 1

    def test_ebsn_after_completion_is_ignored(self, sim):
        h = SenderHarness(sim, transfer_bytes=536)
        install_ebsn_handler(h.sender)
        h.sender.start()
        h.sender.receive(Datagram("MH", "FH", TcpAck(1), 40))
        assert h.sender.completed
        h.deliver_icmp(IcmpType.EBSN)
        assert not h.sender.rtx_timer.pending
