"""Tests for the runtime invariant-validation engine.

Two directions: clean scenarios across every scheme family must report
zero violations (validation is not allowed to cry wolf), and the
fault-injection doubles in :mod:`repro.validate.testing` must each be
caught by the checker that guards their invariant (a validator that
has never failed is untested).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import (
    lan_scenario,
    trace_example_scenario,
    wan_scenario,
)
from repro.experiments.topology import Scenario, Scheme, run_scenario
from repro.validate.engine import (
    InvariantViolationError,
    Validator,
    Violation,
    run_validated,
    set_default_validation,
    validation_default,
)
from repro.validate.checkers import default_checkers
from repro.validate.testing import BackwardsAckSender, CwndMutatingEbsnSender

TRANSFER = 12 * 1024


def validated(config):
    """Run one config under the engine without writing bundles."""
    return run_scenario(config, validate=True, bundle_dir=False)


class TestCleanScenarios:
    """The five paper figure scenario families validate clean."""

    @pytest.mark.parametrize("figure", [3, 4, 5])
    def test_trace_figures_validate_clean(self, figure):
        schemes = {3: Scheme.BASIC, 4: Scheme.LOCAL_RECOVERY, 5: Scheme.EBSN}
        result = validated(trace_example_scenario(schemes[figure]))
        assert result.completed

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_wan_schemes_validate_clean(self, scheme):
        result = validated(
            wan_scenario(
                scheme=scheme, transfer_bytes=TRANSFER, record_trace=False
            )
        )
        assert result.completed

    @pytest.mark.parametrize("scheme", [Scheme.BASIC, Scheme.EBSN])
    def test_lan_schemes_validate_clean(self, scheme):
        result = validated(
            lan_scenario(scheme=scheme, transfer_bytes=128 * 1024)
        )
        assert result.completed

    @pytest.mark.parametrize("variant", ["tahoe", "reno", "newreno"])
    def test_tcp_variants_validate_clean(self, variant):
        result = validated(
            wan_scenario(
                transfer_bytes=TRANSFER,
                tcp_variant=variant,
                record_trace=False,
            )
        )
        assert result.completed


class TestObserverPurity:
    """A validated run must be bit-identical to an unvalidated one."""

    @pytest.mark.parametrize(
        "scheme", [Scheme.BASIC, Scheme.EBSN, Scheme.SPLIT]
    )
    def test_validation_does_not_perturb_the_run(self, scheme):
        config = wan_scenario(
            scheme=scheme, transfer_bytes=TRANSFER, record_trace=False
        )
        plain = run_scenario(config, validate=False)
        checked = validated(config)

        def fingerprint(result):
            return (
                result.metrics.duration,
                result.metrics.segments_sent,
                result.metrics.retransmissions,
                result.metrics.timeouts,
                result.metrics.throughput_bps,
            )

        assert fingerprint(plain) == fingerprint(checked)


class TestFaultInjection:
    def test_ebsn_window_mutation_is_caught(self, tmp_path):
        config = replace(
            wan_scenario(
                scheme=Scheme.EBSN, transfer_bytes=TRANSFER, record_trace=False
            ),
            sender_factory=CwndMutatingEbsnSender,
        )
        with pytest.raises(InvariantViolationError) as excinfo:
            run_scenario(config, validate=True, bundle_dir=tmp_path)
        err = excinfo.value
        assert err.violations
        assert err.violations[0].checker == "ebsn-no-window-action"
        assert err.bundle_path is not None

    def test_backwards_ack_is_caught(self):
        config = replace(
            wan_scenario(transfer_bytes=TRANSFER, record_trace=False),
            sender_factory=BackwardsAckSender,
        )
        with pytest.raises(InvariantViolationError) as excinfo:
            validated(config)
        assert excinfo.value.violations[0].checker == "tcp-state"

    def test_bundle_dir_false_writes_nothing(self):
        config = replace(
            wan_scenario(transfer_bytes=TRANSFER, record_trace=False),
            sender_factory=BackwardsAckSender,
        )
        with pytest.raises(InvariantViolationError) as excinfo:
            validated(config)
        assert excinfo.value.bundle_path is None


class TestValidatorMachinery:
    def test_non_fail_fast_collects_all_violations(self):
        validator = Validator(default_checkers(None), fail_fast=False)

        class FakeSim:
            now = 1.0

        class FakeScenario:
            sim = FakeSim()

        validator._scenario = FakeScenario()
        report = validator._reporter(validator.checkers[0])
        report("first")
        report("second")
        assert [v.message for v in validator.violations] == ["first", "second"]

    def test_error_survives_pickling(self):
        import pickle

        original = InvariantViolationError(
            "boom",
            violations=(Violation("tcp-state", 1.5, "snd_una went back"),),
            bundle_path="/tmp/violation-abc.json",
        )
        clone = pickle.loads(pickle.dumps(original))
        assert clone.message == "boom"
        assert clone.violations == original.violations
        assert clone.bundle_path == original.bundle_path

    def test_violation_describe_format(self):
        v = Violation("arq-rtmax", 2.25, "too many attempts")
        assert v.describe() == "[arq-rtmax] t=2.250000: too many attempts"


class TestValidationDefault:
    def test_set_default_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        previous_on = validation_default()  # conftest turned it on
        assert previous_on is True
        set_default_validation(None)
        try:
            assert validation_default() is False
            monkeypatch.setenv("REPRO_VALIDATE", "1")
            assert validation_default() is True
            set_default_validation(False)
            assert validation_default() is False
        finally:
            set_default_validation(True)  # restore the conftest default

    def test_run_scenario_consults_the_default(self):
        # conftest sets the default on; a misbehaving sender must be
        # caught even without validate=True at the call site.
        config = replace(
            wan_scenario(transfer_bytes=TRANSFER, record_trace=False),
            sender_factory=BackwardsAckSender,
        )
        with pytest.raises(InvariantViolationError):
            run_scenario(config, bundle_dir=False)


class TestCustomCheckers:
    def test_run_validated_accepts_custom_checker_set(self):
        from repro.validate.engine import InvariantChecker

        seen = []

        class Recorder(InvariantChecker):
            name = "recorder"

            def finalize(self, scenario, result, report):
                seen.append(result.completed)

        scenario = Scenario(
            wan_scenario(transfer_bytes=TRANSFER, record_trace=False)
        )
        result = run_validated(scenario, bundle_dir=False, checkers=[Recorder()])
        assert result.completed
        assert seen == [True]
