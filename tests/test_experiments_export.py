"""Tests for CSV export and the advisor's sweep-driven population."""

from __future__ import annotations

import csv

import pytest

from repro.core.packet_size import ErrorCondition, PacketSizeAdvisor
from repro.experiments.config import wan_scenario
from repro.experiments.export import series_to_csv, sweep_to_csv
from repro.experiments.runner import sweep


TINY = 5 * 1024


@pytest.fixture(scope="module")
def points():
    return sweep(
        [256, 576],
        lambda size: wan_scenario(packet_size=size, transfer_bytes=TINY),
        replications=2,
    )


class TestSweepCsv:
    def test_writes_header_and_rows(self, points, tmp_path):
        path = sweep_to_csv(points, tmp_path / "sweep.csv", x_name="packet_size")
        with path.open() as fp:
            rows = list(csv.reader(fp))
        assert rows[0][0] == "packet_size"
        assert len(rows) == 3
        assert [r[0] for r in rows[1:]] == ["256", "576"]

    def test_values_parse_back(self, points, tmp_path):
        path = sweep_to_csv(points, tmp_path / "sweep.csv")
        with path.open() as fp:
            reader = csv.DictReader(fp)
            for row in reader:
                assert float(row["throughput_bps_mean"]) > 0
                assert 0 < float(row["goodput_mean"]) <= 1
                assert int(row["replications"]) == 2

    def test_rows_sorted_by_x(self, points, tmp_path):
        path = sweep_to_csv(points, tmp_path / "s.csv")
        with path.open() as fp:
            xs = [row["x"] for row in csv.DictReader(fp)]
        assert xs == sorted(xs, key=float)


class TestSeriesCsv:
    def test_long_format(self, points, tmp_path):
        path = series_to_csv({"basic": points, "again": points}, tmp_path / "l.csv")
        with path.open() as fp:
            rows = list(csv.DictReader(fp))
        assert len(rows) == 4
        assert {r["series"] for r in rows} == {"basic", "again"}


class TestAdvisorPopulation:
    def test_populate_from_sweeps_fills_table(self):
        advisor = PacketSizeAdvisor(candidate_sizes=[256, 576, 1536])
        condition = ErrorCondition(good_period_mean=10.0, bad_period_mean=2.0)
        advisor.populate_from_sweeps(
            [condition], replications=2, transfer_bytes=TINY
        )
        assert condition in advisor.table
        assert advisor.recommend(condition) in (256, 576, 1536)
