"""Unit tests for the Timer primitive (EBSN's re-arm mechanism)."""

from __future__ import annotations

import pytest

from repro.engine import Simulator, Timer


class TestTimerBasics:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.5)
        sim.run()
        assert fired == [2.5]

    def test_not_pending_initially(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.pending
        assert timer.expiry_time is None

    def test_pending_while_armed(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        assert timer.pending
        assert timer.expiry_time == 1.0

    def test_not_pending_after_fire(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        assert not timer.pending

    def test_double_start_rejected(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        with pytest.raises(RuntimeError):
            timer.start(2.0)

    def test_expiry_count(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert timer.expiry_count == 2


class TestCancelAndRestart:
    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.pending

    def test_cancel_idle_timer_is_noop(self, sim):
        Timer(sim, lambda: None).cancel()

    def test_restart_supersedes_previous_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.restart(5.0)
        sim.run()
        assert fired == [5.0]

    def test_restart_idle_timer_arms_it(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(2.0)
        sim.run()
        assert fired == [2.0]

    def test_repeated_restart_keeps_pushing_deadline(self, sim):
        """The EBSN pattern: each notification pushes the timeout out."""
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        # Re-arm at t=0.5, 1.0, 1.5 — each time for 1 more second.
        for at in (0.5, 1.0, 1.5):
            sim.schedule_at(at, timer.restart, 1.0)
        sim.run()
        assert fired == [2.5]

    def test_restart_from_callback(self, sim):
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.restart(1.0)

        timer = Timer(sim, on_fire)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
