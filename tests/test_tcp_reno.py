"""Unit tests for the Reno extension (fast recovery)."""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import Datagram, TcpAck, TcpSegment
from repro.tcp import RenoSender, TcpConfig


class Harness:
    def __init__(self, sim, **config_kwargs):
        defaults = dict(packet_size=576, window_bytes=576 * 20, transfer_bytes=100 * 536)
        defaults.update(config_kwargs)
        self.sim = sim
        self.node = Node("FH")
        self.sent = []
        self.node.add_interface("capture", self.sent.append, "MH")
        self.sender = RenoSender(sim, self.node, "MH", config=TcpConfig(**defaults))
        self.node.attach_agent(self.sender)

    def start(self):
        self.sender.start()

    def ack(self, ack_seq):
        self.sender.receive(Datagram("MH", "FH", TcpAck(ack_seq), 40))

    def segments(self):
        return [d.payload.seq for d in self.sent if isinstance(d.payload, TcpSegment)]

    def open_window(self, acks=8):
        self.start()
        for i in range(1, acks + 1):
            self.ack(i)


class TestFastRecovery:
    def test_halves_instead_of_collapsing(self, sim):
        h = Harness(sim)
        h.open_window()
        flight = h.sender.outstanding
        for _ in range(3):
            h.ack(8)
        assert h.sender.in_fast_recovery
        assert h.sender.ssthresh == pytest.approx(max(2.0, flight / 2))
        assert h.sender.cwnd == pytest.approx(h.sender.ssthresh + 3)

    def test_retransmits_only_the_hole(self, sim):
        h = Harness(sim)
        h.open_window()
        nxt_before = h.sender.snd_nxt
        for _ in range(3):
            h.ack(8)
        assert h.segments().count(8) == 2  # original + fast retransmit
        assert h.sender.snd_nxt >= nxt_before  # no go-back-N

    def test_window_inflation_per_extra_dupack(self, sim):
        h = Harness(sim)
        h.open_window()
        for _ in range(3):
            h.ack(8)
        cwnd_at_entry = h.sender.cwnd
        h.ack(8)
        assert h.sender.cwnd == pytest.approx(cwnd_at_entry + 1)

    def test_new_ack_deflates_and_exits(self, sim):
        h = Harness(sim)
        h.open_window()
        for _ in range(3):
            h.ack(8)
        ssthresh = h.sender.ssthresh
        h.ack(12)
        assert not h.sender.in_fast_recovery
        # Deflated to ssthresh, then +1 for the new-ack growth step.
        assert h.sender.cwnd <= ssthresh + 1.5

    def test_timeout_still_collapses(self, sim):
        h = Harness(sim, initial_rto=1.0)
        h.start()
        sim.run(until=1.5)
        assert h.sender.stats.timeouts == 1
        assert h.sender.cwnd == 1.0
        assert not h.sender.in_fast_recovery

    def test_tahoe_vs_reno_divergence(self, sim):
        """After 3 dupacks Tahoe collapses to 1, Reno keeps half."""
        from repro.tcp import TahoeSender

        results = {}
        for cls in (TahoeSender, RenoSender):
            local_sim = Simulator()
            node = Node("FH")
            node.add_interface("capture", lambda d: None, "MH")
            sender = cls(
                local_sim,
                node,
                "MH",
                config=TcpConfig(
                    packet_size=576, window_bytes=576 * 20, transfer_bytes=100 * 536
                ),
            )
            node.attach_agent(sender)
            sender.start()
            for i in range(1, 9):
                sender.receive(Datagram("MH", "FH", TcpAck(i), 40))
            for _ in range(3):
                sender.receive(Datagram("MH", "FH", TcpAck(8), 40))
            results[cls.__name__] = sender.cwnd
        assert results["TahoeSender"] == 1.0
        assert results["RenoSender"] > 3.0
