"""Unit/integration tests for the wireless port and its ARQ.

The harness builds two ports facing each other over a duplex wireless
hop with a controllable deterministic channel, so tests can place
transmissions precisely inside good or bad periods.
"""

from __future__ import annotations

import pytest

from repro.channel import deterministic_channel
from repro.engine import RandomStreams, Simulator
from repro.linklayer import ArqConfig, LinkLayerMode, WirelessPort
from repro.linklayer.port import FeedbackHooks
from repro.net.packet import Datagram, TcpSegment
from repro.net.wireless import WirelessLink, WirelessLinkConfig


class RecordingHooks(FeedbackHooks):
    def __init__(self):
        self.failed = []
        self.discarded = []
        self.depths = []

    def on_attempt_failed(self, fragment, attempt):
        self.failed.append((fragment.datagram.uid, attempt))

    def on_frame_discarded(self, fragment):
        self.discarded.append(fragment.datagram.uid)

    def on_queue_depth(self, depth):
        self.depths.append(depth)


def make_datagram(size=576, seq=0):
    seg = TcpSegment(seq=seq, payload_bytes=size - 40, sent_at=0.0)
    return Datagram("FH", "MH", seg, size)


class Hop:
    """BS-side and MH-side ports over one deterministic channel."""

    def __init__(
        self,
        sim,
        good=1000.0,
        bad=1.0,
        mode=LinkLayerMode.ARQ,
        arq: ArqConfig | None = None,
    ):
        streams = RandomStreams(99)
        self.channel = deterministic_channel(good, bad)
        cfg = WirelessLinkConfig()
        self.down = WirelessLink(sim, cfg, self.channel, name="down")
        self.up = WirelessLink(sim, cfg, self.channel, name="up")
        self.delivered_mh = []
        self.delivered_bs = []
        self.hooks = RecordingHooks()
        arq = arq or ArqConfig(
            ack_timeout=0.12, rtmax=13, backoff_min=0.02, backoff_max=0.05
        )
        # A port's ``deliver`` receives datagrams arriving *at* that
        # port: downlink traffic is delivered by the MH-side port.
        self.bs = WirelessPort(
            sim,
            "bs",
            out_link=self.down,
            deliver=self.delivered_bs.append,
            mode=mode,
            arq_config=arq,
            rng=streams.stream("bs"),
            feedback=self.hooks,
        )
        self.mh = WirelessPort(
            sim,
            "mh",
            out_link=self.up,
            deliver=self.delivered_mh.append,
            mode=mode,
            arq_config=arq,
            rng=streams.stream("mh"),
        )
        self.down.connect(self.mh.receive_frame)
        self.up.connect(self.bs.receive_frame)


class TestPlainMode:
    def test_delivery_in_good_state(self, sim):
        hop = Hop(sim, mode=LinkLayerMode.PLAIN)
        dg = make_datagram(576)
        hop.bs.send_datagram(dg)
        sim.run()
        assert hop.delivered_mh == [dg]

    def test_loss_in_bad_state_is_permanent(self, sim):
        hop = Hop(sim, good=0.5, bad=100.0, mode=LinkLayerMode.PLAIN)
        sim.schedule(1.0, hop.bs.send_datagram, make_datagram(576))
        sim.run(until=50.0)
        assert hop.delivered_mh == []

    def test_one_lost_fragment_kills_datagram(self, sim):
        # Good period ends at 0.35 s: fragments 1-4 of five cross, the
        # straddling/bad ones die, so the datagram never reassembles.
        hop = Hop(sim, good=0.35, bad=1000.0, mode=LinkLayerMode.PLAIN)
        hop.bs.send_datagram(make_datagram(576))
        sim.run(until=100.0)
        assert hop.delivered_mh == []
        assert hop.mh.reassembler.pending <= 1  # partial, later swept

    def test_plain_mode_needs_no_rng(self, sim):
        channel = deterministic_channel(10, 1)
        link = WirelessLink(sim, WirelessLinkConfig(), channel)
        WirelessPort(sim, "p", out_link=link, deliver=lambda d: None)

    def test_arq_mode_requires_rng(self, sim):
        channel = deterministic_channel(10, 1)
        link = WirelessLink(sim, WirelessLinkConfig(), channel)
        with pytest.raises(ValueError):
            WirelessPort(
                sim, "p", out_link=link, deliver=lambda d: None, mode=LinkLayerMode.ARQ
            )


class TestArqGoodState:
    def test_delivery_and_link_acks(self, sim):
        hop = Hop(sim)
        dg = make_datagram(576)
        hop.bs.send_datagram(dg)
        sim.run(until=5.0)
        assert hop.delivered_mh == [dg]
        assert hop.bs.stats.link_acks_received == 5  # one per fragment
        assert hop.bs.stats.ack_timeouts == 0
        assert not hop.bs.busy

    def test_multiple_datagrams_in_order(self, sim):
        hop = Hop(sim)
        datagrams = [make_datagram(576, seq=i) for i in range(4)]
        for dg in datagrams:
            hop.bs.send_datagram(dg)
        sim.run(until=20.0)
        assert hop.delivered_mh == datagrams

    def test_bidirectional_traffic(self, sim):
        hop = Hop(sim)
        down_dg = make_datagram(576)
        up_dg = Datagram("MH", "FH", TcpSegment(0, 40, 0.0), 80)
        hop.bs.send_datagram(down_dg)
        hop.mh.send_datagram(up_dg)
        sim.run(until=5.0)
        assert hop.delivered_mh == [down_dg]
        assert hop.delivered_bs == [up_dg]

    def test_window_limits_outstanding(self, sim):
        arq = ArqConfig(ack_timeout=0.12, window=2, backoff_min=0.02, backoff_max=0.05)
        hop = Hop(sim, arq=arq)
        hop.bs.send_datagram(make_datagram(1536))
        assert len(hop.bs._outstanding) <= 2
        sim.run(until=10.0)
        assert len(hop.delivered_mh) == 1


class TestArqRecovery:
    def test_rides_out_short_fade(self, sim):
        # Fade 0.5 s, ARQ horizon 13 * ~0.2 s >> fade.
        hop = Hop(sim, good=0.3, bad=0.5)
        dg = make_datagram(576)
        hop.bs.send_datagram(dg)
        sim.run(until=30.0)
        assert hop.delivered_mh == [dg]
        assert hop.bs.stats.link_retransmissions > 0

    def test_feedback_on_every_failed_attempt(self, sim):
        hop = Hop(sim, good=0.3, bad=0.5)
        hop.bs.send_datagram(make_datagram(128))
        sim.run(until=30.0)
        assert len(hop.hooks.failed) == hop.bs.stats.ack_timeouts
        attempts = [a for (_, a) in hop.hooks.failed]
        assert attempts == sorted(attempts)  # monotone per frame

    def test_discard_after_rtmax(self, sim):
        arq = ArqConfig(
            ack_timeout=0.12, rtmax=3, backoff_min=0.02, backoff_max=0.05
        )
        hop = Hop(sim, good=0.2, bad=1000.0, arq=arq)
        # Send inside the (effectively endless) bad period.
        sim.schedule(0.5, hop.bs.send_datagram, make_datagram(128))
        sim.run(until=500.0)
        assert hop.bs.stats.frames_discarded >= 1
        assert hop.hooks.discarded
        assert hop.delivered_mh == []
        assert len(hop.hooks.failed) == 3  # one EBSN trigger per attempt

    def test_sibling_fragments_dropped_on_discard(self, sim):
        arq = ArqConfig(
            ack_timeout=0.12, rtmax=2, backoff_min=0.02, backoff_max=0.05, window=1
        )
        hop = Hop(sim, good=0.05, bad=1000.0, arq=arq)
        hop.bs.send_datagram(make_datagram(576))  # 5 fragments
        sim.run(until=500.0)
        assert hop.bs.stats.frames_discarded >= 1
        assert hop.bs.stats.siblings_dropped >= 1
        assert not hop.bs.busy

    def test_queue_depth_reported(self, sim):
        hop = Hop(sim)
        hop.bs.send_datagram(make_datagram(576))
        assert hop.hooks.depths and hop.hooks.depths[0] == 5


class TestInOrderDelivery:
    def test_datagrams_never_reordered_across_fade(self, sim):
        hop = Hop(sim, good=0.9, bad=0.6)
        datagrams = [make_datagram(128 + 40, seq=i) for i in range(20)]
        for i, dg in enumerate(datagrams):
            sim.schedule(i * 0.12, hop.bs.send_datagram, dg)
        sim.run(until=60.0)
        got = [d.payload.seq for d in hop.delivered_mh]
        assert got == sorted(got)
        assert len(got) == 20

    def test_skip_marker_releases_buffered_frames(self, sim):
        """Receiver semantics: a SKIP for the head gap drains the buffer."""
        from repro.net.packet import Fragment, data_frame, skip_frame

        hop = Hop(sim)
        buffered = []
        hop.mh.deliver = buffered.append
        for seq in (1, 2):
            dg = make_datagram(128, seq=seq)
            frame = data_frame(Fragment(dg, 0, 1, 128))
            frame.link_seq = seq
            hop.mh.receive_frame(frame)
        assert buffered == []  # held: waiting for link_seq 0
        hop.mh.receive_frame(skip_frame(0))
        assert [d.payload.seq for d in buffered] == [1, 2]

    def test_discard_emits_skip_frame(self, sim):
        """Transmitter semantics: a discard queues a SKIP for its slot."""
        from repro.net.packet import FrameKind

        arq = ArqConfig(
            ack_timeout=0.12, rtmax=2, backoff_min=0.02, backoff_max=0.05
        )
        hop = Hop(sim, good=0.2, bad=1000.0, arq=arq)
        kinds = []
        original = hop.down.send

        def spy(frame, on_tx_complete=None):
            kinds.append(frame.kind)
            original(frame, on_tx_complete)

        hop.down.send = spy
        sim.schedule(0.5, hop.bs.send_datagram, make_datagram(128))
        sim.run(until=100.0)
        assert hop.bs.stats.frames_discarded >= 1
        assert FrameKind.SKIP in kinds

    def test_gap_flush_fallback(self, sim):
        """If even the SKIP dies, the flush timer eventually unblocks."""
        arq = ArqConfig(
            ack_timeout=0.1,
            rtmax=1,
            backoff_min=0.01,
            backoff_max=0.02,
            window=4,
            resequencing_flush=2.0,
        )
        hop = Hop(sim, good=0.45, bad=10.0, arq=arq)
        # Four single-fragment datagrams: some cross before the fade,
        # stragglers die with rtmax=1 (skips die too, inside the fade).
        for i in range(4):
            hop.bs.send_datagram(make_datagram(128 + 40, seq=i))
        sim.schedule(10.6, hop.bs.send_datagram, make_datagram(128 + 40, seq=99))
        sim.run(until=30.0)
        seqs = [d.payload.seq for d in hop.delivered_mh]
        assert 99 in seqs  # later datagram not stuck behind the dead gap
