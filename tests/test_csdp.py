"""Tests for the CSDP multi-connection scheduling study."""

from __future__ import annotations

import pytest

from repro.csdp import (
    CsdpScheduler,
    CsdpStudyConfig,
    FifoScheduler,
    RoundRobinScheduler,
    run_csdp_study,
)


class TestFifoScheduler:
    def test_picks_oldest_arrival(self):
        s = FifoScheduler()
        s.note_arrival("B")
        s.note_arrival("A")
        assert s.select(["A", "B"], [], 0.0) == "B"

    def test_blocks_on_waiting_head(self):
        """Strict FIFO idles while its oldest frame backs off."""
        s = FifoScheduler()
        s.note_arrival("B")
        s.note_arrival("A")
        assert s.select(["A"], ["B"], 0.0) is None

    def test_departure_advances_head(self):
        s = FifoScheduler()
        s.note_arrival("B")
        s.note_arrival("A")
        s.note_departure("B")
        assert s.select(["A", "B"], [], 0.0) == "A"

    def test_empty_order_falls_back(self):
        assert FifoScheduler().select(["X"], [], 0.0) == "X"


class TestRoundRobinScheduler:
    def test_cycles(self):
        s = RoundRobinScheduler()
        picks = [s.select(["A", "B", "C"], [], 0.0) for _ in range(6)]
        assert picks == ["A", "B", "C", "A", "B", "C"]

    def test_skips_empty_destinations(self):
        s = RoundRobinScheduler()
        s.select(["A", "B"], [], 0.0)
        assert s.select(["B"], [], 0.0) == "B"

    def test_never_idles_with_ready_work(self):
        assert RoundRobinScheduler().select(["Z"], ["A"], 0.0) == "Z"


class TestCsdpScheduler:
    def test_skips_banned_destination(self):
        s = CsdpScheduler(probe_interval=1.0)
        s.on_result("A", success=False, now=0.0)
        assert s.select(["A", "B"], [], 0.5) == "B"
        assert s.skips == 1

    def test_idles_when_all_banned(self):
        s = CsdpScheduler(probe_interval=1.0)
        s.on_result("A", success=False, now=0.0)
        assert s.select(["A"], [], 0.5) is None
        assert s.earliest_retry(0.5) == pytest.approx(1.0)

    def test_probe_after_interval(self):
        s = CsdpScheduler(probe_interval=1.0)
        s.on_result("A", success=False, now=0.0)
        assert s.select(["A"], [], 1.5) == "A"
        assert s.probes_sent == 1

    def test_success_clears_ban(self):
        s = CsdpScheduler(probe_interval=1.0)
        s.on_result("A", success=False, now=0.0)
        s.on_result("A", success=True, now=1.5)
        assert s.select(["A"], [], 1.6) == "A"
        assert s.probes_sent == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CsdpScheduler(probe_interval=0)


class TestStudy:
    def run(self, sched, **kwargs):
        defaults = dict(
            scheduler=sched,
            n_connections=3,
            transfer_bytes=15 * 1024,
            seed=2,
        )
        defaults.update(kwargs)
        return run_csdp_study(CsdpStudyConfig(**defaults))

    def test_all_transfers_complete(self):
        for sched in ("fifo", "rr", "csdp"):
            result = self.run(sched)
            assert result.all_completed, sched
            assert len(result.per_connection_throughput_bps) == 3

    def test_all_data_delivered(self):
        result = self.run("rr")
        # Aggregate payload equals n x transfer.
        total = result.aggregate_throughput_bps * max(result.completion_times) / 8
        assert total == pytest.approx(3 * 15 * 1024, rel=0.01)

    def test_rr_beats_fifo(self):
        """The paper's §2 summary of [9]: round-robin significantly
        outperforms FIFO when connections fade independently."""
        fifo = sum(
            self.run("fifo", seed=s).aggregate_throughput_bps for s in range(1, 5)
        )
        rr = sum(self.run("rr", seed=s).aggregate_throughput_bps for s in range(1, 5))
        assert rr > 1.1 * fifo

    def test_fifo_suffers_head_of_line_blocking(self):
        result = self.run("fifo")
        assert result.radio.idle_blocked_time > 1.0

    def test_source_timeouts_remain(self):
        """The paper: 'The problem of source timeouts exists in this
        approach too' — scheduling does not replace EBSN."""
        timeouts = sum(
            self.run("csdp", seed=s).total_timeouts for s in range(1, 5)
        )
        assert timeouts > 0

    def test_fairness_reasonable_for_rr(self):
        result = self.run("rr")
        assert result.fairness_index > 0.9

    def test_deterministic_given_seed(self):
        a = self.run("csdp", seed=9)
        b = self.run("csdp", seed=9)
        assert a.completion_times == b.completion_times

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            run_csdp_study(CsdpStudyConfig(scheduler="lifo"))

    def test_radio_rejects_unknown_destination(self, sim):
        from repro.channel import deterministic_channel
        from repro.csdp import DownlinkRadio, RoundRobinScheduler
        from repro.net.packet import Datagram, TcpSegment
        from repro.net.wireless import WirelessLinkConfig
        import random

        radio = DownlinkRadio(
            sim,
            WirelessLinkConfig(),
            {"MH0": deterministic_channel(10, 1)},
            RoundRobinScheduler(),
            rng=random.Random(1),
            deliver=lambda dg: None,
        )
        datagram = Datagram("FH", "MH9", TcpSegment(0, 100, 0.0), 140)
        with pytest.raises(KeyError):
            radio.send_datagram(datagram)
