"""Smoke tests for the per-figure entry points and the ASCII plotter.

The real, full-scale figure regeneration lives in ``benchmarks/``;
these tests only pin the plumbing (shapes of the returned structures,
theoretical values, rendering) with tiny transfers.
"""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import format_table, plot_series
from repro.experiments.figures import (
    figure_7,
    figure_9,
    figure_10,
    lan_theoretical_mbps,
    trace_figure,
    wan_theoretical_kbps,
)


class TestTraceFigures:
    def test_returns_scenario_result_with_trace(self):
        result = trace_figure(3)
        assert result.trace is not None
        assert result.completed

    def test_unknown_number_rejected(self):
        with pytest.raises(ValueError):
            trace_figure(6)


class TestSweepFigures:
    def test_figure7_structure(self):
        series = figure_7(
            replications=1,
            packet_sizes=[256, 576],
            bad_periods=[1.0],
            transfer_bytes=5 * 1024,
        )
        assert set(series) == {1.0}
        assert set(series[1.0].points) == {256, 576}
        assert len(series[1.0].throughputs_kbps()) == 2

    def test_figure9_has_both_schemes(self):
        data = figure_9(
            replications=1,
            packet_sizes=[576],
            bad_periods=[1.0],
            transfer_bytes=5 * 1024,
        )
        assert set(data) == {"basic", "ebsn"}
        assert data["basic"][1.0].retransmitted_kbytes()[0] >= 0

    def test_figure10_structure(self):
        data = figure_10(
            replications=1, bad_periods=[0.8], transfer_bytes=128 * 1024
        )
        assert set(data) == {"basic", "ebsn"}
        assert data["ebsn"].points[0.8].throughput_mbps > 0

    def test_theoretical_helpers(self):
        assert wan_theoretical_kbps(1.0) == pytest.approx(11.64, abs=0.01)
        assert lan_theoretical_mbps(1.6) == pytest.approx(1.429, abs=0.01)


class TestAsciiPlot:
    def test_plot_contains_legend_and_bounds(self):
        out = plot_series(
            {"a": [(0, 0), (10, 5)], "b": [(0, 5), (10, 0)]},
            width=30,
            height=8,
            title="T",
            x_label="x",
        )
        assert "T" in out
        assert "legend: o a   x b" in out
        assert "10" in out

    def test_plot_empty(self):
        assert "(no data)" in plot_series({}, title="empty")

    def test_plot_flat_series(self):
        out = plot_series({"flat": [(0, 1), (1, 1)]})
        assert "flat" in out

    def test_plot_respects_y_bounds(self):
        out = plot_series({"a": [(0, 5)]}, y_min=0.0, y_max=10.0, height=5)
        assert "10" in out and "0" in out

    def test_format_table_alignment(self):
        out = format_table(["col", "x"], [["a", 1], ["bbbb", 22]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "col" in lines[1]
        assert lines[2].startswith("---")

    def test_format_table_empty_rows(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out
