"""Unit tests for wired and wireless links."""

from __future__ import annotations

import pytest

from repro.channel import deterministic_channel
from repro.engine import Simulator
from repro.net.link import WiredLink
from repro.net.packet import (
    Datagram,
    Fragment,
    FrameKind,
    TcpSegment,
    data_frame,
    link_ack_frame,
)
from repro.net.wireless import WirelessLink, WirelessLinkConfig


def make_datagram(size=576):
    seg = TcpSegment(seq=0, payload_bytes=size - 40, sent_at=0.0)
    return Datagram("FH", "MH", seg, size)


def make_frame(size=128):
    dg = make_datagram(576)
    frag = Fragment(dg, 0, 1, size)
    return data_frame(frag)


class TestWiredLink:
    def test_delivery_time(self, sim):
        got = []
        link = WiredLink(sim, bandwidth_bps=56_000, prop_delay=0.01)
        link.connect(lambda d: got.append((sim.now, d)))
        link.send(make_datagram(576))
        sim.run()
        expected = 576 * 8 / 56_000 + 0.01
        assert got[0][0] == pytest.approx(expected)

    def test_serialization_queues_behind_transmission(self, sim):
        got = []
        link = WiredLink(sim, bandwidth_bps=8_000, prop_delay=0.0)
        link.connect(lambda d: got.append(sim.now))
        link.send(make_datagram(100))  # 0.1 s each
        link.send(make_datagram(100))
        sim.run()
        assert got == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_delivery_preserves_order(self, sim):
        got = []
        link = WiredLink(sim, bandwidth_bps=56_000, prop_delay=0.005)
        link.connect(lambda d: got.append(d.uid))
        datagrams = [make_datagram() for _ in range(5)]
        for dg in datagrams:
            link.send(dg)
        sim.run()
        assert got == [d.uid for d in datagrams]

    def test_send_without_receiver_raises(self, sim):
        link = WiredLink(sim, 56_000, 0.01)
        with pytest.raises(RuntimeError):
            link.send(make_datagram())

    def test_capacity_drop(self, sim):
        got = []
        link = WiredLink(sim, 56_000, 0.0, queue_capacity=1)
        link.connect(lambda d: got.append(d))
        # First goes straight to the transmitter, next two queue (cap 1).
        assert link.send(make_datagram())
        assert link.send(make_datagram())
        assert not link.send(make_datagram())
        sim.run()
        assert len(got) == 2

    def test_stats(self, sim):
        link = WiredLink(sim, 56_000, 0.01)
        link.connect(lambda d: None)
        link.send(make_datagram(576))
        sim.run()
        assert link.stats.transmitted == 1
        assert link.stats.bytes_transmitted == 576
        assert link.stats.busy_time == pytest.approx(576 * 8 / 56_000)

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            WiredLink(sim, 0, 0.01)
        with pytest.raises(ValueError):
            WiredLink(sim, 56_000, -0.01)


class TestWirelessLinkConfig:
    def test_effective_bandwidth(self):
        cfg = WirelessLinkConfig(raw_bandwidth_bps=19_200, overhead_factor=1.5)
        assert cfg.effective_bandwidth_bps == pytest.approx(12_800)

    def test_validation(self):
        with pytest.raises(ValueError):
            WirelessLinkConfig(raw_bandwidth_bps=-1)
        with pytest.raises(ValueError):
            WirelessLinkConfig(overhead_factor=0.5)
        with pytest.raises(ValueError):
            WirelessLinkConfig(mtu_bytes=0)


class TestWirelessLink:
    def make_link(self, sim, good=100.0, bad=1.0):
        channel = deterministic_channel(good, bad)
        link = WirelessLink(sim, WirelessLinkConfig(), channel)
        return link, channel

    def test_airtime_includes_overhead(self, sim):
        link, _ = self.make_link(sim)
        # 128 B fragment -> 192 B on air at 19.2 kbps = 80 ms.
        assert link.tx_time(128) == pytest.approx(0.08)
        assert link.air_bytes(128) == 192

    def test_good_state_delivery(self, sim):
        link, _ = self.make_link(sim)
        got = []
        link.connect(lambda f: got.append(sim.now))
        link.send(make_frame(128))
        sim.run()
        assert got == [pytest.approx(0.08 + 0.002)]

    def test_bad_state_frame_is_lost(self, sim):
        link, channel = self.make_link(sim, good=0.5, bad=100.0)
        got = []
        link.connect(got.append)
        sim.schedule(1.0, link.send, make_frame(128))  # deep in bad state
        sim.run()
        assert got == []
        assert link.stats.corrupted == 1

    def test_tx_complete_fires_even_on_corruption(self, sim):
        link, _ = self.make_link(sim, good=0.5, bad=100.0)
        link.connect(lambda f: None)
        done = []
        sim.schedule(1.0, link.send, make_frame(128), lambda f: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.08)]

    def test_link_acks_preempt_data_queue(self, sim):
        link, _ = self.make_link(sim)
        got = []
        link.connect(lambda f: got.append(f.kind))
        link.send(make_frame(128))
        link.send(make_frame(128))
        link.send(link_ack_frame(1))  # queued last, must jump the data
        sim.run()
        assert got[1] == FrameKind.LINK_ACK

    def test_serialization_order_within_class(self, sim):
        link, _ = self.make_link(sim)
        got = []
        link.connect(lambda f: got.append(f.uid))
        frames = [make_frame(128) for _ in range(4)]
        for f in frames:
            link.send(f)
        sim.run()
        assert got == [f.uid for f in frames]

    def test_send_without_receiver_raises(self, sim):
        link, _ = self.make_link(sim)
        with pytest.raises(RuntimeError):
            link.send(make_frame())

    def test_stats_loss_rate(self, sim):
        link, _ = self.make_link(sim, good=0.09, bad=1000.0)
        link.connect(lambda f: None)
        for _ in range(2):
            link.send(make_frame(128))
        sim.run()
        # First frame [0, 0.08] fits in the 0.09 s good period; the
        # second [0.08, 0.16] straddles into the deep fade and dies.
        assert link.stats.loss_rate() == 0.5
        assert link.stats.corrupted == 1
