"""Unit tests for the RTT estimator / RTO computation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.tcp.rto import RttEstimator


class TestInitialState:
    def test_initial_rto_before_samples(self):
        est = RttEstimator(initial_rto=3.0)
        assert est.rto() == 3.0
        assert est.srtt is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(granularity=0)
        with pytest.raises(ValueError):
            RttEstimator(initial_rto=-1)
        with pytest.raises(ValueError):
            RttEstimator(min_ticks=0)
        with pytest.raises(ValueError):
            RttEstimator(granularity=1.0, max_rto=0.5)


class TestSampling:
    def test_first_sample_seeds_estimator(self):
        est = RttEstimator(granularity=0.1)
        est.sample(0.4)  # 4 ticks
        assert est.srtt == 4.0
        assert est.rttvar == 2.0
        # RTO = 4 + 4*2 = 12 ticks = 1.2 s
        assert est.rto() == pytest.approx(1.2)

    def test_jacobson_update(self):
        est = RttEstimator(granularity=0.1)
        est.sample(0.4)
        est.sample(0.8)  # 8 ticks, err = 4
        assert est.srtt == pytest.approx(4.5)
        assert est.rttvar == pytest.approx(2.5)

    def test_constant_rtt_converges_to_low_rto(self):
        est = RttEstimator(granularity=0.1)
        for _ in range(100):
            est.sample(0.5)
        # variance decays toward zero; RTO approaches srtt rounded up,
        # floored at min_ticks.
        assert est.rto() <= 0.7

    def test_rto_floor(self):
        est = RttEstimator(granularity=0.1, min_ticks=2)
        for _ in range(200):
            est.sample(0.01)  # sub-tick RTTs quantize to 1 tick
        assert est.rto() >= 0.2

    def test_rto_cap(self):
        est = RttEstimator(granularity=0.1, max_rto=64.0)
        for _ in range(10):
            est.sample(500.0)
        assert est.rto() == 64.0

    def test_variance_spike_raises_rto(self):
        """A fade-delayed ACK (the paper's §4.2.3 note) inflates RTO."""
        est = RttEstimator(granularity=0.1)
        for _ in range(20):
            est.sample(0.5)
        quiet_rto = est.rto()
        est.sample(5.0)
        assert est.rto() > quiet_rto * 2

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(-0.1)

    def test_rto_is_whole_ticks(self):
        est = RttEstimator(granularity=0.1)
        est.sample(0.537)
        ticks = est.rto() / 0.1
        assert ticks == pytest.approx(round(ticks))

    def test_samples_counted(self):
        est = RttEstimator()
        est.sample(0.1)
        est.sample(0.2)
        assert est.samples_taken == 2

    def test_reset(self):
        est = RttEstimator(initial_rto=3.0)
        est.sample(0.5)
        est.reset()
        assert est.srtt is None
        assert est.rto() == 3.0


class TestGranularity:
    def test_coarse_clock_quantizes_harder(self):
        fine = RttEstimator(granularity=0.1)
        coarse = RttEstimator(granularity=0.5)
        fine.sample(0.3)
        coarse.sample(0.3)
        # On a 500 ms clock, 0.3 s rounds to 1 tick = 0.5 s.
        assert coarse.srtt == 1.0
        assert fine.srtt == 3.0

    def test_coarse_clock_gives_larger_min_rto(self):
        """Why coarse-timer TCPs don't see local-recovery timeouts (§4.2.1)."""
        fine = RttEstimator(granularity=0.1, min_ticks=2)
        coarse = RttEstimator(granularity=0.5, min_ticks=2)
        for _ in range(50):
            fine.sample(0.05)
            coarse.sample(0.05)
        assert coarse.rto() >= 5 * fine.rto()


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=100))
    @settings(max_examples=80)
    def test_rto_always_within_bounds(self, samples):
        est = RttEstimator(granularity=0.1, min_ticks=2, max_rto=64.0)
        for s in samples:
            est.sample(s)
        assert 0.2 <= est.rto() <= 64.0

    @given(st.floats(min_value=0.0, max_value=10.0))
    def test_rto_exceeds_stable_rtt(self, rtt):
        """After convergence on constant RTT, RTO must still exceed it."""
        est = RttEstimator(granularity=0.1)
        for _ in range(50):
            est.sample(rtt)
        assert est.rto() >= min(rtt * 0.95, 64.0 * 0.95)


class TestRobustTimerKnobs:
    def test_larger_k_gives_larger_rto(self):
        low, high = RttEstimator(k=4.0), RttEstimator(k=8.0)
        for est in (low, high):
            for rtt in (0.5, 0.9, 0.4, 1.1):
                est.sample(rtt)
        assert high.rto() > low.rto()

    def test_peak_hold_variance_decays_slowly(self):
        standard = RttEstimator()
        hold = RttEstimator(var_decay_gain=0.05)
        for est in (standard, hold):
            for _ in range(10):
                est.sample(0.5)
            est.sample(5.0)  # delay spike
            for _ in range(10):
                est.sample(0.5)  # back to normal
        assert hold.rttvar > 2 * standard.rttvar
        assert hold.rto() > standard.rto()

    def test_peak_hold_growth_unaffected(self):
        """The asymmetric gain only touches decay, not growth."""
        standard = RttEstimator()
        hold = RttEstimator(var_decay_gain=0.05)
        for est in (standard, hold):
            est.sample(0.5)
            est.sample(5.0)
        assert hold.rttvar == standard.rttvar

    def test_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(k=0)
        with pytest.raises(ValueError):
            RttEstimator(var_decay_gain=0.0)
        with pytest.raises(ValueError):
            RttEstimator(var_decay_gain=1.5)
