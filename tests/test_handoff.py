"""Tests for the handoff study ([4]/[17] companion problem)."""

from __future__ import annotations

import pytest

from repro.handoff import HandoffConfig, HandoffScheme, run_handoff_scenario
from repro.handoff.topology import CellPort


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HandoffConfig(handoff_interval=0)
        with pytest.raises(ValueError):
            HandoffConfig(disconnect_time=-1)
        with pytest.raises(ValueError):
            HandoffConfig(handoff_interval=1.0, disconnect_time=1.0)


class TestCellPort:
    def make_port(self, sim):
        from repro.channel import deterministic_channel
        from repro.net.wireless import WirelessLink, WirelessLinkConfig

        link = WirelessLink(
            sim, WirelessLinkConfig(), deterministic_channel(1000, 0.01)
        )
        received = []
        link.connect(received.append)
        return CellPort(sim, "BS1", link, 128), received

    def datagram(self, size=576):
        from repro.net.packet import Datagram, TcpSegment

        return Datagram("FH", "MH", TcpSegment(0, size - 40, 0.0), size)

    def test_detached_port_holds_queue(self, sim):
        port, received = self.make_port(sim)
        port.send_datagram(self.datagram())
        sim.run(until=5.0)
        assert received == []
        assert len(port.queue) == 1

    def test_attach_drains(self, sim):
        port, received = self.make_port(sim)
        port.send_datagram(self.datagram())
        port.attach()
        sim.run(until=5.0)
        assert len(received) == 5  # five fragments of a 576 B packet

    def test_one_datagram_at_a_time(self, sim):
        port, received = self.make_port(sim)
        port.attach()
        port.send_datagram(self.datagram())
        port.send_datagram(self.datagram())
        # Before any airtime elapses, only the first datagram's five
        # fragments are at the link; the second is still in the queue.
        assert len(port.queue) == 1
        sim.run(until=10.0)
        assert len(received) == 10

    def test_take_queue_empties(self, sim):
        port, _ = self.make_port(sim)
        port.send_datagram(self.datagram())
        taken = port.take_queue()
        assert len(taken) == 1
        assert port.queue.is_empty

    def test_drop_queue_counts(self, sim):
        port, _ = self.make_port(sim)
        port.send_datagram(self.datagram())
        assert port.drop_queue() == 1
        assert port.datagrams_dropped_in_handoff == 1


class TestHandoffScenario:
    def run(self, scheme, **kwargs):
        defaults = dict(
            scheme=scheme,
            handoff_interval=6.0,
            disconnect_time=0.3,
            transfer_bytes=40 * 1024,
            seed=3,
        )
        defaults.update(kwargs)
        return run_handoff_scenario(HandoffConfig(**defaults))

    def test_all_schemes_complete(self):
        for scheme in HandoffScheme:
            result = self.run(scheme)
            assert result.completed, scheme
            assert result.handoffs >= 1

    def test_baseline_stalls_on_timeouts(self):
        result = self.run(HandoffScheme.BASELINE)
        assert result.timeouts >= result.handoffs - 1
        assert result.datagrams_dropped_in_handoffs > 0
        assert result.stall_time_total > 0

    def test_fast_rtx_removes_most_timeouts(self):
        """The Caceres-Iftode result the paper's §2 summarizes."""
        baseline = sum(
            self.run(HandoffScheme.BASELINE, seed=s).timeouts for s in range(1, 5)
        )
        fast = sum(
            self.run(HandoffScheme.FAST_RTX, seed=s).timeouts for s in range(1, 5)
        )
        assert fast < baseline / 3

    def test_fast_rtx_improves_throughput(self):
        def mean(scheme):
            return sum(
                self.run(scheme, seed=s).metrics.throughput_bps for s in range(1, 5)
            ) / 4

        assert mean(HandoffScheme.FAST_RTX) > 1.2 * mean(HandoffScheme.BASELINE)

    def test_forwarding_preserves_data(self):
        result = self.run(HandoffScheme.FORWARD)
        assert result.datagrams_forwarded > 0
        assert result.datagrams_dropped_in_handoffs == 0

    def test_no_handoffs_when_interval_exceeds_transfer(self):
        result = self.run(
            HandoffScheme.BASELINE, handoff_interval=10_000.0, transfer_bytes=10 * 1024
        )
        assert result.handoffs == 0
        assert result.timeouts == 0

    def test_deterministic(self):
        a = self.run(HandoffScheme.FAST_RTX)
        b = self.run(HandoffScheme.FAST_RTX)
        assert a.metrics.duration == b.metrics.duration
