"""Unit tests for the packet-size advisor (§4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.packet_size import ErrorCondition, PacketSizeAdvisor


def condition(good=10.0, bad=1.0):
    return ErrorCondition(good_period_mean=good, bad_period_mean=bad)


class TestErrorCondition:
    def test_bad_fraction(self):
        assert condition(10, 4).bad_fraction == pytest.approx(4 / 14)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorCondition(good_period_mean=0, bad_period_mean=1)

    def test_hashable_table_key(self):
        assert condition() == condition()
        assert hash(condition()) == hash(condition())


class TestLearnedTable:
    def test_exact_hit(self):
        advisor = PacketSizeAdvisor()
        advisor.learn(condition(10, 1), 512)
        assert advisor.recommend(condition(10, 1)) == 512

    def test_nearest_neighbour_fallback(self):
        advisor = PacketSizeAdvisor()
        advisor.learn(condition(10, 1), 512)
        advisor.learn(condition(10, 4), 384)
        # bad fraction of (10, 3.5) is nearer to (10, 4) than (10, 1).
        assert advisor.recommend(condition(10, 3.5)) == 384

    def test_empty_table_uses_analytic_model(self):
        advisor = PacketSizeAdvisor()
        best = advisor.recommend(condition(10, 1))
        assert best in advisor.candidate_sizes

    def test_learn_validates_size(self):
        advisor = PacketSizeAdvisor(header_bytes=40)
        with pytest.raises(ValueError):
            advisor.learn(condition(), 40)

    def test_table_copy_is_isolated(self):
        advisor = PacketSizeAdvisor()
        advisor.learn(condition(), 512)
        table = advisor.table
        table.clear()
        assert advisor.recommend(condition()) == 512


class TestAnalyticModel:
    def test_fragment_count(self):
        advisor = PacketSizeAdvisor(mtu_bytes=128)
        assert advisor.fragment_count(576) == 5

    def test_efficiency_zero_for_header_only(self):
        advisor = PacketSizeAdvisor()
        assert advisor.expected_efficiency(condition(), 40) == 0.0

    def test_efficiency_in_unit_interval(self):
        advisor = PacketSizeAdvisor()
        for size in advisor.candidate_sizes:
            eff = advisor.expected_efficiency(condition(10, 2), size)
            assert 0.0 <= eff <= 1.0

    def test_error_free_channel_prefers_largest(self):
        clean = ErrorCondition(1000.0, 1e-9, ber_good=0.0, ber_bad=0.0)
        advisor = PacketSizeAdvisor()
        assert advisor.analytic_best(clean) == max(advisor.candidate_sizes)

    def test_noisier_channel_prefers_smaller(self):
        """The paper's observation: optimum shrinks as errors worsen."""
        advisor = PacketSizeAdvisor()
        mild = ErrorCondition(10.0, 0.5, ber_bad=1e-2)
        harsh = ErrorCondition(10.0, 6.0, ber_bad=5e-2)
        assert advisor.analytic_best(harsh) <= advisor.analytic_best(mild)

    def test_interior_optimum_for_mild_errors(self):
        """For mild error conditions the best size is neither extreme.

        (The i.i.d. fragment-loss approximation is pessimistic about
        large packets, so under harsh conditions it legitimately picks
        the MTU; the *measured* interior optimum of Fig 7 is exercised
        by the benchmark harness, not this first-cut model.)
        """
        advisor = PacketSizeAdvisor()
        best = advisor.analytic_best(condition(10, 1))
        assert min(advisor.candidate_sizes) < best < max(advisor.candidate_sizes)

    @given(bad=st.floats(min_value=0.1, max_value=10.0))
    def test_analytic_best_always_a_candidate(self, bad):
        advisor = PacketSizeAdvisor()
        assert advisor.analytic_best(condition(10.0, bad)) in advisor.candidate_sizes
