"""Unit tests for the TCP sink."""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import Datagram, TcpAck, TcpSegment
from repro.tcp import TcpSink


class Harness:
    def __init__(self, sim):
        self.node = Node("MH")
        self.acks = []
        self.node.add_interface("capture", self.acks.append, "FH")
        self.sink = TcpSink(sim, self.node, "FH")
        self.node.attach_agent(self.sink)

    def data(self, seq, payload=536):
        seg = TcpSegment(seq=seq, payload_bytes=payload, sent_at=0.0)
        self.sink.receive(Datagram("FH", "MH", seg, payload + 40))

    def ack_seqs(self):
        return [d.payload.ack_seq for d in self.acks]


class TestInOrder:
    def test_acks_every_segment(self, sim):
        h = Harness(sim)
        for i in range(3):
            h.data(i)
        assert h.ack_seqs() == [1, 2, 3]

    def test_delivered_bytes(self, sim):
        h = Harness(sim)
        h.data(0, payload=536)
        h.data(1, payload=100)
        assert h.sink.stats.useful_payload_bytes == 636
        assert h.sink.stats.useful_wire_bytes == 636 + 80

    def test_timestamps(self, sim):
        h = Harness(sim)
        sim.schedule(1.0, h.data, 0)
        sim.schedule(2.0, h.data, 1)
        sim.run()
        assert h.sink.stats.first_data_at == 1.0
        assert h.sink.stats.last_data_at == 2.0


class TestOutOfOrder:
    def test_gap_generates_dupacks(self, sim):
        h = Harness(sim)
        h.data(0)
        h.data(2)
        h.data(3)
        assert h.ack_seqs() == [1, 1, 1]
        assert h.sink.stats.out_of_order_segments == 2

    def test_hole_fill_releases_buffered(self, sim):
        h = Harness(sim)
        h.data(0)
        h.data(2)
        h.data(3)
        h.data(1)  # fills the hole
        assert h.ack_seqs() == [1, 1, 1, 4]
        assert h.sink.stats.useful_payload_bytes == 4 * 536

    def test_buffered_payload_counted_once(self, sim):
        h = Harness(sim)
        h.data(1)
        h.data(1)  # duplicate of buffered
        h.data(0)
        assert h.sink.stats.useful_payload_bytes == 2 * 536
        assert h.sink.stats.duplicate_segments == 1

    def test_below_window_duplicate(self, sim):
        h = Harness(sim)
        h.data(0)
        h.data(0)
        assert h.ack_seqs() == [1, 1]
        assert h.sink.stats.duplicate_segments == 1

    def test_duplicate_not_double_delivered(self, sim):
        h = Harness(sim)
        h.data(0)
        h.data(0)
        assert h.sink.stats.useful_payload_bytes == 536


class TestErrors:
    def test_non_data_payload_rejected(self, sim):
        h = Harness(sim)
        with pytest.raises(TypeError):
            h.sink.receive(Datagram("FH", "MH", TcpAck(1), 40))

    def test_ack_counter(self, sim):
        h = Harness(sim)
        for i in range(5):
            h.data(i)
        assert h.sink.stats.acks_sent == 5


class DelayedHarness(Harness):
    def __init__(self, sim, **kwargs):
        from repro.net.node import Node
        from repro.tcp import TcpSink

        self.node = Node("MH")
        self.acks = []
        self.node.add_interface("capture", self.acks.append, "FH")
        self.sink = TcpSink(sim, self.node, "FH", delayed_acks=True, **kwargs)
        self.node.attach_agent(self.sink)


class TestDelayedAcks:
    def test_every_second_segment_acked(self, sim):
        h = DelayedHarness(sim)
        h.data(0)
        assert h.ack_seqs() == []  # held
        h.data(1)
        assert h.ack_seqs() == [2]

    def test_timer_flushes_lone_segment(self, sim):
        h = DelayedHarness(sim, delack_timeout=0.2)
        sim.schedule(1.0, h.data, 0)
        sim.run()
        assert h.ack_seqs() == [1]
        assert sim.now == pytest.approx(1.2)
        assert h.sink.stats.delayed_ack_timeouts == 1

    def test_out_of_order_acks_immediately(self, sim):
        """Dupacks must never be delayed (fast retransmit depends on them)."""
        h = DelayedHarness(sim)
        h.data(0)          # held
        h.data(2)          # gap: immediate dupack, held ack flushed
        assert h.ack_seqs() == [1]
        h.data(3)
        assert h.ack_seqs() == [1, 1]

    def test_duplicate_acks_immediately(self, sim):
        h = DelayedHarness(sim)
        h.data(0)
        h.data(1)
        h.data(0)  # duplicate
        assert h.ack_seqs() == [2, 2]

    def test_fewer_acks_than_segments(self, sim):
        h = DelayedHarness(sim)
        for i in range(10):
            h.data(i)
        sim.run()
        assert h.sink.stats.acks_sent == 5

    def test_validation(self, sim):
        from repro.net.node import Node
        from repro.tcp import TcpSink

        with pytest.raises(ValueError):
            TcpSink(sim, Node("MH"), "FH", delayed_acks=True, delack_timeout=0)
