"""Unit and integration tests for the split-connection baseline."""

from __future__ import annotations

import pytest

from repro.core.split import SplitRelay, StreamSender
from repro.engine import Simulator
from repro.net.node import Node
from repro.net.packet import Datagram, TcpAck, TcpSegment
from repro.tcp import TcpConfig


def stream_sender(sim, captured):
    node = Node("BS")
    node.add_interface("capture", captured.append, "MH")
    sender = StreamSender(
        sim,
        node,
        "MH",
        config=TcpConfig(packet_size=576, window_bytes=4096, transfer_bytes=1),
    )
    node.attach_agent(sender)
    sender.start()
    return sender


class TestStreamSender:
    def test_nothing_sent_before_push(self, sim):
        captured = []
        stream_sender(sim, captured)
        assert captured == []

    def test_push_releases_whole_segments_only(self, sim):
        captured = []
        sender = stream_sender(sim, captured)
        sender.push_payload(536 + 100)  # one full segment + change
        assert len(captured) == 1
        assert captured[0].payload.payload_bytes == 536

    def test_close_flushes_partial_tail(self, sim):
        captured = []
        sender = stream_sender(sim, captured)
        sender.push_payload(536 + 100)
        sender.receive(Datagram("MH", "BS", TcpAck(1), 40))
        sender.close()
        assert len(captured) == 2
        assert captured[1].payload.payload_bytes == 100

    def test_completion_requires_close(self, sim):
        captured = []
        sender = stream_sender(sim, captured)
        sender.push_payload(536)
        sender.receive(Datagram("MH", "BS", TcpAck(1), 40))
        assert not sender.completed
        sender.close()
        assert sender.completed

    def test_idle_stream_has_no_pending_timer(self, sim):
        """An idle (fully acked, still open) stream must not time out."""
        captured = []
        sender = stream_sender(sim, captured)
        sender.push_payload(536)
        sender.receive(Datagram("MH", "BS", TcpAck(1), 40))
        sim.run(until=60.0)
        assert sender.stats.timeouts == 0
        assert not sender.rtx_timer.pending

    def test_push_into_closed_stream_rejected(self, sim):
        sender = stream_sender(sim, [])
        sender.close()
        with pytest.raises(RuntimeError):
            sender.push_payload(10)

    def test_invalid_push_rejected(self, sim):
        sender = stream_sender(sim, [])
        with pytest.raises(ValueError):
            sender.push_payload(0)

    def test_losses_still_recovered_by_timeout(self, sim):
        captured = []
        sender = stream_sender(sim, captured)
        sender.push_payload(5 * 536)
        sender.close()
        sim.run(until=30.0)  # no ACKs at all: timeouts + retransmits
        assert sender.stats.timeouts >= 1
        assert any(d.payload.is_retransmission for d in captured)


class TestSplitRelay:
    def make_relay(self, sim, transfer=3 * 536):
        node = Node("BS")
        wired_out, wireless_out = [], []
        node.add_interface("wired", wired_out.append, "FH")
        node.add_interface("wireless", wireless_out.append, "MH")
        relay = SplitRelay(sim, node, transfer_bytes=transfer)
        node.attach_agent(relay)
        return relay, wired_out, wireless_out

    def data(self, seq, payload=536):
        return Datagram("FH", "MH", TcpSegment(seq, payload, 0.0), payload + 40)

    def test_acks_wired_side_immediately(self, sim):
        relay, wired_out, _ = self.make_relay(sim)
        relay.on_wired_data(self.data(0))
        assert len(wired_out) == 1
        assert wired_out[0].payload.ack_seq == 1
        assert wired_out[0].dst == "FH"

    def test_forwards_over_wireless_connection(self, sim):
        relay, _, wireless_out = self.make_relay(sim)
        relay.on_wired_data(self.data(0))
        assert len(wireless_out) == 1
        assert wireless_out[0].dst == "MH"
        assert wireless_out[0].src == "BS"

    def test_out_of_order_wired_data_buffered(self, sim):
        relay, wired_out, wireless_out = self.make_relay(sim)
        relay.on_wired_data(self.data(1))
        assert wired_out[-1].payload.ack_seq == 0  # dupack toward FH
        relay.on_wired_data(self.data(0))
        assert wired_out[-1].payload.ack_seq == 2
        assert relay.bytes_accepted == 2 * 536

    def test_closes_wireless_stream_at_transfer_end(self, sim):
        relay, _, _ = self.make_relay(sim, transfer=2 * 536)
        relay.on_wired_data(self.data(0))
        assert not relay.wireless_sender.closed
        relay.on_wired_data(self.data(1))
        assert relay.wireless_sender.closed

    def test_dispatches_wireless_acks(self, sim):
        relay, _, _ = self.make_relay(sim)
        relay.on_wired_data(self.data(0))
        relay.receive(Datagram("MH", "BS", TcpAck(1), 40))
        assert relay.wireless_sender.snd_una == 1


class TestSplitEndToEnd:
    def test_split_scenario_completes(self):
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scheme, run_scenario

        result = run_scenario(
            wan_scenario(Scheme.SPLIT, transfer_bytes=30 * 1024, bad_period_mean=2.0)
        )
        assert result.completed
        assert result.sink.stats.useful_payload_bytes == 30 * 1024

    def test_end_to_end_semantics_violation_is_observable(self):
        """The paper's §2 criticism: the FH sees the transfer 'done'
        long before the MH has the data."""
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scheme, run_scenario

        result = run_scenario(
            wan_scenario(Scheme.SPLIT, transfer_bytes=30 * 1024, bad_period_mean=2.0)
        )
        assert result.sender.stats.completed_at is not None
        assert result.sink.stats.last_data_at > result.sender.stats.completed_at * 1.5

    def test_state_maintained_at_base_station(self):
        """The paper's other criticism: a whole TCP sender at the BS."""
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scheme, run_scenario

        result = run_scenario(
            wan_scenario(Scheme.SPLIT, transfer_bytes=30 * 1024, bad_period_mean=2.0)
        )
        assert result.split is not None
        assert result.split.buffer_occupancy_peak > 0
        assert result.split.wireless_sender.stats.segments_sent > 0

    def test_shields_fixed_host_from_wireless_losses(self):
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scheme, run_scenario

        result = run_scenario(
            wan_scenario(Scheme.SPLIT, transfer_bytes=30 * 1024, bad_period_mean=4.0, seed=3)
        )
        # Wireless losses are recovered by the BS's connection, not the FH's.
        assert result.metrics.timeouts == 0  # FH never times out
        assert result.split.wireless_sender.stats.timeouts > 0

    def test_split_with_wireless_sized_packets(self):
        """A split connection may re-segment to the wireless MTU,
        avoiding fragmentation entirely."""
        from dataclasses import replace

        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scheme, run_scenario

        config = replace(
            wan_scenario(Scheme.SPLIT, transfer_bytes=20 * 1024, bad_period_mean=2.0),
            split_wireless_packet_size=128,
        )
        result = run_scenario(config)
        assert result.completed
        assert result.bs_port.fragmenter.datagrams_fragmented == 0
