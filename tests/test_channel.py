"""Unit and property tests for the two-state burst-error channel."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.channel import (
    ChannelState,
    DeterministicSojourns,
    ExponentialSojourns,
    TwoStateChannel,
    deterministic_channel,
    markov_channel,
)


class TestDeterministicSojourns:
    def test_constant_lengths(self):
        src = DeterministicSojourns(10.0, 4.0)
        assert src.next_sojourn(ChannelState.GOOD) == 10.0
        assert src.next_sojourn(ChannelState.BAD) == 4.0

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            DeterministicSojourns(0.0, 4.0)
        with pytest.raises(ValueError):
            DeterministicSojourns(10.0, -1.0)


class TestExponentialSojourns:
    def test_mean_is_respected(self, rng):
        src = ExponentialSojourns(10.0, 2.0, rng)
        samples = [src.next_sojourn(ChannelState.GOOD) for _ in range(4000)]
        assert 9.0 < sum(samples) / len(samples) < 11.0

    def test_bad_state_uses_bad_mean(self, rng):
        src = ExponentialSojourns(10.0, 2.0, rng)
        samples = [src.next_sojourn(ChannelState.BAD) for _ in range(4000)]
        assert 1.8 < sum(samples) / len(samples) < 2.2

    def test_invalid_means_rejected(self, rng):
        with pytest.raises(ValueError):
            ExponentialSojourns(-1.0, 2.0, rng)


class TestStateTimeline:
    def test_starts_in_good_state(self):
        channel = deterministic_channel(10.0, 4.0)
        assert channel.state_at(0.0) is ChannelState.GOOD

    def test_deterministic_cycle(self):
        channel = deterministic_channel(10.0, 4.0)
        assert channel.state_at(5.0) is ChannelState.GOOD
        assert channel.state_at(10.5) is ChannelState.BAD
        assert channel.state_at(13.9) is ChannelState.BAD
        assert channel.state_at(14.1) is ChannelState.GOOD
        assert channel.state_at(24.5) is ChannelState.BAD  # second cycle

    def test_queries_may_look_back(self):
        """A later query must not corrupt earlier-history answers."""
        channel = deterministic_channel(10.0, 4.0)
        assert channel.state_at(100.0) is channel.state_at(100.0)
        # Now look far back; the timeline was materialized beyond this.
        assert channel.state_at(10.5) is ChannelState.BAD

    def test_negative_time_rejected(self):
        channel = deterministic_channel(10.0, 4.0)
        with pytest.raises(ValueError):
            channel.state_at(-1.0)

    def test_intervals_cover_query_range(self):
        channel = deterministic_channel(10.0, 4.0)
        segments = list(channel.intervals(8.0, 16.0))
        assert segments[0][0] == 8.0
        assert segments[-1][1] == 16.0
        states = [s for (_, _, s) in segments]
        assert states == [ChannelState.GOOD, ChannelState.BAD, ChannelState.GOOD]

    def test_intervals_are_contiguous(self):
        channel = deterministic_channel(3.0, 1.0)
        segments = list(channel.intervals(0.0, 20.0))
        for (_, end_a, _), (start_b, _, _) in zip(segments, segments[1:]):
            assert end_a == start_b


class TestExposure:
    def test_all_good_interval(self):
        channel = deterministic_channel(10.0, 4.0)
        bits_good, bits_bad = channel.exposure(1.0, 2.0, 1000)
        assert bits_good == 1000 and bits_bad == 0

    def test_all_bad_interval(self):
        channel = deterministic_channel(10.0, 4.0)
        bits_good, bits_bad = channel.exposure(10.5, 2.0, 1000)
        assert bits_good == 0 and bits_bad == 1000

    def test_straddling_transition_splits_bits(self):
        channel = deterministic_channel(10.0, 4.0)
        bits_good, bits_bad = channel.exposure(9.0, 2.0, 1000)
        assert bits_good == pytest.approx(500)
        assert bits_bad == pytest.approx(500)

    def test_zero_duration_uses_point_state(self):
        channel = deterministic_channel(10.0, 4.0)
        assert channel.exposure(11.0, 0.0, 100) == (0.0, 100.0)

    def test_bits_conserved(self):
        channel = deterministic_channel(3.0, 2.0)
        bits_good, bits_bad = channel.exposure(1.0, 13.0, 999)
        assert bits_good + bits_bad == pytest.approx(999)


class TestCorruption:
    def test_deterministic_good_state_survives(self):
        channel = deterministic_channel(10.0, 4.0)
        # 1536 air bits in the good state: expected errors ~0.0015.
        assert not channel.corrupts(1.0, 0.08, 1536)

    def test_deterministic_bad_state_corrupts(self):
        channel = deterministic_channel(10.0, 4.0)
        # 1536 air bits at BER 1e-2: ~15 expected errors.
        assert channel.corrupts(10.5, 0.08, 1536)

    def test_survival_probability_matches_formula(self, rng):
        channel = markov_channel(10.0, 4.0, rng)
        # Force a known state window by querying inside first sojourn.
        p = channel.survival_probability(0.0, 0.01, 1536)
        expected = math.exp(1536 * math.log1p(-1e-6))
        assert p == pytest.approx(expected)

    def test_stochastic_bad_state_loses_most_frames(self):
        rng = random.Random(7)
        channel = TwoStateChannel(
            DeterministicSojourns(10.0, 4.0), 1e-6, 1e-2, rng=rng
        )
        lost = sum(
            channel.corrupts(10.1 + i * 1e-4, 0.0, 1536) for i in range(200)
        )
        assert lost > 190  # survival ~2e-7 per frame

    def test_stochastic_good_state_loses_few_frames(self):
        rng = random.Random(7)
        channel = TwoStateChannel(
            DeterministicSojourns(100.0, 1.0), 1e-6, 1e-2, rng=rng
        )
        lost = sum(channel.corrupts(0.0, 0.0, 1536) for _ in range(500))
        assert lost < 10  # loss ~0.15% per frame

    def test_counters(self):
        channel = deterministic_channel(10.0, 4.0)
        channel.corrupts(1.0, 0.01, 100)
        channel.corrupts(10.5, 0.01, 1536)
        assert channel.frames_tested == 2
        assert channel.frames_corrupted == 1

    def test_stochastic_mode_requires_rng(self):
        with pytest.raises(ValueError):
            TwoStateChannel(DeterministicSojourns(1, 1), 1e-6, 1e-2)

    def test_invalid_ber_rejected(self, rng):
        with pytest.raises(ValueError):
            TwoStateChannel(DeterministicSojourns(1, 1), -0.1, 1e-2, rng=rng)


class TestGoodFraction:
    def test_deterministic_good_fraction(self):
        channel = deterministic_channel(10.0, 4.0)
        assert channel.good_fraction() == pytest.approx(10.0 / 14.0)

    def test_markov_good_fraction(self, rng):
        channel = markov_channel(10.0, 1.0, rng)
        assert channel.good_fraction() == pytest.approx(10.0 / 11.0)

    def test_empirical_matches_steady_state(self, rng):
        channel = markov_channel(10.0, 2.0, rng)
        horizon = 40_000.0
        good_time = sum(
            end - start
            for start, end, state in channel.intervals(0.0, horizon)
            if state is ChannelState.GOOD
        )
        assert good_time / horizon == pytest.approx(10.0 / 12.0, rel=0.05)


class TestPropertyBased:
    @given(
        start=st.floats(min_value=0, max_value=500),
        duration=st.floats(min_value=0, max_value=50),
        nbits=st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=60)
    def test_exposure_conserves_bits(self, start, duration, nbits):
        channel = deterministic_channel(7.0, 3.0)
        bits_good, bits_bad = channel.exposure(start, duration, nbits)
        assert bits_good >= 0 and bits_bad >= 0
        # Conservation up to float noise (tiny durations at large
        # offsets lose a few ulps in the interval arithmetic).
        assert bits_good + bits_bad == pytest.approx(nbits, abs=1e-4 * max(nbits, 1))

    @given(
        start=st.floats(min_value=0, max_value=200),
        duration=st.floats(min_value=0.001, max_value=10),
    )
    @settings(max_examples=60)
    def test_survival_probability_in_unit_interval(self, start, duration):
        rng = random.Random(3)
        channel = markov_channel(5.0, 2.0, rng)
        p = channel.survival_probability(start, duration, 2048)
        assert 0.0 <= p <= 1.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_timeline_deterministic_given_seed(self, seed):
        def build():
            return markov_channel(5.0, 1.0, random.Random(seed))

        a, b = build(), build()
        assert [s for (_, _, s) in a.intervals(0, 100)] == [
            s for (_, _, s) in b.intervals(0, 100)
        ]


class TestTimelinePruning:
    def _channel(self, threshold):
        return TwoStateChannel(
            ExponentialSojourns(2.0, 0.5, random.Random(99)),
            ber_good=1e-6,
            ber_bad=1e-2,
            rng=random.Random(7),
            prune_threshold=threshold,
        )

    def test_long_transfer_timeline_stays_bounded(self):
        pruned = self._channel(threshold=512)
        unpruned = self._channel(threshold=0)
        decisions_pruned = []
        decisions_unpruned = []
        t = 0.0
        for _ in range(50_000):
            decisions_pruned.append(pruned.corrupts(t, 0.05, 1024))
            decisions_unpruned.append(unpruned.corrupts(t, 0.05, 1024))
            t += 0.06
        # Identical corruption decisions on the same seed...
        assert decisions_pruned == decisions_unpruned
        # ...but the pruned timeline is bounded while the unpruned one
        # grows with the transfer.
        assert pruned.timeline_length() <= 512 + 1
        assert unpruned.timeline_length() > 2 * (512 + 1)
        assert pruned.sojourns_pruned > 0

    def test_lookback_within_retention_still_works(self):
        channel = self._channel(threshold=16)
        t = 0.0
        for _ in range(5_000):
            channel.corrupts(t, 0.05, 1024)
            t += 0.06
        # A frame that started up to the retention margin ago (another
        # link direction's airtime) must still resolve.
        assert channel.state_at(t - 30.0) in (ChannelState.GOOD, ChannelState.BAD)

    def test_query_behind_pruned_history_raises(self):
        channel = self._channel(threshold=16)
        t = 0.0
        for _ in range(5_000):
            channel.corrupts(t, 0.05, 1024)
            t += 0.06
        with pytest.raises(ValueError, match="pruned"):
            channel.state_at(0.0)

    def test_prune_before_keeps_containing_sojourn(self):
        channel = deterministic_channel(10.0, 4.0)
        channel.state_at(100.0)  # materialize a few cycles
        before = channel.state_at(57.0)
        dropped = channel.prune_before(50.0)
        assert dropped > 0
        assert channel.state_at(57.0) is before
        assert channel.state_at(50.0) in (ChannelState.GOOD, ChannelState.BAD)

    def test_pruning_disabled_by_default_factories_is_on(self):
        # The factory-built channels prune (production default) ...
        channel = markov_channel(10.0, 1.0, rng=random.Random(1))
        assert channel._prune_threshold > 0
        # ... and an explicit 0 keeps full history.
        assert self._channel(threshold=0)._prune_threshold == 0

    def test_scenario_channel_timeline_bounded(self):
        """End-to-end: a WAN transfer leaves a bounded channel timeline."""
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scenario

        scenario = Scenario(
            wan_scenario(transfer_bytes=20 * 1024, record_trace=False)
        )
        scenario.run()
        assert scenario.channel.timeline_length() <= 513


class TestFastPathEquivalence:
    """The O(1) single-sojourn fast path must be invisible.

    Twin channels share a seed; one has its fast-path cache wiped
    before every query so it always takes the full segment walk.  The
    fast channel must produce bit-identical exposure splits, identical
    corruption decisions, and leave both the corruption RNG and the
    sojourn RNG in exactly the same state — i.e. the fast path neither
    draws nor skips a single random number.
    """

    @staticmethod
    def _twins(seed):
        def build():
            return markov_channel(
                5.0,
                1.0,
                random.Random(seed),
                sojourn_rng=random.Random(seed + 1),
            )

        return build(), build()

    @staticmethod
    def _rng_states(channel):
        return (channel._rng.getstate(), channel._sojourns._rng.getstate())

    @given(
        seed=st.integers(min_value=0, max_value=9999),
        queries=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=80),
                st.floats(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=4096),
            ),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=60)
    def test_exposure_fast_and_forced_slow_agree(self, seed, queries):
        fast, slow = self._twins(seed)
        for start, duration, nbits in queries:
            slow._fast_hi = slow._fast_lo - 1.0  # wipe: force the segment walk
            assert fast.exposure(start, duration, nbits) == slow.exposure(
                start, duration, nbits
            )
            assert self._rng_states(fast) == self._rng_states(slow)

    @given(
        seed=st.integers(min_value=0, max_value=9999),
        queries=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=80),
                st.floats(min_value=0.0001, max_value=2),
                st.integers(min_value=1, max_value=4096),
            ),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=60)
    def test_corrupts_fast_and_forced_slow_agree(self, seed, queries):
        fast, slow = self._twins(seed)
        for start, duration, nbits in queries:
            slow._fast_hi = slow._fast_lo - 1.0  # wipe: force the segment walk
            assert fast.corrupts(start, duration, nbits) == slow.corrupts(
                start, duration, nbits
            )
            assert self._rng_states(fast) == self._rng_states(slow)

    def test_paper_default_wan_run_hits_the_fast_path(self):
        from repro.experiments.config import wan_scenario
        from repro.experiments.topology import Scenario, Scheme

        scenario = Scenario(wan_scenario(scheme=Scheme.EBSN, record_trace=False))
        scenario.run()
        channel = scenario.channel
        total = channel.fast_path_hits + channel.fast_path_misses
        assert total == channel.frames_tested
        assert channel.fast_path_hits / total > 0.90
