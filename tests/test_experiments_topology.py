"""Unit tests for the scenario builder's wiring and config plumbing."""

from __future__ import annotations

import pytest

from repro.experiments.config import lan_scenario, wan_scenario
from repro.experiments.topology import (
    ChannelConfig,
    Scenario,
    ScenarioConfig,
    Scheme,
    with_scheme,
)
from repro.linklayer import ArqConfig, LinkLayerMode


class TestDerivedArq:
    def test_wan_defaults(self):
        config = wan_scenario()
        arq = config.derived_arq()
        assert arq.rtmax == 13
        # Frame time for a 128 B fragment is 80 ms; backoff spans
        # [2.5, 7.5] frame times.
        assert arq.backoff_min == pytest.approx(0.2)
        assert arq.backoff_max == pytest.approx(0.6)
        # ack timeout covers round trip + ACK airtime + reverse MTU.
        assert arq.ack_timeout > 0.09

    def test_explicit_arq_passes_through(self):
        custom = ArqConfig(ack_timeout=0.5, rtmax=3)
        config = wan_scenario(arq=custom)
        assert config.derived_arq() is custom

    def test_lan_uses_its_own_arq(self):
        config = lan_scenario()
        assert config.arq is not None
        assert config.derived_arq().rtmax == 150


class TestSchemeWiring:
    def build(self, scheme):
        return Scenario(wan_scenario(scheme=scheme, transfer_bytes=5 * 1024))

    def test_basic_is_plain_no_feedback(self):
        s = self.build(Scheme.BASIC)
        assert s.bs_port.mode is LinkLayerMode.PLAIN
        assert s.ebsn_generator is None
        assert s.sender.icmp_handler is None

    def test_local_recovery_is_arq(self):
        s = self.build(Scheme.LOCAL_RECOVERY)
        assert s.bs_port.mode is LinkLayerMode.ARQ
        assert s.mh_port.mode is LinkLayerMode.ARQ
        assert s.ebsn_generator is None

    def test_ebsn_wiring(self):
        s = self.build(Scheme.EBSN)
        assert s.bs_port.mode is LinkLayerMode.ARQ
        assert s.bs_port.feedback is s.ebsn_generator
        assert s.sender.icmp_handler is not None

    def test_quench_wiring(self):
        s = self.build(Scheme.QUENCH)
        assert s.quench_generator is not None
        assert s.bs_port.feedback is s.quench_generator

    def test_snoop_wiring(self):
        s = self.build(Scheme.SNOOP)
        assert s.snoop_agent is not None
        assert s.bs_port.mode is LinkLayerMode.PLAIN

    def test_split_wiring(self):
        s = self.build(Scheme.SPLIT)
        assert s.split_relay is not None
        assert s.bs.agent is s.split_relay
        assert s.sink.src == "BS"

    def test_links_share_one_channel(self):
        s = self.build(Scheme.BASIC)
        assert s.downlink.channel is s.uplink.channel

    def test_with_scheme_copies(self):
        config = wan_scenario(Scheme.BASIC)
        other = with_scheme(config, Scheme.EBSN)
        assert other.scheme is Scheme.EBSN
        assert config.scheme is Scheme.BASIC
        assert other.tcp == config.tcp


class TestChannelConfig:
    def test_deterministic_build(self, streams):
        channel = ChannelConfig(deterministic=True, good_period_mean=2.0,
                                bad_period_mean=1.0).build(streams)
        assert channel.deterministic_errors
        assert channel.good_fraction() == pytest.approx(2 / 3)

    def test_stochastic_build(self, streams):
        channel = ChannelConfig(good_period_mean=2.0, bad_period_mean=1.0).build(
            streams
        )
        assert not channel.deterministic_errors

    def test_unknown_variant_rejected(self):
        config = wan_scenario(transfer_bytes=1024)
        from dataclasses import replace

        with pytest.raises(KeyError):
            Scenario(replace(config, tcp_variant="vegas"))


class TestResultSurface:
    def test_result_exposes_components(self):
        from repro.experiments.topology import run_scenario

        result = run_scenario(wan_scenario(transfer_bytes=5 * 1024))
        assert result.tput_th_bps == pytest.approx(11_636, abs=1)
        assert result.downlink.stats.transmitted > 0
        assert result.config.scheme is Scheme.BASIC
        assert result.trace is not None


class TestAsymmetricWireless:
    def test_uplink_uses_its_own_config(self):
        from dataclasses import replace

        from repro.net.wireless import WirelessLinkConfig

        config = replace(
            wan_scenario(transfer_bytes=5 * 1024),
            wireless_up=WirelessLinkConfig(
                raw_bandwidth_bps=9600.0, prop_delay=0.002,
                overhead_factor=1.5, mtu_bytes=128,
            ),
        )
        s = Scenario(config)
        assert s.uplink.config.raw_bandwidth_bps == 9600.0
        assert s.downlink.config.raw_bandwidth_bps == 19200.0
        # Both directions still share the fading process.
        assert s.uplink.channel is s.downlink.channel

    def test_asymmetric_run_completes(self):
        from dataclasses import replace

        from repro.experiments.topology import run_scenario
        from repro.net.wireless import WirelessLinkConfig

        config = replace(
            wan_scenario(transfer_bytes=10 * 1024, bad_period_mean=2.0),
            wireless_up=WirelessLinkConfig(
                raw_bandwidth_bps=9600.0, prop_delay=0.002,
                overhead_factor=1.5, mtu_bytes=128,
            ),
        )
        result = run_scenario(config)
        assert result.completed
        # The slow return channel lengthens the transfer relative to
        # the symmetric case (ACK serialization adds to the RTT).
        symmetric = run_scenario(wan_scenario(transfer_bytes=10 * 1024,
                                              bad_period_mean=2.0))
        assert result.metrics.duration > symmetric.metrics.duration * 0.9
