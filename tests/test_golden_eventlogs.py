"""Golden-file regression tests for the ns-style event logs.

Where ``test_golden_traces.py`` freezes the *rendered* Fig 3/5 traces,
these freeze the raw event logs of two seed-deterministic scenarios —
one EBSN WAN transfer and one LOCAL_RECOVERY LAN transfer — so drift
anywhere in the event pipeline (link send/receive ordering, corruption
decisions, fragment sizes, uids) shows up as a line diff.  The same
files pin the serializer: parsing a golden and re-writing it must
reproduce the bytes exactly.

Regenerate deliberately after an intended behavior change::

    PYTHONPATH=src python -m tests.test_golden_eventlogs

and record why in the commit message.
"""

from __future__ import annotations

import io
import itertools
from pathlib import Path

from repro.experiments.config import lan_scenario, wan_scenario
from repro.experiments.topology import Scenario, Scheme
from repro.metrics.eventlog import EventLog, attach_to_scenario
from repro.net import packet

DATA = Path(__file__).parent / "data"

#: name -> scenario config for each golden log.  Small transfers keep
#: the files reviewable; the seeds make every channel decision (and so
#: every logged event) reproducible.
GOLDEN_SCENARIOS = {
    "golden_eventlog_wan_ebsn": lambda: wan_scenario(
        scheme=Scheme.EBSN,
        transfer_bytes=6 * 1024,
        bad_period_mean=2.0,
        seed=7,
        record_trace=False,
    ),
    "golden_eventlog_lan_local_recovery": lambda: lan_scenario(
        scheme=Scheme.LOCAL_RECOVERY,
        transfer_bytes=48 * 1024,
        bad_period_mean=0.04,
        seed=7,
    ),
}


def generate_log(name: str) -> EventLog:
    """Run the named golden scenario and return its event log.

    The process-wide datagram/frame uid counters are pinned to 1 for
    the run (uids are labels — behavior never reads them), so the
    logged lines are identical no matter how many packets earlier
    tests created.
    """
    saved = packet._datagram_ids, packet._frame_ids
    packet._datagram_ids = itertools.count(1)
    packet._frame_ids = itertools.count(1)
    try:
        scenario = Scenario(GOLDEN_SCENARIOS[name]())
        log = attach_to_scenario(scenario)
        result = scenario.run()
    finally:
        packet._datagram_ids, packet._frame_ids = saved
    assert result.completed, f"golden scenario {name} did not complete"
    return log


def log_text(log: EventLog) -> str:
    buffer = io.StringIO()
    log.write(buffer)
    return buffer.getvalue()


class TestGoldenEventLogs:
    def test_wan_ebsn_log_unchanged(self):
        golden = (DATA / "golden_eventlog_wan_ebsn.txt").read_text()
        assert log_text(generate_log("golden_eventlog_wan_ebsn")) == golden

    def test_lan_local_recovery_log_unchanged(self):
        golden = (DATA / "golden_eventlog_lan_local_recovery.txt").read_text()
        assert (
            log_text(generate_log("golden_eventlog_lan_local_recovery")) == golden
        )

    def test_goldens_round_trip_byte_for_byte(self):
        """read() then write() must reproduce each golden exactly."""
        for name in GOLDEN_SCENARIOS:
            raw = (DATA / f"{name}.txt").read_text()
            parsed = EventLog.read(io.StringIO(raw))
            assert len(parsed) > 0
            assert log_text(parsed) == raw, name

    def test_goldens_differ_from_each_other(self):
        """Sanity: the two scenarios really produce different logs."""
        names = list(GOLDEN_SCENARIOS)
        texts = {n: (DATA / f"{n}.txt").read_text() for n in names}
        assert texts[names[0]] != texts[names[1]]


def regenerate() -> None:  # pragma: no cover - manual tool
    """Rewrite the golden files from the current code."""
    for name in GOLDEN_SCENARIOS:
        path = DATA / f"{name}.txt"
        path.write_text(log_text(generate_log(name)))
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
