"""Tests for the uniform (Bernoulli) loss channel."""

from __future__ import annotations

import random

import pytest

from repro.channel import BernoulliLossChannel, matched_loss_probability


class TestChannel:
    def test_loss_rate_converges(self):
        channel = BernoulliLossChannel(0.2, random.Random(1))
        losses = sum(channel.corrupts(0, 0.1, 100) for _ in range(5000))
        assert losses / 5000 == pytest.approx(0.2, abs=0.02)

    def test_zero_probability_never_loses(self):
        channel = BernoulliLossChannel(0.0, random.Random(1))
        assert not any(channel.corrupts(0, 0.1, 100) for _ in range(100))

    def test_good_fraction(self):
        assert BernoulliLossChannel(0.25, random.Random(1)).good_fraction() == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliLossChannel(1.0, random.Random(1))
        with pytest.raises(ValueError):
            BernoulliLossChannel(-0.1, random.Random(1))


class TestMatching:
    def test_matches_steady_state_average(self):
        # good 10 s / bad 1 s, default BERs, 1536-bit frames:
        # survive_good ~ 0.9985, survive_bad ~ 2e-7.
        p = matched_loss_probability(10.0, 1.0)
        expected = 1 - (10 / 11) * 0.99846 - (1 / 11) * 2e-7
        assert p == pytest.approx(expected, abs=1e-3)

    def test_empirical_agreement_with_burst_channel(self):
        """The matched Bernoulli channel loses the same fraction of
        frames as the burst channel it imitates (long-run average)."""
        from repro.channel import markov_channel

        losses = 0
        trials = 20_000
        for seed in (7, 11):
            burst = markov_channel(
                10.0, 1.0, rng=random.Random(seed),
                sojourn_rng=random.Random(seed + 1),
            )
            t = 0.0
            for _ in range(trials):
                losses += burst.corrupts(t, 0.08, 1536)
                t += 0.08
        empirical = losses / (2 * trials)
        matched = matched_loss_probability(10.0, 1.0)
        # Boundary-straddling frames push the burst channel slightly
        # above the time-share estimate; agreement within a few points
        # of loss rate is what "matched" promises.
        assert empirical == pytest.approx(matched, abs=0.035)

    def test_validation(self):
        with pytest.raises(ValueError):
            matched_loss_probability(0, 1)
