"""§2 / [9]: link-level scheduling for multiple connections.

The paper summarizes Bhagwat et al.: with several TCP connections
sharing the base station's radio, FIFO scheduling suffers head-of-line
blocking when one destination fades, and "scheduling protocols such as
round-robin provide significant performance improvement over FIFO";
CSDP's further gain "depends mostly on the accuracy of the channel
state predictor", and "the problem of source timeouts exists in this
approach too".
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.csdp import CsdpStudyConfig, run_csdp_study

SCHEDULERS = ["fifo", "rr", "csdp"]


def _run(transfer):
    out = {}
    for sched in SCHEDULERS:
        aggregates, timeouts, blocked, fairness = [], [], [], []
        for seed in range(1, DEFAULT_REPS + 1):
            result = run_csdp_study(
                CsdpStudyConfig(
                    scheduler=sched,
                    n_connections=4,
                    transfer_bytes=transfer,
                    seed=seed,
                )
            )
            assert result.all_completed
            aggregates.append(result.aggregate_throughput_bps)
            timeouts.append(result.total_timeouts)
            blocked.append(result.radio.idle_blocked_time)
            fairness.append(result.fairness_index)
        n = len(aggregates)
        out[sched] = {
            "agg_kbps": sum(aggregates) / n / 1000,
            "timeouts": sum(timeouts) / n,
            "blocked_s": sum(blocked) / n,
            "fairness": sum(fairness) / n,
        }
    return out


def test_csdp_scheduling(benchmark, report):
    transfer = int(50 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Link-level scheduling, 4 TCP connections, independent fading",
        f"(good 4 s / bad 1 s per MH, {DEFAULT_REPS} seeds):",
        "",
        "scheduler   aggregate(kbps)   HOL-idle(s)   timeouts   fairness",
    ]
    for sched in SCHEDULERS:
        r = results[sched]
        lines.append(
            f"{sched:9s}   {r['agg_kbps']:15.2f}   {r['blocked_s']:11.1f}"
            f"   {r['timeouts']:8.1f}   {r['fairness']:8.3f}"
        )
    report("csdp_scheduling", "\n".join(lines))

    fifo, rr, csdp = (results[s] for s in SCHEDULERS)
    # Round-robin significantly outperforms FIFO ([9] via §2).
    assert rr["agg_kbps"] > 1.15 * fifo["agg_kbps"]
    # The gain comes from eliminating head-of-line blocking.
    assert fifo["blocked_s"] > 5 * rr["blocked_s"]
    # CSDP is at least as good as round-robin.
    assert csdp["agg_kbps"] > 0.95 * rr["agg_kbps"]
    # Source timeouts persist under every scheduling policy.
    for sched in SCHEDULERS:
        assert results[sched]["timeouts"] > 0
