"""Figure 11: local-area wireless — data retransmitted vs bad period.

Same setup as Figure 10.  The paper's reading:

  * basic TCP retransmits large amounts of data (source timeouts dump
    whole windows back into the network);
  * with EBSN the goodput is ~100%: essentially zero source
    retransmissions at every bad-period length.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, WORKERS, run_once

from repro.experiments.config import LAN_BAD_PERIODS
from repro.experiments.figures import figure_11


def _format(data):
    lines = [
        "Figure 11: LAN data retransmitted (KB) vs mean bad period, 4 MB transfer",
        f"(transfer scale {SCALE:g}, {DEFAULT_REPS} replications/point)",
        "",
        "bad(s)   basic TCP(KB)   EBSN(KB)   basic goodput   EBSN goodput",
    ]
    for bad in LAN_BAD_PERIODS:
        b = data["basic"].points[bad]
        e = data["ebsn"].points[bad]
        lines.append(
            f"{bad:6.1f}   {b.retransmitted_kbytes_mean:13.1f}"
            f"   {e.retransmitted_kbytes_mean:8.1f}   {b.goodput_mean:13.3f}"
            f"   {e.goodput_mean:12.3f}"
        )
    return "\n".join(lines)


def test_fig11_lan_retransmitted_data(benchmark, report):
    transfer = int(4 * 1024 * 1024 * SCALE)
    data = run_once(
        benchmark,
        lambda: figure_11(
            replications=DEFAULT_REPS, transfer_bytes=transfer, workers=WORKERS
        ),
    )
    report("fig11_lan_retx", _format(data))

    for bad in LAN_BAD_PERIODS:
        basic = data["basic"].points[bad]
        ebsn = data["ebsn"].points[bad]
        # Basic TCP retransmits a lot; EBSN almost nothing.
        assert basic.retransmitted_kbytes_mean > 20
        assert ebsn.retransmitted_kbytes_mean < 0.1 * basic.retransmitted_kbytes_mean
        # EBSN goodput ~100% (the paper's claim).
        assert ebsn.goodput_mean > 0.98
        assert basic.goodput_mean < 0.99
