"""§2 comparison: snoop and split-connection baselines vs EBSN.

The paper argues that snoop (and split-connection) approaches "do not
perform well in the presence of bursty losses on the wireless links"
— during a deep fade no duplicate ACKs arrive at the base station, so
snoop has only its local timer — and that snoop keeps per-connection
state at the BS while EBSN keeps none.  The split-connection (I-TCP)
baseline shields the fixed host completely but violates end-to-end
semantics and keeps a whole second TCP sender at the BS.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, STRICT, run_once

from repro.experiments.config import wan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme


def _run(transfer):
    results = {}
    for scheme in (Scheme.BASIC, Scheme.SNOOP, Scheme.SPLIT, Scheme.EBSN):
        results[scheme] = run_replicated(
            wan_scenario(
                scheme=scheme,
                packet_size=576,
                bad_period_mean=4.0,
                transfer_bytes=transfer,
                record_trace=False,
            ),
            replications=DEFAULT_REPS,
        )
    return results


def test_snoop_vs_ebsn_bursty(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Snoop-style agent vs EBSN (WAN, 576 B, bad period 4 s, bursty):",
        "",
        "scheme   throughput(kbps)   goodput   timeouts/run",
    ]
    for scheme, r in results.items():
        lines.append(
            f"{scheme.value:8s} {r.throughput_kbps:16.2f}   {r.goodput_mean:7.3f}"
            f"   {r.timeouts_mean:12.1f}"
        )
    report("snoop_vs_ebsn", "\n".join(lines))
    if not STRICT:
        # Smoke scale: the figure above is regenerated and saved, but
        # the paper-shape margins only hold at full scale.
        return


    basic = results[Scheme.BASIC]
    snoop = results[Scheme.SNOOP]
    split = results[Scheme.SPLIT]
    ebsn = results[Scheme.EBSN]

    # Split shields the fixed host (its timeouts happen at the BS
    # instead), and EBSN is competitive with it while keeping zero
    # transport state at the base station.
    assert split.timeouts_mean <= 0.5
    assert ebsn.throughput_bps_mean > 0.85 * split.throughput_bps_mean

    # Snoop's local recovery keeps the source from flooding the
    # network with end-to-end retransmissions: goodput improves and
    # timeouts drop relative to basic TCP ...
    assert snoop.goodput_mean > basic.goodput_mean
    # ... but — the paper's §2 point — under *bursty* losses snoop's
    # dupack-driven recovery starves (no ACKs flow in a fade), so it
    # delivers no throughput win over basic TCP, while EBSN clearly
    # beats both with zero per-connection state at the base station.
    assert snoop.throughput_bps_mean < 1.25 * basic.throughput_bps_mean
    assert ebsn.throughput_bps_mean > 1.2 * snoop.throughput_bps_mean
    assert ebsn.throughput_bps_mean > 1.1 * basic.throughput_bps_mean


def test_snoop_loss_regime(benchmark, report):
    """Snoop's published gains came from (mostly) independent losses;
    the paper's point is that real fades are bursty.  Same average
    loss rate, two correlation structures."""
    import dataclasses

    transfer = int(50 * 1024 * SCALE)

    def _run_regimes():
        out = {}
        for uniform in (False, True):
            for scheme in (Scheme.BASIC, Scheme.SNOOP, Scheme.EBSN):
                config = wan_scenario(
                    scheme=scheme,
                    bad_period_mean=1.0,
                    transfer_bytes=transfer,
                    record_trace=False,
                )
                config = dataclasses.replace(
                    config,
                    channel=dataclasses.replace(config.channel, uniform=uniform),
                )
                out[(uniform, scheme)] = run_replicated(
                    config, replications=DEFAULT_REPS
                )
        return out

    results = run_once(benchmark, _run_regimes)

    lines = [
        "Loss correlation regime (same mean loss rate ~9%/frame):",
        "",
        "regime    scheme   tput(kbps)",
    ]
    for (uniform, scheme), r in results.items():
        regime = "uniform" if uniform else "bursty"
        lines.append(f"{regime:8s}  {scheme.value:6s}  {r.throughput_kbps:10.2f}")
    report("snoop_loss_regime", "\n".join(lines))

    def ratio(uniform):
        return (
            results[(uniform, Scheme.SNOOP)].throughput_bps_mean
            / results[(uniform, Scheme.BASIC)].throughput_bps_mean
        )

    # Under uniform loss snoop shines (the Balakrishnan result) ...
    assert ratio(True) > 1.8
    # ... under bursty loss the advantage largely evaporates (§2).
    assert ratio(False) < 1.3
    # EBSN dominates in both regimes.
    for uniform in (False, True):
        assert (
            results[(uniform, Scheme.EBSN)].throughput_bps_mean
            > 1.2 * results[(uniform, Scheme.SNOOP)].throughput_bps_mean
        )
