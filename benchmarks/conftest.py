"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs the experiment behind one paper figure, writes the
series it produces to ``benchmarks/out/<name>.txt`` (so the numbers
survive the run), echoes them to stdout, and asserts the qualitative
shape the paper reports.  pytest-benchmark wraps the whole figure
computation, so `pytest benchmarks/ --benchmark-only` both regenerates
every figure and reports how long each takes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

#: Replications per point.  The paper averaged enough runs to get
#: stddev < 4%; REPRO_BENCH_REPS can raise this for tighter curves.
DEFAULT_REPS = int(os.environ.get("REPRO_BENCH_REPS", "10"))

#: Transfer-size scale factor (1.0 = the paper's sizes).  Lower it for
#: quick smoke runs: REPRO_BENCH_SCALE=0.25 pytest benchmarks/ ...
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Worker processes for the parallel experiment engine (seed fan-out).
#: 1 = serial (the default, and the most reproducible timing); 0 = one
#: worker per CPU.  REPRO_BENCH_WORKERS=4 pytest benchmarks/ ...
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Below 0.8x scale the runs are smoke tests: each benchmark still
#: regenerates and saves its figure, but only sanity-level assertions
#: apply (tiny transfers over a fading link are far too noisy for the
#: paper-shape margins, which are calibrated at full scale).
STRICT = SCALE >= 0.8


@pytest.fixture(scope="session", autouse=True)
def _no_validation():
    """Benchmarks measure the simulator, not the invariant engine."""
    from repro.validate.engine import set_default_validation, validation_default

    previous = validation_default()
    set_default_validation(False)
    yield
    set_default_validation(previous)


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def report(out_dir):
    """Write a figure's text report to disk and echo it."""

    def _report(name: str, text: str) -> None:
        path = out_dir / f"{name}.txt"
        path.write_text(text)
        print(f"\n{'=' * 72}\n{text}\n[written to {path}]")

    return _report


def run_once(benchmark, fn):
    """Run a figure computation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
