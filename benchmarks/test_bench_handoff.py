"""Extension: handoff recovery schemes ([4]/[17] companion study).

The paper's §2 opens with Caceres & Iftode: after each cell crossing,
TCP waits out a retransmission timeout unless the fast-retransmit
procedure is invoked explicitly.  This benchmark sweeps the handoff
frequency for all four recovery schemes and reproduces that finding.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.handoff import HandoffConfig, HandoffScheme, run_handoff_scenario

INTERVALS = [4.0, 8.0, 16.0]


def _run(transfer):
    out = {}
    for scheme in HandoffScheme:
        for interval in INTERVALS:
            tput = timeouts = stall = 0.0
            n = DEFAULT_REPS
            for seed in range(1, n + 1):
                result = run_handoff_scenario(
                    HandoffConfig(
                        scheme=scheme,
                        handoff_interval=interval,
                        disconnect_time=0.3,
                        transfer_bytes=transfer,
                        seed=seed,
                    )
                )
                assert result.completed
                tput += result.metrics.throughput_bps / n
                timeouts += result.timeouts / n
                stall += result.stall_time_total / n
            out[(scheme, interval)] = dict(
                tput_kbps=tput / 1000, timeouts=timeouts, stall=stall
            )
    return out


def test_handoff_recovery_schemes(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Handoff recovery, 300 ms disconnections, 100 KB transfer:",
        "",
        "scheme             interval(s)  tput(kbps)  timeouts/run  stall(s)",
    ]
    for (scheme, interval), r in results.items():
        lines.append(
            f"{scheme.value:18s} {interval:11.0f}  {r['tput_kbps']:10.2f}"
            f"  {r['timeouts']:12.1f}  {r['stall']:8.1f}"
        )
    report("handoff_schemes", "\n".join(lines))

    for interval in INTERVALS:
        base = results[(HandoffScheme.BASELINE, interval)]
        fast = results[(HandoffScheme.FAST_RTX, interval)]
        fwd = results[(HandoffScheme.FORWARD, interval)]

        # Fast retransmit removes the post-handoff timeout stalls ...
        assert fast["timeouts"] < 0.4 * max(base["timeouts"], 1.0)
        assert fast["tput_kbps"] > base["tput_kbps"]
        # ... and forwarding also helps by saving the stranded data.
        assert fwd["tput_kbps"] > base["tput_kbps"]

    # The damage scales with handoff frequency for the baseline.
    assert (
        results[(HandoffScheme.BASELINE, 4.0)]["tput_kbps"]
        < results[(HandoffScheme.BASELINE, 16.0)]["tput_kbps"]
    )
