"""§4.2.2: why ICMP source quench does not work (no figure in paper).

The paper traced quench and concluded: "A source quench message from
the base station ... will not be able to prevent timeouts of packets
that are already on the network."  This benchmark reproduces that
comparison: basic vs quench vs EBSN on the WAN configuration.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.experiments.config import wan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme


def _run(transfer):
    results = {}
    for scheme in (Scheme.BASIC, Scheme.QUENCH, Scheme.EBSN):
        results[scheme] = run_replicated(
            wan_scenario(
                scheme=scheme,
                packet_size=576,
                bad_period_mean=4.0,
                transfer_bytes=transfer,
                record_trace=False,
            ),
            replications=DEFAULT_REPS,
        )
    return results


def test_quench_negative_result(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Source quench vs EBSN (WAN, 576 B packets, bad period 4 s):",
        "",
        "scheme   throughput(kbps)   goodput   timeouts/run",
    ]
    for scheme, r in results.items():
        lines.append(
            f"{scheme.value:8s} {r.throughput_kbps:16.2f}   {r.goodput_mean:7.3f}"
            f"   {r.timeouts_mean:12.1f}"
        )
    report("quench_negative", "\n".join(lines))

    basic = results[Scheme.BASIC]
    quench = results[Scheme.QUENCH]
    ebsn = results[Scheme.EBSN]

    # Quench does NOT eliminate timeouts (the paper's point) ...
    assert quench.timeouts_mean > 2.0
    # ... while EBSN all but does (residual timeouts are genuine-loss
    # recoveries after ARQ discards, not spurious ones).
    assert ebsn.timeouts_mean < 1.5
    assert ebsn.timeouts_mean < 0.25 * quench.timeouts_mean
    # EBSN delivers the throughput win over basic TCP; quench cannot.
    assert ebsn.throughput_bps_mean >= 0.95 * quench.throughput_bps_mean
    assert ebsn.throughput_bps_mean > 1.1 * basic.throughput_bps_mean
