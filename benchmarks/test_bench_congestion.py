"""§6 extension: wired congestion and the ECN/EBSN interaction.

The paper defers to follow-up work "the impact of congestion in the
wired network on the effectiveness of EBSN" and "the interaction
between ECN and EBSN".  This benchmark runs that experiment: a CBR
cross-traffic source loads the wired bottleneck to 90% while the
wireless hop fades as usual, for every combination of
{basic, EBSN} × {ECN off, ECN on}.

Expected interaction (and what the assertions pin):

* congestion produces real drops; ECN marking removes most of the
  TCP-visible ones (the CBR source ignores ECN, so its drops remain);
* EBSN keeps its advantage under congestion — wireless stalls and
  congestion are separate pathologies;
* EBSN does not mask congestion: with EBSN active the source still
  executes normal congestion recovery for wired losses;
* the combination (EBSN + ECN) has the fewest loss events overall.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.experiments.congestion import (
    CongestedScenarioConfig,
    run_congested_scenario,
)
from repro.experiments.topology import Scheme
from repro.tcp import TcpConfig

COMBOS = [
    (Scheme.BASIC, False),
    (Scheme.BASIC, True),
    (Scheme.EBSN, False),
    (Scheme.EBSN, True),
]


def _run(transfer):
    out = {}
    for scheme, ecn in COMBOS:
        tput = drops = marks = responses = timeouts = fastrtx = 0.0
        n = DEFAULT_REPS
        for seed in range(1, n + 1):
            result = run_congested_scenario(
                CongestedScenarioConfig(
                    scheme=scheme,
                    ecn=ecn,
                    cross_load=0.9,
                    seed=seed,
                    tcp=TcpConfig(transfer_bytes=transfer),
                )
            )
            assert result.completed
            tput += result.metrics.throughput_bps / n
            drops += result.bottleneck_drops / n
            marks += result.ecn_marks / n
            responses += result.ecn_responses / n
            timeouts += result.timeouts / n
            fastrtx += result.fast_retransmits / n
        out[(scheme, ecn)] = dict(
            tput_kbps=tput / 1000,
            drops=drops,
            marks=marks,
            responses=responses,
            timeouts=timeouts,
            fastrtx=fastrtx,
        )
    return out


def test_congestion_ecn_ebsn_interaction(benchmark, report):
    transfer = int(60 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Wired congestion (90% cross load) x wireless fades (bad 1 s):",
        "",
        "scheme  ECN    tput(kbps)  drops  marks  ecn_resp  timeouts  fastrtx",
    ]
    for (scheme, ecn), r in results.items():
        lines.append(
            f"{scheme.value:7s} {str(ecn):5s} {r['tput_kbps']:10.2f}"
            f"  {r['drops']:5.1f}  {r['marks']:5.0f}  {r['responses']:8.1f}"
            f"  {r['timeouts']:8.1f}  {r['fastrtx']:7.1f}"
        )
    report("congestion_ecn_ebsn", "\n".join(lines))

    basic = results[(Scheme.BASIC, False)]
    basic_ecn = results[(Scheme.BASIC, True)]
    ebsn = results[(Scheme.EBSN, False)]
    ebsn_ecn = results[(Scheme.EBSN, True)]

    # Congestion is real, and ECN marking absorbs most drops.
    assert basic["drops"] > 5
    assert basic_ecn["drops"] < 0.6 * basic["drops"]
    assert basic_ecn["marks"] > 0 and basic_ecn["responses"] > 0

    # EBSN keeps its advantage under wired congestion.
    assert ebsn["tput_kbps"] > 1.1 * basic["tput_kbps"]
    # ... while still letting congestion control operate (no masking).
    assert ebsn["fastrtx"] + ebsn["timeouts"] > 0

    # The combination suppresses both pathologies: fewer timeouts than
    # basic, fewer fast retransmits than no-ECN.
    assert ebsn_ecn["timeouts"] < 0.5 * basic["timeouts"]
    assert ebsn_ecn["fastrtx"] <= ebsn["fastrtx"]
