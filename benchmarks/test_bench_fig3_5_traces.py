"""Figures 3-5: packet traces of the deterministic §4.2.1 example.

Basic TCP (Fig 3), local recovery (Fig 4), EBSN (Fig 5) over the
frozen channel: good period exactly 10 s, bad period exactly 4 s,
576 B packets, 4 KB window, 100 KB transfer.

Paper's reading of the figures:
  * Fig 3: every bad period stalls the source; timeouts and clusters
    of retransmissions (packets 44-50 in the 24-28 s fade).
  * Fig 4: local recovery removes almost all source retransmissions,
    but the source can still time out during recovery.
  * Fig 5: EBSN — no timeouts, no source retransmissions at all.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import trace_figure
from repro.experiments.topology import Scheme


def _render(result, title):
    trace = result.trace
    m = result.metrics
    header = (
        f"{title}\n"
        f"duration={m.duration:.1f}s  throughput={m.throughput_kbps:.2f} kbps  "
        f"goodput={m.goodput * 100:.1f}%  timeouts={m.timeouts}  "
        f"source retransmissions={m.retransmissions}\n"
    )
    return header + trace.render(width=100, title="")


def test_fig3_basic_tcp_trace(benchmark, report):
    result = run_once(benchmark, lambda: trace_figure(3))
    report("fig3_trace_basic", _render(result, "Figure 3: Basic TCP (deterministic example)"))
    # Paper shape: repeated timeout stalls and retransmission clusters.
    assert result.metrics.timeouts >= 5
    assert result.trace.retransmissions > 10
    assert len(result.trace.idle_gaps(min_gap=3.0)) >= 2
    # Packets transmitted into the first fade (starting at t=10) are
    # retransmitted afterwards — the paper's packet-44 story.
    fade_entries = result.trace.transmissions_between(6.0, 14.0)
    assert any(
        len(result.trace.transmissions_of(e.seq)) > 1 for e in fade_entries
    )


def test_fig4_local_recovery_trace(benchmark, report):
    result = run_once(benchmark, lambda: trace_figure(4))
    report(
        "fig4_trace_local_recovery",
        _render(result, "Figure 4: Local recovery (link-layer ARQ at the BS)"),
    )
    basic = trace_figure(3)
    # Far fewer source retransmissions than basic TCP.
    assert result.trace.retransmissions < basic.trace.retransmissions / 3
    assert result.metrics.throughput_bps > 1.5 * basic.metrics.throughput_bps


def test_fig5_ebsn_trace(benchmark, report):
    result = run_once(benchmark, lambda: trace_figure(5))
    report("fig5_trace_ebsn", _render(result, "Figure 5: Explicit feedback (EBSN)"))
    # The paper's reading: no timeouts at the source, so no congestion
    # control invoked in any bad period.
    assert result.metrics.timeouts == 0
    assert result.metrics.retransmissions == 0
    assert result.metrics.goodput == 1.0
    assert result.ebsn is not None and result.ebsn.ebsn_sent > 0


def test_trace_schemes_ordering(benchmark, report):
    """Summary comparison across the three trace figures."""

    def compute():
        return {n: trace_figure(n) for n in (3, 4, 5)}

    results = run_once(benchmark, compute)
    lines = ["Figs 3-5 summary (deterministic 10s good / 4s bad):", ""]
    for n, label in ((3, "basic"), (4, "local recovery"), (5, "EBSN")):
        m = results[n].metrics
        lines.append(
            f"  fig {n} {label:15s} tput={m.throughput_kbps:5.2f} kbps  "
            f"goodput={m.goodput * 100:5.1f}%  timeouts={m.timeouts:2d}  "
            f"retx={m.retransmissions:3d}"
        )
    report("fig3_5_summary", "\n".join(lines))
    tput = {n: results[n].metrics.throughput_bps for n in (3, 4, 5)}
    assert tput[3] < tput[4] <= tput[5] * 1.001
