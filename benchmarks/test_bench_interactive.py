"""Extension: interactive (telnet-style) latency per recovery scheme.

The paper motivates its work with interactive applications but
measures bulk transfer.  This benchmark types keystrokes across the
fading WAN path and reports per-keystroke delivery latency.

Two findings:

* EBSN cuts mean latency and spurious timeouts, but the latency *tail*
  is fade-bound — no recovery scheme delivers a keystroke through a
  deep fade, it can only avoid adding timer backoff on top.
* Interactive RTTs are tiny, so the source's RTO sits at the clock-
  granularity floor — *below* the ARQ retry cycle — and the paper's
  per-attempt EBSNs arrive too sparsely to stop every timeout (the
  small-RTT sensitivity of §4.2.4).  The EBSN *heartbeat* extension
  (keep notifying between attempts) closes that gap.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, STRICT, run_once

from repro.experiments.topology import Scheme
from repro.workloads import InteractiveConfig, run_interactive_session

VARIANTS = [
    ("basic", dict(scheme=Scheme.BASIC)),
    ("local recovery", dict(scheme=Scheme.LOCAL_RECOVERY)),
    ("EBSN", dict(scheme=Scheme.EBSN)),
    ("EBSN + heartbeat", dict(scheme=Scheme.EBSN, ebsn_heartbeat=0.15)),
]


def _run(keystrokes):
    out = {}
    for label, kwargs in VARIANTS:
        mean = p95 = worst = timeouts = 0.0
        n = DEFAULT_REPS
        for seed in range(1, n + 1):
            result = run_interactive_session(
                InteractiveConfig(keystrokes=keystrokes, seed=seed, **kwargs)
            )
            assert result.completed
            mean += result.latency.mean / n
            p95 += result.latency.p95 / n
            worst = max(worst, result.latency.worst)
            timeouts += result.timeouts / n
        out[label] = dict(mean=mean, p95=p95, worst=worst, timeouts=timeouts)
    return out


def test_interactive_latency(benchmark, report):
    keystrokes = max(50, int(300 * SCALE))
    results = run_once(benchmark, lambda: _run(keystrokes))

    lines = [
        f"Keystroke latency over the fading WAN path ({keystrokes} keys/run,",
        f"bad period 2 s, {DEFAULT_REPS} seeds):",
        "",
        "variant            mean(ms)   p95(ms)   worst(ms)   timeouts/run",
    ]
    for label, r in results.items():
        lines.append(
            f"{label:18s} {r['mean'] * 1000:8.0f}   {r['p95'] * 1000:7.0f}"
            f"   {r['worst'] * 1000:9.0f}   {r['timeouts']:12.1f}"
        )
    report("interactive_latency", "\n".join(lines))
    if not STRICT:
        # Smoke scale: the figure above is regenerated and saved, but
        # the paper-shape margins only hold at full scale.
        return


    basic = results["basic"]
    ebsn = results["EBSN"]
    heartbeat = results["EBSN + heartbeat"]

    # EBSN improves the feel of the session ...
    assert ebsn["mean"] < basic["mean"]
    assert ebsn["timeouts"] < 0.7 * basic["timeouts"]
    # ... and the heartbeat extension removes the residual timeouts
    # that the sparse per-attempt EBSN stream cannot (small-RTT RTOs).
    assert heartbeat["timeouts"] < 0.5 * ebsn["timeouts"]
    assert heartbeat["mean"] <= ebsn["mean"] * 1.05
