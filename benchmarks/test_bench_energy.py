"""Extension: mobile-host energy per scheme.

Battery life was the other scarce resource of 1990s mobile computing.
This ablation measures the mobile host's radio energy per delivered
kilobyte under each recovery scheme (WaveLAN-class power model):
redundant end-to-end retransmissions cost the MH receive energy, the
longer connection costs idle-listening energy, and local recovery +
EBSN should therefore be the cheapest way to move a byte.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, STRICT, run_once

from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scheme, run_scenario
from repro.metrics.energy import mobile_host_energy

SCHEMES = [Scheme.BASIC, Scheme.LOCAL_RECOVERY, Scheme.EBSN, Scheme.SNOOP]


def _run(transfer):
    out = {}
    for scheme in SCHEMES:
        joules_per_kb = total = duration = 0.0
        n = DEFAULT_REPS
        for seed in range(1, n + 1):
            result = run_scenario(
                wan_scenario(
                    scheme=scheme,
                    bad_period_mean=4.0,
                    transfer_bytes=transfer,
                    seed=seed,
                    record_trace=False,
                )
            )
            assert result.completed
            report = mobile_host_energy(result)
            joules_per_kb += report.joules_per_useful_kb / n
            total += report.total_joules / n
            duration += report.duration / n
        out[scheme] = dict(
            joules_per_kb=joules_per_kb, total_j=total, duration=duration
        )
    return out


def test_energy_per_scheme(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Mobile-host energy (WaveLAN-class radio), WAN, bad period 4 s:",
        "",
        "scheme           J/useful-KB   total J   duration(s)",
    ]
    for scheme, r in results.items():
        lines.append(
            f"{scheme.value:16s} {r['joules_per_kb']:11.3f}   {r['total_j']:7.1f}"
            f"   {r['duration']:11.1f}"
        )
    report("energy_per_scheme", "\n".join(lines))
    if not STRICT:
        # Smoke scale: the figure above is regenerated and saved, but
        # the paper-shape margins only hold at full scale.
        return


    basic = results[Scheme.BASIC]
    ebsn = results[Scheme.EBSN]
    # EBSN moves a byte for noticeably less energy than basic TCP.
    assert ebsn["joules_per_kb"] < 0.85 * basic["joules_per_kb"]
    # ... mostly because the whole connection is shorter.
    assert ebsn["duration"] < basic["duration"]
