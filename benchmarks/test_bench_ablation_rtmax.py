"""Ablation: ARQ persistence (RTmax) under EBSN.

The paper fixes RTmax = 13 (CDPD).  This ablation shows what the limit
trades off: with few attempts the link layer gives up inside fades and
the source must recover end-to-end; with the CDPD budget the ARQ rides
out most fades and EBSN keeps the source quiet.
"""

from __future__ import annotations

import dataclasses

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.experiments.config import wan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme

RTMAX_VALUES = [1, 3, 7, 13, 25]


def _run(transfer):
    out = {}
    base = wan_scenario(
        scheme=Scheme.EBSN,
        packet_size=576,
        bad_period_mean=4.0,
        transfer_bytes=transfer,
        record_trace=False,
    )
    derived = base.derived_arq()
    for rtmax in RTMAX_VALUES:
        config = dataclasses.replace(
            base, arq=dataclasses.replace(derived, rtmax=rtmax)
        )
        out[rtmax] = run_replicated(config, replications=DEFAULT_REPS)
    return out


def test_rtmax_persistence(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Ablation: ARQ RTmax under EBSN (WAN, 576 B, bad period 4 s):",
        "",
        "rtmax   throughput(kbps)   goodput   retransmitted(KB)",
    ]
    for rtmax, r in results.items():
        lines.append(
            f"{rtmax:5d}   {r.throughput_kbps:16.2f}   {r.goodput_mean:7.3f}"
            f"   {r.retransmitted_kbytes_mean:17.1f}"
        )
    report("ablation_rtmax", "\n".join(lines))

    # Persistence pays: the CDPD budget beats a nearly-giving-up ARQ.
    assert results[13].throughput_bps_mean > results[1].throughput_bps_mean
    assert results[13].goodput_mean > results[1].goodput_mean
    # Low persistence forces the source to retransmit more.
    assert (
        results[1].retransmitted_kbytes_mean
        > results[13].retransmitted_kbytes_mean
    )
    # Diminishing returns beyond the fade timescale.
    assert results[25].throughput_bps_mean < results[13].throughput_bps_mean * 1.15
