"""Parallel experiment engine and hot-path microbenchmarks.

Not a paper figure — these prove the perf claims of the experiment
engine and the simulator/channel optimizations it rides on:

* a 10-seed WAN sweep through :class:`ParallelRunner` at 4 workers is
  >= 2x faster than serial (asserted on machines with >= 4 CPUs,
  reported everywhere) and bit-identical to the serial run;
* a warm result cache answers the same sweep with zero simulation;
* heap compaction bounds the event heap under timer churn where pure
  lazy deletion grows without limit;
* ``pending_count()`` is O(1), not a heap scan;
* timeline pruning bounds channel memory on long transfers while
  leaving every corruption decision unchanged.
"""

from __future__ import annotations

import os
import random
import time

from conftest import SCALE, run_once

from repro.channel.twostate import ExponentialSojourns, TwoStateChannel
from repro.engine import Simulator
from repro.experiments.cache import ResultCache
from repro.experiments.config import wan_scenario
from repro.experiments.parallel import ParallelRunner

SEEDS = 10
SPEEDUP_WORKERS = 4


def _wan_units(transfer_bytes: int):
    """The acceptance workload: one WAN config per seed, traces off."""
    return [
        wan_scenario(transfer_bytes=transfer_bytes, seed=seed, record_trace=False)
        for seed in range(1, SEEDS + 1)
    ]


def test_parallel_speedup_10_seed_wan_sweep(benchmark):
    """10-seed WAN sweep: 4 workers vs serial, identical results."""
    transfer = int(100 * 1024 * SCALE)

    def run():
        units = _wan_units(transfer)
        start = time.perf_counter()
        serial = ParallelRunner(workers=1).run(units)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        pooled = ParallelRunner(workers=SPEEDUP_WORKERS).run(units)
        pooled_s = time.perf_counter() - start
        return serial, serial_s, pooled, pooled_s

    serial, serial_s, pooled, pooled_s = run_once(benchmark, run)

    # Parallelism must never change the science.
    assert [s.metrics for s in serial] == [p.metrics for p in pooled]
    assert [s.config.seed for s in serial] == [p.config.seed for p in pooled]

    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    cpus = os.cpu_count() or 1
    print(
        f"\n10-seed WAN sweep ({transfer} B/seed): serial {serial_s:.2f}s, "
        f"{SPEEDUP_WORKERS} workers {pooled_s:.2f}s -> {speedup:.2f}x "
        f"({cpus} CPUs)"
    )
    # The >= 2x claim needs the hardware to exist; on fewer CPUs the
    # pool degrades toward serial and we only require it not to choke.
    if cpus >= SPEEDUP_WORKERS:
        assert speedup >= 2.0, f"expected >=2x at {SPEEDUP_WORKERS} workers, got {speedup:.2f}x"
    else:
        assert pooled_s < serial_s * 2.5


def test_cache_turns_sweep_into_reads(benchmark, tmp_path):
    """A warm cache answers the whole sweep without simulating."""
    transfer = int(24 * 1024 * SCALE)
    cache = ResultCache(tmp_path)
    units = _wan_units(transfer)

    start = time.perf_counter()
    cold = ParallelRunner(workers=1, cache=cache).run(units)
    cold_s = time.perf_counter() - start
    assert cache.misses == SEEDS and cache.hits == 0

    warm = run_once(benchmark, lambda: ParallelRunner(workers=1, cache=cache).run(units))
    assert cache.hits == SEEDS  # every unit answered from disk
    assert [c.metrics for c in cold] == [w.metrics for w in warm]

    start = time.perf_counter()
    ParallelRunner(workers=1, cache=cache).run(units)
    warm_s = time.perf_counter() - start
    print(f"\ncold sweep {cold_s:.3f}s, warm sweep {warm_s:.3f}s")
    assert warm_s < cold_s / 5


def _timer_churn(sim: Simulator, restarts: int) -> int:
    """The RTO/ARQ pattern: one far-future timer restarted constantly."""
    max_heap = 0
    event = sim.schedule(1e9, lambda: None)
    for _ in range(restarts):
        event.cancel()
        event = sim.schedule(1e9, lambda: None)
        max_heap = max(max_heap, len(sim._heap))
    event.cancel()
    sim.run()
    return max_heap


def test_heap_compaction_bounds_timer_churn(benchmark):
    """Compaction keeps the heap small where lazy deletion balloons."""
    restarts = 100_000

    max_heap = run_once(benchmark, lambda: _timer_churn(Simulator(), restarts))

    # Control: same churn with compaction disabled -> corpses pile up.
    lazy = Simulator()
    lazy.COMPACT_MIN_HEAP = restarts * 10  # instance override, never triggers
    lazy_max = _timer_churn(lazy, restarts)

    print(f"\nmax heap over {restarts} restarts: compacted {max_heap}, lazy-only {lazy_max}")
    assert lazy_max >= restarts  # the leak the compactor exists to stop
    assert max_heap < 4 * Simulator.COMPACT_MIN_HEAP
    compacted = Simulator()
    _timer_churn(compacted, restarts)
    assert compacted.heap_compactions > 0


def test_pending_count_is_constant_time(benchmark):
    """pending_count() must not scan the heap."""
    sim = Simulator()
    events = [sim.schedule(float(i % 997) + 1.0, lambda: None) for i in range(50_000)]
    for event in events[::3]:
        event.cancel()
    expected = sum(1 for entry in sim._heap if not entry[2].cancelled)
    assert sim.pending_count() == expected

    calls = 10_000
    run_once(benchmark, lambda: [sim.pending_count() for _ in range(calls)])

    start = time.perf_counter()
    for _ in range(calls):
        sim.pending_count()
    o1_per_call = (time.perf_counter() - start) / calls

    scans = 50
    start = time.perf_counter()
    for _ in range(scans):
        sum(1 for entry in sim._heap if not entry[2].cancelled)
    scan_per_call = (time.perf_counter() - start) / scans

    print(f"\npending_count {o1_per_call * 1e6:.2f}us/call vs heap scan {scan_per_call * 1e6:.2f}us/call")
    assert o1_per_call * 50 < scan_per_call


def _scan_channel(channel: TwoStateChannel, frames: int):
    """Stream ``frames`` back-to-back corruption queries up the timeline."""
    decisions = []
    clock = 0.0
    for _ in range(frames):
        decisions.append(channel.corrupts(clock, 0.008, 4096))
        clock += 0.01
    return decisions


def _fast_fading_channel(prune_threshold: int) -> TwoStateChannel:
    """Short sojourns so a long run materializes tens of thousands.

    Retention is sized to the workload (frames only ever look back
    8 ms): with fast fading the default 60 s slack would itself retain
    ~2000 sojourns and mask the threshold bound being measured.
    """
    return TwoStateChannel(
        ExponentialSojourns(0.05, 0.01, random.Random(11)),
        ber_good=1e-6,
        ber_bad=1e-2,
        rng=random.Random(22),
        prune_threshold=prune_threshold,
        prune_retention=1.0,
    )


def test_channel_pruning_bounds_timeline(benchmark):
    """Pruning caps channel memory; decisions stay bit-identical."""
    frames = 100_000

    start = time.perf_counter()
    pruned_channel = _fast_fading_channel(prune_threshold=512)
    pruned = run_once(benchmark, lambda: _scan_channel(pruned_channel, frames))
    pruned_s = time.perf_counter() - start

    start = time.perf_counter()
    unpruned_channel = _fast_fading_channel(prune_threshold=0)
    unpruned = _scan_channel(unpruned_channel, frames)
    unpruned_s = time.perf_counter() - start

    assert pruned == unpruned  # pruning never changes the channel
    print(
        f"\n{frames} frames: pruned timeline {pruned_channel.timeline_length()} sojourns "
        f"({pruned_s:.2f}s), unpruned {unpruned_channel.timeline_length()} ({unpruned_s:.2f}s)"
    )
    assert pruned_channel.timeline_length() <= 513
    assert unpruned_channel.timeline_length() > 10 * 513
    assert pruned_channel.sojourns_pruned > 0
