"""Figure 8: TCP with EBSN (wide-area) — throughput vs packet size.

Same sweep as Figure 7, with local recovery + EBSN.  The paper's
reading:

  * unlike basic TCP, throughput now *increases* with packet size —
    timeouts are gone, so fragmentation losses no longer dominate and
    larger packets amortize header overhead better;
  * throughput approaches the theoretical maximum tput_th for large
    packets (9.0 kbps measured vs 9.14 theoretical at bad = 4 s,
    1536 B).
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, WORKERS, run_once

from repro.experiments.ascii_plot import plot_series
from repro.experiments.config import WAN_BAD_PERIODS, WAN_PACKET_SIZES
from repro.experiments.figures import figure_8, wan_theoretical_kbps


def _format(series):
    lines = [
        "Figure 8: EBSN (wide-area): throughput (kbps) vs packet size",
        f"(transfer scale {SCALE:g}, {DEFAULT_REPS} replications/point)",
        "",
        "size(B)  " + "  ".join(f"bad={b:g}s" for b in WAN_BAD_PERIODS),
    ]
    for size in WAN_PACKET_SIZES:
        row = [f"{size:7d}"]
        for bad in WAN_BAD_PERIODS:
            row.append(f"{series[bad].points[size].throughput_kbps:7.2f}")
        lines.append("  ".join(row))
    lines.append(
        "tput_th  "
        + "  ".join(f"{wan_theoretical_kbps(b):7.2f}" for b in WAN_BAD_PERIODS)
    )
    curves = {
        f"bad={b:g}s": [
            (size, series[b].points[size].throughput_kbps)
            for size in WAN_PACKET_SIZES
        ]
        for b in WAN_BAD_PERIODS
    }
    lines.append("")
    lines.append(
        plot_series(curves, width=72, height=14, x_label="packet size (B)",
                    y_label="throughput (kbps)", y_min=0.0)
    )
    return "\n".join(lines)


def test_fig8_ebsn_throughput_vs_packet_size(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    series = run_once(
        benchmark, lambda: figure_8(
            replications=DEFAULT_REPS, transfer_bytes=transfer, workers=WORKERS
        )
    )
    report("fig8_wan_ebsn", _format(series))

    def tput(bad, size):
        return series[bad].points[size].throughput_kbps

    slack = 1.0 if SCALE >= 0.8 else 0.9
    for bad in WAN_BAD_PERIODS:
        # Throughput rises with packet size: unlike Fig 7 there is no
        # mid-range collapse, and the large end is at or near the best.
        assert tput(bad, 512) > 1.1 * slack * tput(bad, 128)
        assert tput(bad, 1536) > 1.2 * slack * tput(bad, 128)
        best = max(tput(bad, s) for s in WAN_PACKET_SIZES)
        assert tput(bad, 1536) > 0.85 * slack * best
        # Large packets approach the theoretical maximum ...
        assert tput(bad, 1536) > 0.75 * wan_theoretical_kbps(bad)
        # ... and never meaningfully exceed it.
        assert tput(bad, 1536) < wan_theoretical_kbps(bad) * 1.03

    # The headline comparison the paper quotes: at 1536 B and
    # bad = 4 s, EBSN lands near 9 kbps (tput_th = 9.14; the paper
    # measured 9.0 vs 4.5 for basic TCP).
    assert 6.8 < tput(4.0, 1536) < 9.4
