"""Ablation: the TCP window size the paper fixed at 4 KB.

The paper never varies the advertised window.  This ablation asks
whether 4 KB was load-bearing: on the WAN path the bandwidth-delay
product is ≈ 1 KB, so 4 KB already over-fills the pipe and mostly
buys queueing delay at the base station; a bigger window inflates the
RTT (and hence the RTO), while a 1-packet window starves the link.
EBSN's advantage is not a window artifact: it holds at every size.
"""

from __future__ import annotations

import dataclasses

from conftest import DEFAULT_REPS, SCALE, STRICT, run_once

from repro.experiments.config import wan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme

WINDOWS = [576, 2048, 4096, 16 * 1024]


def _run(transfer):
    out = {}
    for window in WINDOWS:
        for scheme in (Scheme.BASIC, Scheme.EBSN):
            config = wan_scenario(
                scheme=scheme,
                packet_size=576,
                bad_period_mean=2.0,
                transfer_bytes=transfer,
                record_trace=False,
            )
            config = dataclasses.replace(
                config, tcp=dataclasses.replace(config.tcp, window_bytes=window)
            )
            out[(window, scheme)] = run_replicated(config, replications=DEFAULT_REPS)
    return out


def test_window_size(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "TCP window ablation (WAN, 576 B packets, bad period 2 s):",
        "",
        "window(B)  scheme   tput(kbps)   timeouts/run   duration(s)",
    ]
    for (window, scheme), r in results.items():
        lines.append(
            f"{window:9d}  {scheme.value:6s}  {r.throughput_kbps:10.2f}"
            f"   {r.timeouts_mean:12.1f}   {r.duration_mean:11.1f}"
        )
    report("ablation_window", "\n".join(lines))
    if not STRICT:
        # Smoke scale: the figure above is regenerated and saved, but
        # the paper-shape margins only hold at full scale.
        return


    # A 1-packet window starves the pipe: dramatically for EBSN (whose
    # link is otherwise kept full), mildly for basic TCP (whose small
    # flight also makes each fade cheaper — the effects partly cancel).
    assert (
        results[(4096, Scheme.EBSN)].throughput_bps_mean
        > 1.3 * results[(576, Scheme.EBSN)].throughput_bps_mean
    )
    assert (
        results[(4096, Scheme.BASIC)].throughput_bps_mean
        > 0.95 * results[(576, Scheme.BASIC)].throughput_bps_mean
    )
    # Beyond the BDP the window stops helping (diminishing returns).
    assert (
        results[(16 * 1024, Scheme.EBSN)].throughput_bps_mean
        < 1.2 * results[(4096, Scheme.EBSN)].throughput_bps_mean
    )
    # The EBSN advantage is not a window artifact.
    for window in WINDOWS:
        assert (
            results[(window, Scheme.EBSN)].throughput_bps_mean
            > results[(window, Scheme.BASIC)].throughput_bps_mean
        )
