"""Figure 10: local-area wireless — throughput vs mean bad period.

10 Mbps wired / 2 Mbps wireless, no fragmentation, 1536 B packets,
64 KB window, 4 MB transfer, mean good period 4 s, bad period
0.4-1.6 s.  The paper's reading:

  * TCP with EBSN clearly outperforms basic TCP, up to ~50% at the
    long-fade end;
  * EBSN tracks the theoretical maximum closely;
  * the gap grows with bad-period length.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, STRICT, WORKERS, run_once

from repro.experiments.ascii_plot import plot_series
from repro.experiments.config import LAN_BAD_PERIODS
from repro.experiments.figures import figure_10, lan_theoretical_mbps


def _format(data):
    lines = [
        "Figure 10: LAN throughput (Mbps) vs mean bad period, 4 MB transfer",
        f"(transfer scale {SCALE:g}, {DEFAULT_REPS} replications/point)",
        "",
        "bad(s)   theoretical   basic TCP   EBSN    EBSN/basic",
    ]
    for bad in LAN_BAD_PERIODS:
        basic = data["basic"].points[bad].throughput_mbps
        ebsn = data["ebsn"].points[bad].throughput_mbps
        lines.append(
            f"{bad:6.1f}   {lan_theoretical_mbps(bad):11.3f}   {basic:9.3f}"
            f"   {ebsn:5.3f}   {ebsn / basic:9.2f}x"
        )
    curves = {
        "theoretical": [(b, lan_theoretical_mbps(b)) for b in LAN_BAD_PERIODS],
        "EBSN": [(b, data["ebsn"].points[b].throughput_mbps) for b in LAN_BAD_PERIODS],
        "basic": [(b, data["basic"].points[b].throughput_mbps) for b in LAN_BAD_PERIODS],
    }
    lines.append("")
    lines.append(
        plot_series(curves, width=64, height=14, x_label="mean bad period (s)",
                    y_label="throughput (Mbps)", y_min=0.0)
    )
    return "\n".join(lines)


def test_fig10_lan_throughput(benchmark, report):
    transfer = int(4 * 1024 * 1024 * SCALE)
    data = run_once(
        benchmark,
        lambda: figure_10(
            replications=DEFAULT_REPS, transfer_bytes=transfer, workers=WORKERS
        ),
    )
    report("fig10_lan_tput", _format(data))
    if not STRICT:
        # Smoke scale: the figure above is regenerated and saved, but
        # the paper-shape margins only hold at full scale.
        return


    basic = {b: data["basic"].points[b].throughput_mbps for b in LAN_BAD_PERIODS}
    ebsn = {b: data["ebsn"].points[b].throughput_mbps for b in LAN_BAD_PERIODS}

    for bad in LAN_BAD_PERIODS:
        # EBSN wins everywhere and never exceeds the theoretical max.
        assert ebsn[bad] > basic[bad]
        assert ebsn[bad] <= lan_theoretical_mbps(bad) * 1.02
        # EBSN tracks the theoretical maximum closely.
        assert ebsn[bad] > 0.85 * lan_theoretical_mbps(bad)

    # The improvement grows with bad-period length and reaches tens of
    # percent at the long end (paper: up to ~50%).  Margins relax at
    # reduced smoke scale, where a short transfer sees few fades.
    gain_short = ebsn[LAN_BAD_PERIODS[0]] / basic[LAN_BAD_PERIODS[0]]
    gain_long = ebsn[LAN_BAD_PERIODS[-1]] / basic[LAN_BAD_PERIODS[-1]]
    if SCALE >= 0.8:
        assert gain_long > gain_short
        assert gain_long > 1.25
    else:
        assert gain_long > 1.02

    # Throughput falls with longer fades for both schemes.
    assert basic[1.6] < basic[0.4]
    assert ebsn[1.6] < ebsn[0.4]
