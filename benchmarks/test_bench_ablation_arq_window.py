"""Ablation: link-layer ARQ pipelining depth.

DESIGN.md argues the paper's near-theoretical EBSN curves imply a
pipelined link-layer transmitter: pure stop-and-wait idles the radio
for a link-ACK turnaround per frame.  This ablation sweeps the ARQ
window (1 = stop-and-wait) under EBSN and measures the cost directly.
"""

from __future__ import annotations

import dataclasses

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.experiments.config import wan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme

WINDOWS = [1, 2, 4, 8]


def _run(transfer):
    out = {}
    base = wan_scenario(
        scheme=Scheme.EBSN,
        packet_size=1536,
        bad_period_mean=1.0,
        transfer_bytes=transfer,
        record_trace=False,
    )
    derived = base.derived_arq()
    for window in WINDOWS:
        config = dataclasses.replace(
            base, arq=dataclasses.replace(derived, window=window)
        )
        out[window] = run_replicated(config, replications=DEFAULT_REPS)
    return out


def test_arq_window_depth(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "ARQ pipelining depth under EBSN (WAN, 1536 B, bad period 1 s):",
        "",
        "window   tput(kbps)   goodput",
    ]
    for window, r in results.items():
        lines.append(f"{window:6d}   {r.throughput_kbps:10.2f}   {r.goodput_mean:7.3f}")
    report("ablation_arq_window", "\n".join(lines))

    # Stop-and-wait pays a visible turnaround tax; a small window
    # recovers it; beyond ~4 the returns vanish.
    assert results[4].throughput_bps_mean > 1.05 * results[1].throughput_bps_mean
    assert results[8].throughput_bps_mean < 1.1 * results[4].throughput_bps_mean
