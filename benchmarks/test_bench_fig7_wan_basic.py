"""Figure 7: Basic TCP (wide-area) — throughput vs packet size.

One curve per mean bad-period length (1-4 s), mean good period 10 s,
100 KB transfer, packet sizes 128-1536 B.  The paper's reading:

  * throughput rises as bad periods shorten;
  * each curve has an optimal packet size in the interior of the range
    (e.g. 512 B at bad = 1 s, smaller for longer bad periods);
  * a good choice beats a bad one by ~30% (512 B vs 1536 B at 1 s);
  * everything stays well below the theoretical maximum tput_th.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, WORKERS, run_once

from repro.experiments.ascii_plot import plot_series
from repro.experiments.config import WAN_BAD_PERIODS, WAN_PACKET_SIZES
from repro.experiments.figures import figure_7, wan_theoretical_kbps


def _format(series):
    lines = [
        "Figure 7: Basic TCP (wide-area): throughput (kbps) vs packet size",
        f"(transfer scale {SCALE:g}, {DEFAULT_REPS} replications/point)",
        "",
        "size(B)  " + "  ".join(f"bad={b:g}s" for b in WAN_BAD_PERIODS),
    ]
    for size in WAN_PACKET_SIZES:
        row = [f"{size:7d}"]
        for bad in WAN_BAD_PERIODS:
            row.append(f"{series[bad].points[size].throughput_kbps:7.2f}")
        lines.append("  ".join(row))
    lines.append(
        "tput_th  "
        + "  ".join(f"{wan_theoretical_kbps(b):7.2f}" for b in WAN_BAD_PERIODS)
    )
    curves = {
        f"bad={b:g}s": [
            (size, series[b].points[size].throughput_kbps)
            for size in WAN_PACKET_SIZES
        ]
        for b in WAN_BAD_PERIODS
    }
    lines.append("")
    lines.append(
        plot_series(curves, width=72, height=14, x_label="packet size (B)",
                    y_label="throughput (kbps)", y_min=0.0)
    )
    return "\n".join(lines)


def test_fig7_throughput_vs_packet_size(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    series = run_once(
        benchmark, lambda: figure_7(
            replications=DEFAULT_REPS, transfer_bytes=transfer, workers=WORKERS
        )
    )
    report("fig7_wan_basic", _format(series))

    def tput(bad, size):
        return series[bad].points[size].throughput_kbps

    def curve_mean(bad):
        return sum(tput(bad, s) for s in WAN_PACKET_SIZES) / len(WAN_PACKET_SIZES)

    # Shorter bad periods -> higher throughput (monotone in the mean,
    # allowing statistical slack between adjacent curves).
    assert curve_mean(1.0) > curve_mean(2.0) * 0.97
    assert curve_mean(1.0) > curve_mean(4.0) * 1.1
    assert curve_mean(2.0) > curve_mean(4.0) * 0.97

    # Interior optimum: a mid-range size beats both extremes.  The
    # margin is largest for long fades (the paper quotes ~30% for a
    # good choice over 1536 B).  Margins relax at smoke scale.
    strict = SCALE >= 0.8
    margins = ((1.0, 1.0, 1.08), (4.0, 1.1, 1.15)) if strict else ((4.0, 1.0, 1.0),)
    for bad, margin_vs_big, margin_vs_small in margins:
        best_size = max(WAN_PACKET_SIZES, key=lambda s: tput(bad, s))
        assert 128 < best_size < 1536
        assert tput(bad, best_size) > margin_vs_big * tput(bad, 1536)
        assert tput(bad, best_size) > margin_vs_small * tput(bad, 128)

    # For long fades the small-to-mid sizes beat the large end — the
    # optimum moves left as error conditions worsen.
    small_mid = sum(tput(4.0, s) for s in (256, 384, 512)) / 3
    large = sum(tput(4.0, s) for s in (1024, 1280, 1536)) / 3
    assert small_mid > (1.05 if strict else 1.0) * large

    # Basic TCP stays clearly below the theoretical maximum.
    for bad in WAN_BAD_PERIODS:
        assert max(tput(bad, s) for s in WAN_PACKET_SIZES) < wan_theoretical_kbps(bad)
