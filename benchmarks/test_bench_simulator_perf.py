"""Simulator performance microbenchmarks.

Not a paper figure — these keep the engine honest as a piece of
software: event throughput of the raw loop, timer churn, and the
wall-clock cost of a full WAN scenario.  pytest-benchmark runs these
repeatedly and reports distributions, so regressions in the hot paths
(heap discipline, ARQ bookkeeping) show up as slowdowns here.

``test_perf_trajectory`` is the perf-trajectory gate: it measures
events/sec on the workhorse scenarios, writes
``benchmarks/out/BENCH_core.json`` (before/after numbers), and fails on
a >25% throughput regression against the checked-in
``benchmarks/BENCH_core_baseline.json``.  Refresh the baseline after an
intentional perf change with::

    REPRO_BENCH_UPDATE_BASELINE=1 pytest benchmarks/test_bench_simulator_perf.py::test_perf_trajectory
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.engine import Simulator, Timer
from repro.experiments.config import lan_scenario, wan_scenario
from repro.experiments.topology import Scenario, Scheme, run_scenario

BASELINE_PATH = Path(__file__).parent / "BENCH_core_baseline.json"

#: Throughput may regress by at most this factor vs the baseline.
REGRESSION_TOLERANCE = 0.75

#: Required speedup over the recorded pre-optimisation numbers: ≥2×
#: on the machine class the baseline was recorded on, a loose sanity
#: floor anywhere else (absolute events/sec do not transfer between
#: machines).
SPEEDUP_SAME_MACHINE = 2.0
SPEEDUP_FLOOR = 1.2

#: The perf-trajectory scenarios.  "wan-ebsn" is the paper-default
#: workhorse (100 KB, 576 B packets, 1 s bad periods, EBSN).
TRAJECTORY_SCENARIOS = {
    "wan-ebsn": lambda: wan_scenario(scheme=Scheme.EBSN, record_trace=False),
    "wan-basic": lambda: wan_scenario(scheme=Scheme.BASIC, record_trace=False),
    "lan-ebsn": lambda: lan_scenario(scheme=Scheme.EBSN, transfer_bytes=512 * 1024),
}


def _machine_fingerprint() -> str:
    """Coarse machine-class id so absolute numbers compare fairly."""
    model = ""
    try:
        with open("/proc/cpuinfo") as fp:
            for line in fp:
                if line.startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return f"{platform.machine()}/{os.cpu_count()}cpu/{model}"


def _events_per_sec(config_factory, rounds: int = 8) -> float:
    """Best-of-N events/sec for one scenario (best filters scheduler noise).

    One untimed warmup run precedes the timed rounds: on small
    containers the first run pays for code-object warmup and CPU
    frequency ramp, and best-of-N only converges once those are out of
    the way.
    """
    Scenario(config_factory()).run()
    best = 0.0
    for _ in range(rounds):
        scenario = Scenario(config_factory())
        start = time.perf_counter()
        scenario.run()
        elapsed = time.perf_counter() - start
        best = max(best, scenario.sim.events_executed / elapsed)
    return best


def test_perf_trajectory(out_dir):
    """Measure events/sec, write BENCH_core.json, gate on the baseline."""
    current = {
        name: round(_events_per_sec(factory))
        for name, factory in TRAJECTORY_SCENARIOS.items()
    }
    machine = _machine_fingerprint()

    if os.environ.get("REPRO_BENCH_UPDATE_BASELINE"):
        baseline = json.loads(BASELINE_PATH.read_text())
        baseline["machine"] = machine
        baseline["events_per_sec"] = current
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"\nbaseline updated: {BASELINE_PATH}")
        return

    baseline = json.loads(BASELINE_PATH.read_text())
    pre_pr = baseline["pre_pr_events_per_sec"]
    same_machine = baseline["machine"] == machine
    required = SPEEDUP_SAME_MACHINE if same_machine else SPEEDUP_FLOOR

    # Shared containers show transient whole-process slowdowns of
    # 20%+; a single re-measure of only the scenarios that missed
    # their threshold separates those from genuine regressions.
    def _below_threshold(name):
        if current[name] < baseline["events_per_sec"][name] * REGRESSION_TOLERANCE:
            return True
        return name == "wan-ebsn" and current[name] < pre_pr[name] * required

    for name in [n for n in current if _below_threshold(n)]:
        retry = round(_events_per_sec(TRAJECTORY_SCENARIOS[name]))
        current[name] = max(current[name], retry)

    trajectory = {
        "machine": machine,
        "baseline_machine": baseline["machine"],
        "pre_pr_events_per_sec": pre_pr,
        "baseline_events_per_sec": baseline["events_per_sec"],
        "current_events_per_sec": current,
        "speedup_vs_pre_pr": {
            name: round(current[name] / pre_pr[name], 2) for name in current
        },
    }
    out_path = out_dir / "BENCH_core.json"
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"\n{json.dumps(trajectory, indent=2)}\n[written to {out_path}]")

    for name, value in current.items():
        floor = baseline["events_per_sec"][name] * REGRESSION_TOLERANCE
        assert value >= floor, (
            f"{name}: {value:,.0f} events/sec is a >25% regression vs the "
            f"baseline {baseline['events_per_sec'][name]:,.0f} "
            f"(REPRO_BENCH_UPDATE_BASELINE=1 refreshes an intentional change)"
        )
    speedup = current["wan-ebsn"] / pre_pr["wan-ebsn"]
    assert speedup >= required, (
        f"wan-ebsn speedup {speedup:.2f}x vs the pre-optimisation baseline "
        f"is below the required {required}x"
    )


def test_event_loop_throughput(benchmark):
    """Schedule-and-run 50k chained events."""

    def run():
        sim = Simulator()
        count = 50_000

        def chain(n):
            if n:
                sim.schedule(0.001, chain, n - 1)

        chain_start = count
        sim.schedule(0.0, chain, chain_start)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 50_001


def test_timer_restart_churn(benchmark):
    """The EBSN pattern at scale: 20k restarts of one timer."""

    def run():
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(1e9)
        for _ in range(20_000):
            timer.restart(1e9)
        timer.cancel()
        sim.run()
        return timer.expiry_count

    assert benchmark(run) == 0


def test_heap_with_cancellations(benchmark):
    """Half the scheduled events get cancelled (ARQ-like churn)."""

    def run():
        sim = Simulator()
        events = [sim.schedule(float(i % 97) + 1.0, lambda: None) for i in range(20_000)]
        for event in events[::2]:
            event.cancel()
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_full_wan_scenario_cost(benchmark):
    """Wall-clock cost of one 100 KB EBSN run (the workhorse unit)."""

    def run():
        return run_scenario(
            wan_scenario(
                scheme=Scheme.EBSN,
                bad_period_mean=4.0,
                transfer_bytes=100 * 1024,
                record_trace=False,
            )
        )

    result = benchmark(run)
    assert result.completed
