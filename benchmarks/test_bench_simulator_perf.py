"""Simulator performance microbenchmarks.

Not a paper figure — these keep the engine honest as a piece of
software: event throughput of the raw loop, timer churn, and the
wall-clock cost of a full WAN scenario.  pytest-benchmark runs these
repeatedly and reports distributions, so regressions in the hot paths
(heap discipline, ARQ bookkeeping) show up as slowdowns here.
"""

from __future__ import annotations

from repro.engine import Simulator, Timer
from repro.experiments.config import wan_scenario
from repro.experiments.topology import Scheme, run_scenario


def test_event_loop_throughput(benchmark):
    """Schedule-and-run 50k chained events."""

    def run():
        sim = Simulator()
        count = 50_000

        def chain(n):
            if n:
                sim.schedule(0.001, chain, n - 1)

        chain_start = count
        sim.schedule(0.0, chain, chain_start)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 50_001


def test_timer_restart_churn(benchmark):
    """The EBSN pattern at scale: 20k restarts of one timer."""

    def run():
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(1e9)
        for _ in range(20_000):
            timer.restart(1e9)
        timer.cancel()
        sim.run()
        return timer.expiry_count

    assert benchmark(run) == 0


def test_heap_with_cancellations(benchmark):
    """Half the scheduled events get cancelled (ARQ-like churn)."""

    def run():
        sim = Simulator()
        events = [sim.schedule(float(i % 97) + 1.0, lambda: None) for i in range(20_000)]
        for event in events[::2]:
            event.cancel()
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_full_wan_scenario_cost(benchmark):
    """Wall-clock cost of one 100 KB EBSN run (the workhorse unit)."""

    def run():
        return run_scenario(
            wan_scenario(
                scheme=Scheme.EBSN,
                bad_period_mean=4.0,
                transfer_bytes=100 * 1024,
                record_trace=False,
            )
        )

    result = benchmark(run)
    assert result.completed
