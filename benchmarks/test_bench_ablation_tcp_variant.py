"""Ablation: how far do transport-only fixes go?

The paper's premise is that no end-to-end congestion-control variant
can distinguish a fade from congestion.  This ablation runs Tahoe,
Reno and NewReno over the WAN configuration with and without
EBSN+local recovery: the variant choice moves throughput a little; the
link-layer mechanism moves it a lot.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, STRICT, run_once

from repro.experiments.config import wan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme

VARIANTS = ["tahoe", "reno", "newreno"]


def _run(transfer):
    out = {}
    for variant in VARIANTS:
        for scheme in (Scheme.BASIC, Scheme.EBSN):
            out[(variant, scheme)] = run_replicated(
                wan_scenario(
                    scheme=scheme,
                    packet_size=576,
                    bad_period_mean=4.0,
                    transfer_bytes=transfer,
                    tcp_variant=variant,
                    record_trace=False,
                ),
                replications=DEFAULT_REPS,
            )
    return out


def test_tcp_variant_vs_link_mechanism(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "TCP variant x recovery mechanism (WAN, 576 B, bad period 4 s):",
        "",
        "variant   scheme   tput(kbps)   timeouts/run",
    ]
    for (variant, scheme), r in results.items():
        lines.append(
            f"{variant:8s}  {scheme.value:6s}  {r.throughput_kbps:10.2f}"
            f"   {r.timeouts_mean:12.1f}"
        )
    report("ablation_tcp_variant", "\n".join(lines))
    if not STRICT:
        # Smoke scale: the figure above is regenerated and saved, but
        # the paper-shape margins only hold at full scale.
        return


    basic = {v: results[(v, Scheme.BASIC)].throughput_bps_mean for v in VARIANTS}
    ebsn = {v: results[(v, Scheme.EBSN)].throughput_bps_mean for v in VARIANTS}

    # The spread across TCP variants is small compared to the EBSN
    # win: changing the end-to-end algorithm cannot fix wireless loss.
    variant_spread = max(basic.values()) / min(basic.values())
    for variant in VARIANTS:
        assert ebsn[variant] > 1.2 * basic[variant]
        assert ebsn[variant] / basic[variant] > variant_spread * 0.8
