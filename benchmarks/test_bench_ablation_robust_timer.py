"""§6 extension: a robust source timer *without* explicit feedback.

The paper closes: "We are also investigating schemes to make a source
timer more robust to larger delays on the wireless link without using
explicit feedback mechanisms.  If this is possible, we will be able to
achieve performance improvements comparable to those using EBSN
without changing TCP code at the end hosts."

This ablation tries the two obvious knobs on the standard estimator —
a larger variance weight (k = 8 instead of Jacobson's 4) and
"peak-hold" variance (slow decay after a delay spike) — under plain
local recovery, and compares against EBSN.
"""

from __future__ import annotations

import dataclasses

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.experiments.config import lan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme

VARIANTS = [
    ("jacobson k=4", Scheme.LOCAL_RECOVERY, 4.0, None),
    ("robust k=8", Scheme.LOCAL_RECOVERY, 8.0, None),
    ("robust k=8 + peak-hold", Scheme.LOCAL_RECOVERY, 8.0, 0.05),
    ("EBSN (k=4)", Scheme.EBSN, 4.0, None),
]


def _run(transfer):
    out = {}
    for label, scheme, k, decay in VARIANTS:
        config = lan_scenario(
            scheme=scheme, bad_period_mean=1.2, transfer_bytes=transfer
        )
        config = dataclasses.replace(
            config,
            tcp=dataclasses.replace(config.tcp, rto_k=k, rto_var_decay_gain=decay),
        )
        out[label] = run_replicated(config, replications=DEFAULT_REPS)
    return out


def test_robust_timer_vs_ebsn(benchmark, report):
    transfer = int(2 * 1024 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Robust source timers vs EBSN (LAN, local recovery, bad 1.2 s):",
        "",
        "variant                   tput(Mbps)   timeouts/run   retx(KB)",
    ]
    for label, r in results.items():
        lines.append(
            f"{label:25s} {r.throughput_mbps:10.3f}   {r.timeouts_mean:12.1f}"
            f"   {r.retransmitted_kbytes_mean:8.1f}"
        )
    report("ablation_robust_timer", "\n".join(lines))

    jacobson = results["jacobson k=4"]
    k8 = results["robust k=8"]
    hold = results["robust k=8 + peak-hold"]
    ebsn = results["EBSN (k=4)"]

    # Each robustness knob removes more spurious timeouts.
    assert k8.timeouts_mean <= jacobson.timeouts_mean
    assert hold.timeouts_mean <= k8.timeouts_mean
    # And buys real throughput...
    assert hold.throughput_bps_mean >= jacobson.throughput_bps_mean
    # ...but does not quite reach EBSN, which needs no guesswork about
    # how long the delay spike will last.
    assert ebsn.throughput_bps_mean >= 0.99 * hold.throughput_bps_mean
    assert ebsn.timeouts_mean <= hold.timeouts_mean
