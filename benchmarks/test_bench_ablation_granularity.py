"""Ablation: TCP clock granularity vs local-recovery timeouts.

The paper (§4.2.1, §6) argues that earlier local-recovery proposals
only avoid redundant source retransmissions because they assume a
coarse TCP timer (300-500 ms), while the trend is toward finer timers;
with a 100 ms clock the source times out during local recovery, and
EBSN makes performance insensitive to granularity.  This ablation
sweeps the clock granularity for LOCAL_RECOVERY and EBSN on the LAN
configuration (small RTTs are where granularity bites).
"""

from __future__ import annotations

import dataclasses

from conftest import DEFAULT_REPS, SCALE, run_once

from repro.experiments.config import lan_scenario
from repro.experiments.runner import run_replicated
from repro.experiments.topology import Scheme

GRANULARITIES = [0.1, 0.3, 0.5]


def _run(transfer):
    out = {}
    for scheme in (Scheme.LOCAL_RECOVERY, Scheme.EBSN):
        for g in GRANULARITIES:
            config = lan_scenario(
                scheme=scheme, bad_period_mean=1.2, transfer_bytes=transfer
            )
            config = dataclasses.replace(
                config, tcp=dataclasses.replace(config.tcp, clock_granularity=g)
            )
            out[(scheme, g)] = run_replicated(config, replications=DEFAULT_REPS)
    return out


def test_granularity_sensitivity(benchmark, report):
    transfer = int(2 * 1024 * 1024 * SCALE)
    results = run_once(benchmark, lambda: _run(transfer))

    lines = [
        "Ablation: TCP clock granularity (LAN, bad period 1.2 s):",
        "",
        "scheme           granularity   timeouts/run   throughput(Mbps)",
    ]
    for (scheme, g), r in results.items():
        lines.append(
            f"{scheme.value:16s} {g:11.1f}   {r.timeouts_mean:12.1f}"
            f"   {r.throughput_mbps:16.3f}"
        )
    report("ablation_granularity", "\n".join(lines))

    lr = {g: results[(Scheme.LOCAL_RECOVERY, g)] for g in GRANULARITIES}
    eb = {g: results[(Scheme.EBSN, g)] for g in GRANULARITIES}

    # Fine timers hurt plain local recovery: more timeouts at 100 ms
    # than at 500 ms.
    assert lr[0.1].timeouts_mean >= lr[0.5].timeouts_mean

    # EBSN removes the sensitivity: (almost) no timeouts at any
    # granularity, and throughput roughly flat.
    for g in GRANULARITIES:
        assert eb[g].timeouts_mean <= 0.5
    tputs = [eb[g].throughput_bps_mean for g in GRANULARITIES]
    assert max(tputs) / min(tputs) < 1.15
