"""Figure 9: data retransmitted vs packet size — basic TCP vs EBSN.

100 KB wide-area transfer, mean good period 10 s.  The paper's
reading:

  * for basic TCP the amount of retransmitted data grows with both
    packet size and bad-period length (fragmentation amplifies every
    loss into a whole-packet retransmission);
  * with EBSN the source retransmits almost nothing at any size.
"""

from __future__ import annotations

from conftest import DEFAULT_REPS, SCALE, WORKERS, run_once

from repro.experiments.config import WAN_BAD_PERIODS, WAN_PACKET_SIZES
from repro.experiments.figures import figure_9


def _format(data):
    lines = [
        "Figure 9: data retransmitted (KB) vs packet size, 100 KB transfer",
        f"(transfer scale {SCALE:g}, {DEFAULT_REPS} replications/point)",
    ]
    for label, series in data.items():
        lines.append("")
        lines.append(f"-- {label} --")
        lines.append("size(B)  " + "  ".join(f"bad={b:g}s" for b in WAN_BAD_PERIODS))
        for size in WAN_PACKET_SIZES:
            row = [f"{size:7d}"]
            for bad in WAN_BAD_PERIODS:
                row.append(f"{series[bad].points[size].retransmitted_kbytes_mean:7.1f}")
            lines.append("  ".join(row))
    return "\n".join(lines)


def test_fig9_retransmitted_data(benchmark, report):
    transfer = int(100 * 1024 * SCALE)
    data = run_once(
        benchmark, lambda: figure_9(
            replications=DEFAULT_REPS, transfer_bytes=transfer, workers=WORKERS
        )
    )
    report("fig9_wan_retx", _format(data))

    def retx(scheme, bad, size):
        return data[scheme][bad].points[size].retransmitted_kbytes_mean

    sizes = WAN_PACKET_SIZES

    # Basic TCP: retransmitted data grows with bad-period length
    # (mean over sizes), and large packets retransmit more than small.
    def mean_over_sizes(scheme, bad):
        return sum(retx(scheme, bad, s) for s in sizes) / len(sizes)

    assert mean_over_sizes("basic", 4.0) > mean_over_sizes("basic", 1.0)
    assert retx("basic", 4.0, 1536) > retx("basic", 4.0, 128)

    # EBSN: near-zero source retransmissions everywhere — an order of
    # magnitude below basic TCP.
    for bad in WAN_BAD_PERIODS:
        assert mean_over_sizes("ebsn", bad) < 0.25 * mean_over_sizes("basic", bad)
